// Reservation specifications and records.
//
// `ResSpec` is the paper's `res_spec`: the user-visible description of the
// requested network service. It is part of every signed RAR layer, so it
// has a canonical TLV encoding.
#pragma once

#include <string>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/result.hpp"

namespace e2e::bb {

using ReservationId = std::string;

/// Numeric suffix of a broker-minted handle ("DomainA-resv-17" -> 17,
/// "DomainA-tunnel-3" -> 3); 0 when the handle has a different shape.
/// Shared by record-shard routing, the shard engine's tunnel ownership
/// map and recovery's id fast-forward, so all three agree on a handle's
/// number without hashing the string.
inline std::uint64_t reservation_handle_number(const std::string& id) {
  const std::size_t dash = id.rfind('-');
  if (dash == std::string::npos || dash + 1 >= id.size()) return 0;
  std::uint64_t value = 0;
  for (std::size_t i = dash + 1; i < id.size(); ++i) {
    if (id[i] < '0' || id[i] > '9') return 0;
    value = value * 10 + static_cast<std::uint64_t>(id[i] - '0');
  }
  return value;
}

struct ResSpec {
  /// DN text of the requesting principal.
  std::string user;
  /// Administrative domains of the endpoints.
  std::string source_domain;
  std::string destination_domain;
  /// Requested premium bandwidth.
  double rate_bits_per_s = 0;
  double burst_bits = 0;
  /// Advance-reservation window (virtual time).
  TimeInterval interval{0, 0};
  /// Cost the user is willing to accept (paper §6.1); 0 = unlimited.
  double max_cost = 0;
  /// Handle of a CPU reservation this network reservation is coupled with
  /// (Fig. 6: "CPU_Reservation_ID=111"); empty if none.
  std::string linked_cpu_reservation;
  /// True if this request establishes an aggregate tunnel between the end
  /// domains rather than a single flow reservation.
  bool is_tunnel = false;

  bool operator==(const ResSpec&) const = default;

  /// Structurally fit for admission control: a valid advance-reservation
  /// window and a positive rate. Brokers reject anything else before
  /// touching a capacity pool (single and batch paths share this gate).
  bool admissible() const {
    return interval.valid() && rate_bits_per_s > 0;
  }

  Bytes encode() const;
  static Result<ResSpec> decode(BytesView data);

  std::string to_text() const;
};

enum class ReservationState : std::uint8_t {
  kPending = 0,
  kGranted = 1,
  kReleased = 2,
};

constexpr const char* to_string(ReservationState s) {
  switch (s) {
    case ReservationState::kPending: return "pending";
    case ReservationState::kGranted: return "granted";
    case ReservationState::kReleased: return "released";
  }
  return "?";
}

/// A reservation as recorded by one bandwidth broker.
struct Reservation {
  ReservationId id;
  ResSpec spec;
  ReservationState state = ReservationState::kPending;
  /// Domain the request arrived from ("" for the local user's domain).
  std::string upstream_domain;
};

}  // namespace e2e::bb
