// The bandwidth broker (BB).
//
// Paper §2: "A BB provides admission control and configures the edge
// routers of a single administrative network domain." This class is the
// *local* half of the system: identity (key pair + certificate), SLA table
// with peered domains, interdomain next-hop selection, policy evaluation
// via the attached policy server, interval-based admission control, tunnel
// bookkeeping, and edge-router configuration hooks.
//
// The distributed half — RAR construction, nested signing, hop-by-hop and
// source-based propagation — lives in src/sig and drives brokers through
// this interface.
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "bb/admission.hpp"
#include "bb/reservation.hpp"
#include "bb/shard_engine.hpp"
#include "bb/tunnel.hpp"
#include "common/rng.hpp"
#include "crypto/ca.hpp"
#include "crypto/certstore.hpp"
#include "policy/policy_server.hpp"
#include "sla/sla.hpp"

namespace e2e::obs {
class Histogram;
}  // namespace e2e::obs

namespace e2e::bb {

struct BrokerConfig {
  /// Administrative domain this broker controls (one BB per domain;
  /// paper §3: "It is unlikely that a single bandwidth broker will control
  /// more than one domain").
  std::string domain;
  /// Premium capacity the domain can carry (admission ceiling).
  double capacity_bits_per_s = 0;
  unsigned key_bits = 512;
};

class BandwidthBroker {
 public:
  /// The broker generates its key pair and obtains its certificate from
  /// `ca` (the domain's certificate authority).
  BandwidthBroker(BrokerConfig config, policy::PolicyServer policy_server,
                  crypto::CertificateAuthority& ca, Rng& rng,
                  TimeInterval cert_validity);

  // --- Identity and trust -------------------------------------------------
  const std::string& domain() const { return config_.domain; }
  const crypto::DistinguishedName& dn() const { return dn_; }
  const crypto::Certificate& certificate() const { return certificate_; }
  const crypto::PublicKey& public_key() const { return keys_.pub; }
  Bytes sign(BytesView data) const { return crypto::sign(keys_.priv, data); }
  /// Sign a certificate builder with the broker's own key — used for
  /// capability delegation (§6.5), where each broker re-issues the received
  /// capability to the next hop under its own signature.
  crypto::Certificate sign_certificate(
      const crypto::Certificate::Builder& builder) const {
    return builder.sign_with(keys_.priv);
  }
  /// Fresh serial for locally issued (delegation) certificates. WAL-logged
  /// (kind `delegation_serial`) so a recovered broker never re-issues a
  /// serial it already handed out.
  std::uint64_t next_certificate_serial();
  /// Private key accessor for constructing the broker's secure-channel
  /// endpoint (the TLS stack acts with the broker's key). Do not use for
  /// signing application data — use sign()/sign_certificate().
  const crypto::PrivateKey& private_key() const { return keys_.priv; }
  crypto::TrustStore& trust_store() { return trust_store_; }
  const crypto::TrustStore& trust_store() const { return trust_store_; }

  // --- Peering ------------------------------------------------------------
  /// Register the SLA for traffic arriving *from* a peered upstream domain.
  /// Installs the peer's certificates (if present) as channel trust
  /// material and creates the per-peer admission pool sized by the profile.
  void add_upstream_sla(sla::ServiceLevelAgreement agreement);
  const sla::ServiceLevelAgreement* upstream_sla(
      const std::string& from_domain) const;

  /// Static interdomain routing: the peer to forward to for a destination.
  void set_next_hop(const std::string& destination_domain,
                    const std::string& peer_domain);
  std::optional<std::string> next_hop(
      const std::string& destination_domain) const;

  // --- Policy -------------------------------------------------------------
  policy::PolicyServer& policy_server() { return policy_server_; }
  const policy::PolicyServer& policy_server() const { return policy_server_; }

  // --- Admission control ----------------------------------------------------
  // A broker is a server: the parallel source-based engine, concurrent
  // tunnel sub-reservations and the load harness all issue requests
  // against it from worker threads. Admission state is sharded instead of
  // serialized behind one broker lock: each capacity pool carries its own
  // internal mutex (commit is an atomic check+insert), reservation records
  // are striped across kRecordShards lock shards keyed by handle hash, and
  // the statistics counters / id source are atomics. SLA and routing
  // tables are written only at setup and read lock-free afterwards.

  /// Check-only: would `spec`, arriving from `from_domain` ("" = local
  /// user), be admissible right now? Advisory under concurrency — the
  /// authoritative check is the pool's atomic check+insert inside commit().
  Status check_admission(const ResSpec& spec,
                         const std::string& from_domain) const;

  /// Admit and record the reservation; returns the new handle. Commits
  /// both the local capacity pool and (for transit traffic) the per-peer
  /// SLA pool, with rollback on partial failure.
  Result<ReservationId> commit(const ResSpec& spec,
                               const std::string& from_domain);

  /// Batch admission: admit a vector of RARs in one pool-lock acquisition
  /// per touched pool (specs are evaluated in ascending interval.start
  /// order; see CapacityPool::commit_batch). Results come back in input
  /// order; each entry is the handle or the per-spec rejection. A batch's
  /// decisions are identical to committing the same specs sequentially in
  /// that sorted order.
  std::vector<Result<ReservationId>> commit_batch(
      const std::vector<ResSpec>& specs, const std::string& from_domain);

  Status release(const ReservationId& id);
  const Reservation* find(const ReservationId& id) const;

  // --- Shared-nothing shard engine (ISSUE 8) --------------------------------
  /// Switch admission to thread-per-shard mode: `workers` owner threads
  /// are spawned; the broker's own pools + record shards are owned by
  /// worker 0, and every registered tunnel is owned by worker
  /// (handle-number % workers). commit/release/headroom and the tunnel
  /// allocate paths route their state-touching half to the owner's queue;
  /// the WAL group commit stays on the caller. Decisions, handles and
  /// final metric totals are identical to engine-off (differential-tested
  /// in tests/bb_shard_engine_test.cpp). Call at setup, not under
  /// traffic; tunnels registered later inherit the engine.
  void enable_shard_engine(std::size_t workers);
  /// Drain + join the workers and revert to caller-thread admission.
  void disable_shard_engine();
  ShardEngine* shard_engine() const { return engine_.get(); }

  /// One per-flow allocation inside a cross-tunnel batch.
  struct TunnelFlowRequest {
    TunnelId tunnel;
    Tunnel::SubFlowRequest flow;
  };
  /// Pipeline a batch of per-flow allocations spanning many tunnels: one
  /// task per owning worker applies that worker's slice (engine mode), and
  /// everything appended WAL-side is made durable with ONE group commit
  /// before any grant is acked. Statuses come back in input order and are
  /// identical to calling Tunnel::allocate sequentially per flow.
  std::vector<Status> allocate_across_tunnels(
      const std::vector<TunnelFlowRequest>& requests);

  /// Housekeeping: drop reservations whose interval ended at or before
  /// `now`. Expired commitments no longer affect admission (the pools are
  /// interval-aware), so this only reclaims records and pool entries.
  /// Returns the number purged.
  std::size_t purge_expired(SimTime now);
  std::size_t reservation_count() const {
    std::size_t n = 0;
    for (const auto& shard : record_shards_) {
      std::lock_guard lock(shard.mutex);
      n += shard.records.size();
    }
    return n;
  }
  double committed_at(SimTime t) const { return local_pool_.committed_at(t); }
  double headroom(const TimeInterval& iv) const {
    // Headroom reads route to the owning worker too (engine mode): the
    // pool's timeline stays a single-core working set.
    if (engine_ != nullptr) {
      return engine_->run_on(kBrokerOwnerWorker,
                             [&] { return local_pool_.headroom(iv); });
    }
    return local_pool_.headroom(iv);
  }

  // --- Tunnels --------------------------------------------------------------
  /// Record an established aggregate tunnel at this (end) domain.
  /// Registration is locked; the returned Tunnel* stays valid (tunnels are
  /// never erased) and is itself thread-safe for allocate/release.
  Result<TunnelId> register_tunnel(const ResSpec& aggregate_spec);
  Tunnel* find_tunnel(const TunnelId& id);
  const Tunnel* find_tunnel(const TunnelId& id) const;
  std::size_t tunnel_count() const {
    std::lock_guard lock(tunnels_mutex_);
    return tunnels_.size();
  }

  // --- Durability (src/bb/wal.hpp, snapshot.hpp, recovery.hpp) --------------
  /// Attach a write-ahead log: every state-changing decision from here on
  /// is appended and fsync'd before the call returns (group-committed;
  /// batch paths log one record per batch). Propagates to already
  /// registered tunnels; newly registered tunnels inherit it. Pass nullptr
  /// to detach (recovery replays with the WAL detached). Not synchronized
  /// against in-flight requests — attach at setup or after recovery.
  void attach_wal(WriteAheadLog* wal);
  WriteAheadLog* wal() const { return wal_; }
  double capacity() const { return config_.capacity_bits_per_s; }

  /// Re-install a reservation during recovery: pools + record shard only —
  /// no audit append, no WAL append, no edge-configurator callback, no
  /// grant counters. kConflict on a duplicate handle (idempotent replay).
  Status restore_reservation(const Reservation& reservation);
  /// Re-register a tunnel during recovery (same discipline).
  Status restore_tunnel(const TunnelId& id, const ResSpec& aggregate_spec);
  /// Fast-forward the id/serial sources past everything ever issued, so a
  /// recovered broker never reuses a handle.
  void restore_ids(std::uint64_t next_id, std::uint64_t next_cert_serial);

  std::uint64_t next_id_value() const {
    return next_id_.load(std::memory_order_relaxed);
  }
  std::uint64_t next_certificate_serial_value() const {
    return next_cert_serial_.load(std::memory_order_relaxed);
  }
  /// Every live reservation, for the state snapshot (id order).
  std::vector<Reservation> all_reservations() const;
  /// Every registered tunnel, for the state snapshot (pointers stay valid;
  /// tunnels are never erased).
  std::vector<const Tunnel*> all_tunnels() const;

  // --- Edge-router configuration --------------------------------------------
  /// Invoked on commit (install=true) and release (install=false); the
  /// deployment binds this to the DiffServ simulator's policers.
  using EdgeConfigurator =
      std::function<void(const Reservation&, bool install)>;
  void set_edge_configurator(EdgeConfigurator fn) {
    edge_configurator_ = std::move(fn);
  }

  // --- Statistics -----------------------------------------------------------
  struct Counters {
    std::uint64_t requests = 0;
    std::uint64_t granted = 0;
    std::uint64_t denied_admission = 0;
    std::uint64_t released = 0;
  };
  Counters counters() const {
    Counters c;
    c.requests = stats_.requests.load(std::memory_order_relaxed);
    c.granted = stats_.granted.load(std::memory_order_relaxed);
    c.denied_admission = stats_.denied.load(std::memory_order_relaxed);
    c.released = stats_.released.load(std::memory_order_relaxed);
    return c;
  }
  /// Restore the statistics counters from a snapshot (recovery only).
  void restore_counters(const Counters& counters) {
    stats_.requests.store(counters.requests, std::memory_order_relaxed);
    stats_.granted.store(counters.granted, std::memory_order_relaxed);
    stats_.denied.store(counters.denied_admission, std::memory_order_relaxed);
    stats_.released.store(counters.released, std::memory_order_relaxed);
  }

 private:
  /// Reservation records are striped across this many lock shards (keyed
  /// by handle hash) so concurrent commits/releases on different handles
  /// don't contend on one broker-wide mutex.
  static constexpr std::size_t kRecordShards = 16;
  /// Shard-engine worker that owns the broker's own state (local + peer
  /// pools, record shards). Tunnels spread across ALL workers; the
  /// broker's single local pool is one shard and gets one owner.
  static constexpr std::size_t kBrokerOwnerWorker = 0;
  /// How many mutations an engine-owned pool accumulates before flushing
  /// its registry counters (engine-off pools flush every mutation).
  static constexpr std::size_t kEngineMetricsFlushInterval = 256;
  /// Owning worker for a tunnel's admission state (engine mode only).
  std::size_t tunnel_owner_worker(const TunnelId& id) const;
  struct RecordShard {
    mutable std::mutex mutex;
    std::map<ReservationId, Reservation> records;
  };
  /// Shard off the numeric id the broker minted into the handle —
  /// sequential ids round-robin the shards perfectly and cost one reverse
  /// scan of the suffix, not a full std::hash pass over the string per
  /// lookup. Foreign handle shapes (no numeric suffix) fall back to FNV-1a.
  static std::size_t shard_index(const ReservationId& id) {
    if (const std::uint64_t n = reservation_handle_number(id); n != 0) {
      return n % kRecordShards;
    }
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : id) {
      h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    }
    return h % kRecordShards;
  }
  RecordShard& shard_for(const ReservationId& id) {
    return record_shards_[shard_index(id)];
  }
  const RecordShard& shard_for(const ReservationId& id) const {
    return record_shards_[shard_index(id)];
  }

  struct AtomicCounters {
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> granted{0};
    std::atomic<std::uint64_t> denied{0};
    std::atomic<std::uint64_t> released{0};
  };

  BrokerConfig config_;
  crypto::DistinguishedName dn_;
  crypto::KeyPair keys_;
  crypto::Certificate certificate_;
  crypto::TrustStore trust_store_;
  policy::PolicyServer policy_server_;

  // Setup-time tables: written by add_upstream_sla()/set_next_hop() during
  // world wiring, read lock-free afterwards (std::map nodes are stable and
  // the pools carry their own locks).
  std::map<std::string, sla::ServiceLevelAgreement> upstream_slas_;
  std::map<std::string, CapacityPool> peer_pools_;
  std::map<std::string, std::string> next_hops_;

  CapacityPool local_pool_;
  std::array<RecordShard, kRecordShards> record_shards_;
  mutable std::mutex tunnels_mutex_;
  std::map<TunnelId, Tunnel> tunnels_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> next_cert_serial_{100000};

  /// Pre-pool validation shared by check_admission() and commit(): spec
  /// shape and SLA conformance (advisory; pools re-check atomically).
  Status precheck_admission(const ResSpec& spec,
                            const std::string& from_domain) const;
  /// Per-decision bookkeeping shared by commit()/commit_batch().
  void record_rejection(const ResSpec& spec, const std::string& reason);
  void record_grant(const ResSpec& spec);

  /// Append one record covering an already-applied state change and block
  /// until it is durable (no-op when no WAL is attached). Returns the
  /// commit status so callers can refuse to ack on a sync failure.
  Status wal_log(const char* kind, WalFields fields,
                 std::vector<WalFields> items = {});

  /// Apply half of commit()/commit_batch()/release(): everything that
  /// touches owned state (pools, record shards) plus the WAL *append*;
  /// runs on kBrokerOwnerWorker in engine mode. The caller finishes with
  /// the group commit and, on sync failure, an unwind task.
  struct ApplyOutcome {
    Status status;
    std::uint64_t lsn = 0;  ///< 0 = nothing appended
  };
  /// Run `fn` on the broker-owner worker (inline without an engine, or
  /// when the calling thread already is that worker).
  template <typename F>
  auto run_owned(F&& fn) -> std::invoke_result_t<F&> {
    if (engine_ == nullptr) return fn();
    return engine_->run_on(kBrokerOwnerWorker, std::forward<F>(fn));
  }

  EdgeConfigurator edge_configurator_;
  AtomicCounters stats_;
  WriteAheadLog* wal_ = nullptr;  // owned by the deployment, not the broker

  // Cached instrument pointers (stable for the registry's lifetime);
  // resolved once in the constructor so the admission hot path never takes
  // the registry mutex.
  obs::Counter* checks_admitted_ = nullptr;
  obs::Counter* checks_rejected_ = nullptr;
  obs::Counter* committed_counter_ = nullptr;
  obs::Counter* released_counter_ = nullptr;
  obs::Gauge* active_gauge_ = nullptr;
  obs::Histogram* admission_hist_ = nullptr;

  /// Declared LAST: the workers must drain and join BEFORE any owned
  /// state above is destroyed.
  std::unique_ptr<ShardEngine> engine_;
};

}  // namespace e2e::bb
