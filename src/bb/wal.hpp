// Write-ahead log for broker durability.
//
// The paper's brokers make advance-reservation *commitments* on behalf of
// users; an SLA-grade broker cannot forget them on a crash. Every
// state-changing admission event — single and batch commits, releases and
// purges, tunnel registration/authorization/per-flow allocation, and
// delegation-serial issuance — is appended to this log as one hash-chained
// JSON line (the same tamper-evident chain discipline as the audit log,
// obs/audit.hpp) and fsync'd **before the caller's request is acked**.
//
// Group commit: concurrent committers coalesce onto one fsync. append()
// buffers the record under the log mutex and returns its sequence number
// (the LSN); commit(lsn) blocks until every record up to lsn is durable —
// the first waiter becomes the sync leader, writes and fsyncs everything
// buffered so far, and wakes the group. The PR-5 batch admission path
// appends ONE record per batch, so a batch of N flows costs one line and
// (at most) one fsync, not N.
//
// The recovery contract (docs/DURABILITY.md): replaying a snapshot plus
// the log tail into a fresh broker reproduces the exact pre-crash pool
// timeline. A torn final record (partial write at the crash point) is
// detected and dropped; a corrupted or reordered record anywhere else
// breaks the hash chain and fails recovery instead of replaying garbage.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bb/reservation.hpp"
#include "common/clock.hpp"
#include "common/result.hpp"

#include <condition_variable>
#include <mutex>

namespace e2e::obs {
class Counter;
class Histogram;
}  // namespace e2e::obs

namespace e2e::bb {

/// The closed set of WAL record kinds (documented field by field in
/// docs/DURABILITY.md; recovery.cpp rejects anything else).
namespace wal_kind {
inline constexpr char kAdmit[] = "admit";
inline constexpr char kAdmitBatch[] = "admit_batch";
inline constexpr char kRelease[] = "release";
inline constexpr char kReleaseBatch[] = "release_batch";
inline constexpr char kTunnelRegister[] = "tunnel_register";
inline constexpr char kTunnelAuthorize[] = "tunnel_authorize";
inline constexpr char kTunnelAlloc[] = "tunnel_alloc";
inline constexpr char kTunnelAllocBatch[] = "tunnel_alloc_batch";
inline constexpr char kTunnelRelease[] = "tunnel_release";
inline constexpr char kDelegationSerial[] = "delegation_serial";
}  // namespace wal_kind

/// Flat key/value payload of one record (all values are JSON strings;
/// numeric fields are rendered with round-trip precision).
using WalFields = std::vector<std::pair<std::string, std::string>>;

/// Round-trip-exact decimal rendering for rates/costs (%.17g).
std::string wal_format_double(double v);
Result<double> wal_parse_double(const std::string& s);

/// Look up `key` in `fields`; kBadMessage if absent.
Result<std::string> wal_field(const WalFields& fields, const std::string& key);

/// Render / parse one flat string->string JSON object (one snapshot line;
/// bb/snapshot.cpp shares the WAL's escaping and parsing discipline).
std::string wal_render_flat_object(const WalFields& fields);
Result<WalFields> wal_parse_flat_object(const std::string& line);

/// Durably replace `path` with `content`: write `path.tmp`, fsync it,
/// rename over `path`, then fsync the containing directory so the rename
/// itself survives power loss. With durable=false every fsync is skipped
/// (SyncMode::kNone measurement runs only).
Status wal_replace_file_durable(const std::string& path,
                                const std::string& content, bool durable);

/// A broker reservation record as WAL fields (id, upstream and the full
/// ResSpec) and back. Used by admit/release/tunnel records and by the
/// snapshot's reservation lines — one schema, documented in
/// docs/DURABILITY.md.
WalFields reservation_to_fields(const Reservation& reservation);
Result<Reservation> reservation_from_fields(const WalFields& fields);

struct WalRecord {
  std::uint64_t seq = 0;  ///< LSN; monotonic across truncations.
  SimTime at = 0;         ///< Virtual time of the decision being logged.
  std::string domain;     ///< Broker domain that owns the log.
  std::string kind;       ///< wal_kind::*
  WalFields fields;       ///< Kind-specific payload.
  /// Batch records carry one entry per granted element; the whole batch is
  /// one record, so it is applied atomically on replay.
  std::vector<WalFields> items;
  std::string prev_hash;  ///< Hex SHA-256 of the previous record.
  std::string hash;       ///< Hex SHA-256 over prev_hash + this record.

  /// One JSON line, `hash` last (the chain hashes everything before it).
  std::string to_jsonl() const;
};

class WriteAheadLog {
 public:
  enum class SyncMode {
    /// Records are written but never fsync'd — no durability guarantee.
    /// Useful only for measuring the pure serialization overhead.
    kNone,
    /// fsync-before-ack with group commit (the durability contract).
    kFsync,
  };

  /// Open (create or append to) the log at `path`. An existing file's
  /// chain is verified end to end and its head hash / next sequence are
  /// adopted, so a reopened log continues the same chain. A torn final
  /// record in the existing file is truncated away (it was never acked).
  /// `min_next_seq` keeps sequence numbers monotonic across snapshot
  /// truncation: reopening an emptied log after a crash passes the
  /// snapshot's `wal_next_seq` so new records never reuse covered numbers.
  /// `head_hash` continues the chain across the same boundary: when the
  /// file holds no records (everything was truncated into a snapshot),
  /// the first new record links to this hash — pass the snapshot's
  /// `wal_head` (or the recovery report's) so the recovery-time
  /// continuity check still ties the tail to the snapshot. Ignored when
  /// the file has records (their head wins).
  static Result<std::unique_ptr<WriteAheadLog>> open(
      const std::string& path, SyncMode mode = SyncMode::kFsync,
      std::uint64_t min_next_seq = 1, const std::string& head_hash = {});

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Append one record (buffered); returns its LSN. Not yet durable —
  /// call commit(lsn) before acking the caller.
  std::uint64_t append(const std::string& domain, const std::string& kind,
                       WalFields fields, std::vector<WalFields> items = {});

  /// Block until every record up to `lsn` is durable. Concurrent callers
  /// coalesce onto one fsync (group commit).
  ///
  /// A write or fsync failure LATCHES the log into a permanent-failure
  /// state: the failed batch is discarded, and every subsequent commit()
  /// (and truncate_through()) returns the latched error. Continuing to
  /// append past a lost batch would put a sequence gap and a chain break
  /// on disk — recovery would then reject records acked *after* the
  /// error, so the log refuses to ack anything further instead. (A failed
  /// fsync may still have persisted the batch; replaying such a record
  /// after the broker unwound its grant only re-reserves capacity that no
  /// caller was ever acked — conservative, never a double-grant.)
  Status commit(std::uint64_t lsn);

  /// Make the next group-commit leader's write fail (test hook for the
  /// latch + caller-unwind paths; real injection would need a full fs
  /// fault harness).
  void inject_commit_failure_for_testing();

  /// append + commit in one call.
  Status log(const std::string& domain, const std::string& kind,
             WalFields fields, std::vector<WalFields> items = {});

  const std::string& path() const { return path_; }
  SyncMode sync_mode() const { return mode_; }
  /// LSN the next append will get.
  std::uint64_t next_seq() const;
  /// Chain head (hash of the newest record; genesis when empty).
  std::string head_hash() const;

  /// Snapshot support: drop every record up to and including
  /// `covered_seq` (they are captured by a snapshot). Records after it
  /// are rewritten to a fresh file; the chain is NOT restarted — the
  /// surviving records keep their hashes, so a snapshot's recorded chain
  /// head still links to the first surviving line. Returns the number of
  /// records dropped.
  Result<std::size_t> truncate_through(std::uint64_t covered_seq);

  /// Verify the chain of a log file; returns the number of verified
  /// records (a torn final record is NOT an error — it is reported via
  /// read_file). Any other inconsistency is an error.
  static Result<std::size_t> verify_file(const std::string& path);

  struct ReadResult {
    std::vector<WalRecord> records;
    /// True when the final line was torn (partial write) and dropped.
    bool torn_tail = false;
  };
  /// Read and verify a log file. A torn FINAL record is dropped and
  /// flagged; a broken chain or malformed record anywhere else is an
  /// error — recovery must refuse to replay a tampered log.
  static Result<ReadResult> read_file(const std::string& path);
  /// Same, over in-memory content (crash-point tests feed file prefixes).
  static Result<ReadResult> read_content(const std::string& content);

  /// All-zero hex digest seeding a fresh chain (same as the audit log's).
  static const std::string& genesis_hash();

 private:
  WriteAheadLog(std::string path, SyncMode mode, int fd,
                std::uint64_t next_seq, std::string head_hash);

  void ensure_instruments();
  /// Cached per-kind e2e_bb_wal_records_total counter. The wal_kind set is
  /// closed, so all of them resolve once at open; append() never takes the
  /// registry mutex (a per-append labeled lookup was a measurable slice of
  /// the nosync anomaly).
  obs::Counter* records_counter_for(const std::string& kind) const;

  std::string path_;
  SyncMode mode_;
  int fd_ = -1;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::string buffer_;             // appended-but-unwritten lines
  std::uint64_t next_seq_ = 1;     // LSN of the next append
  std::uint64_t durable_seq_ = 0;  // highest durable LSN (0 = none)
  std::size_t buffered_records_ = 0;
  bool sync_in_flight_ = false;
  Status fail_status_;  // non-ok = latched permanent failure
  bool fail_next_commit_for_testing_ = false;
  std::string head_hash_;  // empty = genesis

  obs::Counter* bytes_counter_ = nullptr;
  obs::Counter* fsyncs_counter_ = nullptr;
  obs::Histogram* group_size_hist_ = nullptr;
  std::array<std::pair<const char*, obs::Counter*>, 10> records_counters_{};
};

}  // namespace e2e::bb
