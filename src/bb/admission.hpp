// Interval-based admission control for advance reservations.
//
// A CapacityPool tracks rate commitments over virtual-time intervals
// against a fixed capacity (a link, a peering profile, or a tunnel's
// aggregate). Admission asks: does `rate` fit under the capacity at every
// instant of the requested interval, given all existing commitments?
//
// GARA-style advance reservations (paper §3: "GARA provides advance
// reservations and end-to-end management") need exactly this shape of
// bookkeeping.
//
// The committed-rate function is piecewise constant, so the pool keeps a
// timeline index: one entry per distinct commitment boundary (start or
// end), holding the committed level on [boundary, next boundary). With n
// live commitments and k boundaries inside the queried interval,
// committed_at is O(log n) and peak_committed/can_admit/headroom are
// O(log n + k) — against the original full-map scan, which is kept intact
// as the `*_reference` oracle (same pattern as crypto's modexp_reference).
//
// ISSUE 8 footprint/contention work: the index is a FlatTimeline (sorted
// vector, no per-node allocation — bb/timeline.hpp keeps the old map as
// a differential oracle), commitment map nodes come from a slab arena
// (bb/arena.hpp), and metric publication can be batched
// (set_metrics_flush_interval) so a pool owned by a shard worker does not
// bounce global counter cache lines on every admission.
//
// Pools are internally locked: commit() is an atomic check+insert, so
// brokers and tunnels can run admission from worker threads without an
// external mutex. Single-threaded call sequences behave exactly as the
// pre-lock implementation did. Under the shard engine the lock is
// uncontended (one owner thread) and cheap.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bb/arena.hpp"
#include "bb/timeline.hpp"
#include "common/clock.hpp"
#include "common/result.hpp"

namespace e2e::obs {
class Counter;
class Gauge;
}  // namespace e2e::obs

namespace e2e::bb {

class CapacityPool {
 public:
  CapacityPool() : CapacityPool(0) {}
  explicit CapacityPool(double capacity_bits_per_s,
                        std::string owner_domain = {})
      : capacity_(capacity_bits_per_s),
        owner_domain_(std::move(owner_domain)),
        mutex_(std::make_unique<std::mutex>()) {}

  ~CapacityPool();

  // Copies get independent state (and a fresh mutex + arena); moved-from
  // pools are empty shells (only destruction/assignment are valid
  // afterwards).
  CapacityPool(const CapacityPool& other);
  CapacityPool& operator=(const CapacityPool& other);
  CapacityPool(CapacityPool&& other) noexcept;
  CapacityPool& operator=(CapacityPool&& other) noexcept;

  double capacity() const { return capacity_; }

  /// Domain this pool accounts against; labels the rejection counter and
  /// the boundary gauge. Set at construction (brokers) or right after
  /// registration (tunnels), before concurrent use.
  void set_owner_domain(std::string domain);
  const std::string& owner_domain() const { return owner_domain_; }

  /// Publish counter/gauge deltas every `n` mutations instead of every
  /// one (1 = immediate, the default, byte-identical to the historical
  /// behavior). A pool owned by a shard worker sets this high so the
  /// global registry's atomics stop bouncing between cores; pending
  /// deltas flush on the next interval boundary, on flush_metrics(), and
  /// on destruction.
  void set_metrics_flush_interval(std::size_t n);
  /// Force pending metric deltas out to the global registry now.
  void flush_metrics();

  /// Peak committed rate over `interval`.
  double peak_committed(const TimeInterval& interval) const;

  /// Committed rate at one instant.
  double committed_at(SimTime t) const;

  /// Would `rate` fit over the whole interval?
  bool can_admit(const TimeInterval& interval, double rate) const;

  /// Commit `rate` over `interval` under `key` (the reservation handle).
  /// Fails if it does not fit or the key is already present. The
  /// check-and-insert is atomic under the pool's internal lock.
  Status commit(const std::string& key, const TimeInterval& interval,
                double rate);

  /// One admission request inside a batch.
  struct BatchRequest {
    std::string key;
    TimeInterval interval;
    double rate = 0;
  };

  /// Admit a vector of requests under ONE lock acquisition: requests are
  /// evaluated in ascending interval.start order (ties by input position),
  /// each decision seeing the commitments admitted earlier in the same
  /// batch. Statuses come back in input order. Decisions are identical to
  /// committing the same requests sequentially in that sorted order.
  std::vector<Status> commit_batch(const std::vector<BatchRequest>& requests);

  /// Release a commitment; idempotent error if unknown.
  Status release(const std::string& key);

  bool holds(const std::string& key) const {
    std::lock_guard lock(*mutex_);
    return commitments_.find(key) != commitments_.end();
  }
  std::size_t commitment_count() const {
    std::lock_guard lock(*mutex_);
    return commitments_.size();
  }
  /// Live boundary points in the timeline index (<= 2 * commitments).
  std::size_t boundary_count() const {
    std::lock_guard lock(*mutex_);
    return timeline_.size();
  }

  /// Largest rate admissible over `interval` (capacity - peak committed).
  double headroom(const TimeInterval& interval) const;

  /// One live commitment, as seen by a state snapshot (bb/snapshot.cpp).
  struct CommitmentView {
    std::string key;
    TimeInterval interval;
    double rate = 0;
  };
  /// Stable copy of every live commitment, in key order. The timeline is a
  /// pure function of this set, so persisting it is enough to rebuild the
  /// pool exactly (recovery re-commits each entry).
  std::vector<CommitmentView> commitments_view() const {
    std::lock_guard lock(*mutex_);
    std::vector<CommitmentView> out;
    out.reserve(commitments_.size());
    for (const auto& [key, c] : commitments_) {
      out.push_back(CommitmentView{key, c.interval, c.rate});
    }
    return out;
  }

  /// Slab bytes held by this pool's node arena (footprint reporting —
  /// bench/load_broker's 1M-live point).
  std::size_t arena_bytes() const {
    std::lock_guard lock(*mutex_);
    return commitments_.get_allocator().slab_bytes();
  }

  // --- Reference oracle -----------------------------------------------------
  // The original implementation: committed_at scans every commitment,
  // peak_committed re-evaluates committed_at per boundary point. Kept for
  // differential tests (tests/bb_pool_equivalence_test.cpp) and as the
  // baseline of bench/load_broker.cpp.
  double peak_committed_reference(const TimeInterval& interval) const;
  double committed_at_reference(SimTime t) const;
  bool can_admit_reference(const TimeInterval& interval, double rate) const;
  double headroom_reference(const TimeInterval& interval) const;
  /// commit() with the admission decision taken by the reference scan
  /// instead of the timeline index (both structures stay maintained).
  Status commit_reference(const std::string& key, const TimeInterval& interval,
                          double rate);

 private:
  static constexpr double kEpsilon = 1e-6;

  struct Commitment {
    TimeInterval interval;
    double rate = 0;
  };

  /// Key order is load-bearing: commitments_view(), snapshots and the
  /// reference oracle's float-summation order all iterate it. The arena
  /// allocator only changes where the nodes live.
  using CommitmentMap =
      std::map<std::string, Commitment, std::less<std::string>,
               ArenaAllocator<std::pair<const std::string, Commitment>>>;

  double committed_at_locked(SimTime t) const;
  double peak_committed_locked(const TimeInterval& interval) const;
  bool can_admit_locked(const TimeInterval& interval, double rate) const;
  double headroom_locked(const TimeInterval& interval) const;
  double peak_committed_reference_locked(const TimeInterval& interval) const;
  double committed_at_reference_locked(SimTime t) const;
  Status commit_locked(const std::string& key, const TimeInterval& interval,
                       double rate, bool use_reference);
  /// Count one mutation against the flush interval; flush when due.
  void note_mutation_locked();
  /// Push pending counter deltas + the boundary gauge to the registry.
  void flush_metrics_locked();
  void ensure_instruments_locked() const;

  double capacity_ = 0;
  std::string owner_domain_;
  CommitmentMap commitments_;
  FlatTimeline timeline_;

  // unique_ptr keeps the pool movable (tunnels live in maps).
  mutable std::unique_ptr<std::mutex> mutex_;

  // Metric batching (ISSUE 8): counter increments and the boundary gauge
  // accumulate locally and flush every metrics_flush_interval_ mutations.
  std::size_t metrics_flush_interval_ = 1;
  std::size_t mutations_since_flush_ = 0;
  std::uint64_t pending_commits_ = 0;
  std::uint64_t pending_releases_ = 0;
  std::uint64_t pending_rejections_ = 0;

  // Cached instrument pointers: MetricsRegistry hands out references that
  // stay valid for its lifetime, and resolving one takes the registry
  // mutex — far too expensive per admission. Resolved lazily under the
  // pool lock; invalidated when the owner domain changes.
  mutable obs::Counter* commits_counter_ = nullptr;
  mutable obs::Counter* releases_counter_ = nullptr;
  mutable obs::Counter* rejections_counter_ = nullptr;
  mutable obs::Gauge* boundaries_gauge_ = nullptr;
  /// Boundary count last reported to the gauge (subtracted on destruction
  /// so short-lived pools don't leave residue behind).
  mutable double reported_boundaries_ = 0;
};

}  // namespace e2e::bb
