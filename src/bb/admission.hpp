// Interval-based admission control for advance reservations.
//
// A CapacityPool tracks rate commitments over virtual-time intervals
// against a fixed capacity (a link, a peering profile, or a tunnel's
// aggregate). Admission asks: does `rate` fit under the capacity at every
// instant of the requested interval, given all existing commitments?
//
// GARA-style advance reservations (paper §3: "GARA provides advance
// reservations and end-to-end management") need exactly this shape of
// bookkeeping.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/result.hpp"

namespace e2e::bb {

class CapacityPool {
 public:
  CapacityPool() = default;
  explicit CapacityPool(double capacity_bits_per_s)
      : capacity_(capacity_bits_per_s) {}

  double capacity() const { return capacity_; }

  /// Peak committed rate over `interval`.
  double peak_committed(const TimeInterval& interval) const;

  /// Committed rate at one instant.
  double committed_at(SimTime t) const;

  /// Would `rate` fit over the whole interval?
  bool can_admit(const TimeInterval& interval, double rate) const {
    return interval.valid() && rate >= 0 &&
           peak_committed(interval) + rate <= capacity_ + kEpsilon;
  }

  /// Commit `rate` over `interval` under `key` (the reservation handle).
  /// Fails if it does not fit or the key is already present.
  Status commit(const std::string& key, const TimeInterval& interval,
                double rate);

  /// Release a commitment; idempotent error if unknown.
  Status release(const std::string& key);

  bool holds(const std::string& key) const {
    return commitments_.contains(key);
  }
  std::size_t commitment_count() const { return commitments_.size(); }

  /// Largest rate admissible over `interval` (capacity - peak committed).
  double headroom(const TimeInterval& interval) const {
    const double h = capacity_ - peak_committed(interval);
    return h > 0 ? h : 0;
  }

 private:
  static constexpr double kEpsilon = 1e-6;

  struct Commitment {
    TimeInterval interval;
    double rate = 0;
  };

  double capacity_ = 0;
  std::map<std::string, Commitment> commitments_;
};

}  // namespace e2e::bb
