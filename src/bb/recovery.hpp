// Crash recovery: snapshot + WAL tail → a broker identical to the one
// that crashed.
//
// recover_broker() restores the most recent snapshot (if any) into a
// freshly constructed broker, then replays the WAL tail: records whose
// sequence number the snapshot already covers are skipped, records whose
// effect is already present are skipped idempotently (handles embed the
// broker's monotonic id counter, so a re-applied admit is a detectable
// duplicate, never a double-grant), and everything else is applied through
// the broker's restore hooks — no audit spam, no WAL re-append, no edge
// callbacks. The invariant (enforced by tests/bb_wal_recovery_test.cpp and
// the crash soak): after recovery the broker's pool timeline, reservation
// set, tunnel state and id sources are exactly the pre-crash values for
// every acked operation.
//
// Call with the broker's WAL DETACHED (attach_wal(nullptr) state, as a
// fresh broker is); attach a reopened log after recovery returns.
#pragma once

#include <cstdint>
#include <string>

#include "bb/bandwidth_broker.hpp"
#include "common/result.hpp"

namespace e2e::bb {

struct RecoveryReport {
  bool snapshot_loaded = false;
  std::size_t snapshot_reservations = 0;
  std::size_t snapshot_tunnels = 0;
  std::size_t snapshot_tunnel_allocations = 0;
  /// Verified records read from the WAL tail.
  std::size_t wal_records = 0;
  /// Tail records applied (admits, releases, tunnel ops, serials).
  std::size_t replayed = 0;
  /// Tail records older than the snapshot's covered position.
  std::size_t skipped_covered = 0;
  /// Idempotent skips: the record's effect was already present.
  std::size_t skipped_duplicate = 0;
  /// Records that could not be applied (state divergence — investigate).
  std::size_t failed = 0;
  /// A torn final WAL record was detected and dropped (never acked).
  bool torn_tail_dropped = false;
  /// Sequence number the reopened WAL should continue from.
  std::uint64_t wal_next_seq = 1;
  /// Chain head the reopened WAL should continue from: the hash of the
  /// last surviving on-disk record, else the snapshot's recorded head,
  /// else genesis. Pass to WriteAheadLog::open so a log truncated to
  /// empty keeps the chain linked across the restart.
  std::string wal_head;
};

/// Restore `broker` (freshly constructed, same domain/capacity/SLAs as the
/// crashed one, WAL detached) from `snapshot_path` and `wal_path`. Either
/// path may name a missing file (no snapshot yet / no tail); an empty
/// string skips that source outright. A corrupted snapshot or a break in
/// the WAL chain anywhere but the final record is an error — tampered
/// state is refused, not replayed. Continuity between the two files is
/// verified as well: the tail must link to the snapshot's recorded
/// `wal_head` (or genesis when there is no snapshot) with no sequence
/// gap, and a snapshot whose `wal_next_seq` implies a truncated log
/// refuses to recover if the WAL file is missing outright.
Result<RecoveryReport> recover_broker(BandwidthBroker& broker,
                                      const std::string& snapshot_path,
                                      const std::string& wal_path);

}  // namespace e2e::bb
