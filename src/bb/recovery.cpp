#include "bb/recovery.hpp"

#include <sys/stat.h>

#include <algorithm>

#include "bb/snapshot.hpp"
#include "bb/wal.hpp"
#include "obs/audit.hpp"
#include "obs/instruments.hpp"
#include "obs/metrics.hpp"

namespace e2e::bb {

namespace {

bool file_exists(const std::string& path) {
  struct stat st{};
  return !path.empty() && ::stat(path.c_str(), &st) == 0;
}

// Handle-number parsing lives in bb/reservation.hpp
// (reservation_handle_number) — shared with the broker's record-shard
// routing so recovery and routing agree on every handle's number.

void count(const char* metric, const char* label_key,
           const char* label_value, std::uint64_t by = 1) {
  if (by == 0) return;
  obs::MetricsRegistry::global()
      .counter(metric, {{label_key, label_value}})
      .increment(by);
}

struct Replayer {
  BandwidthBroker& broker;
  RecoveryReport& report;
  std::uint64_t max_handle = 0;
  std::uint64_t max_serial = 0;

  void note_handle(const std::string& id) {
    max_handle = std::max(max_handle, reservation_handle_number(id));
  }

  /// Fold one apply outcome into the report: success = replayed,
  /// kConflict/kNotFound = the effect is already present (idempotent
  /// skip), anything else = divergence.
  void applied(const Status& status) {
    if (status.ok()) {
      ++report.replayed;
    } else if (status.error().code == ErrorCode::kConflict ||
               status.error().code == ErrorCode::kNotFound) {
      ++report.skipped_duplicate;
    } else {
      ++report.failed;
    }
  }

  Status restore_from_fields(const WalFields& fields) {
    auto resv = reservation_from_fields(fields);
    if (!resv.ok()) return resv.error();
    note_handle(resv->id);
    return broker.restore_reservation(*resv);
  }

  void replay(const WalRecord& record) {
    if (record.kind == wal_kind::kAdmit) {
      applied(restore_from_fields(record.fields));
    } else if (record.kind == wal_kind::kAdmitBatch) {
      // One record, N grants: apply every item (idempotent per item).
      Status worst = Status::ok_status();
      for (const WalFields& item : record.items) {
        auto status = restore_from_fields(item);
        if (!status.ok()) worst = std::move(status);
      }
      applied(worst);
    } else if (record.kind == wal_kind::kRelease) {
      auto id = wal_field(record.fields, "id");
      if (!id.ok()) {
        ++report.failed;
        return;
      }
      applied(broker.release(*id));
    } else if (record.kind == wal_kind::kReleaseBatch) {
      Status worst = Status::ok_status();
      for (const WalFields& item : record.items) {
        auto id = wal_field(item, "id");
        if (!id.ok()) {
          worst = id.error();
          continue;
        }
        auto status = broker.release(*id);
        if (!status.ok() && status.error().code != ErrorCode::kNotFound) {
          worst = std::move(status);
        }
      }
      applied(worst);
    } else if (record.kind == wal_kind::kTunnelRegister) {
      auto resv = reservation_from_fields(record.fields);
      if (!resv.ok()) {
        ++report.failed;
        return;
      }
      note_handle(resv->id);
      applied(broker.restore_tunnel(resv->id, resv->spec));
    } else if (record.kind == wal_kind::kTunnelAuthorize) {
      auto tunnel_id = wal_field(record.fields, "tunnel");
      auto user = wal_field(record.fields, "user");
      Tunnel* tunnel =
          tunnel_id.ok() ? broker.find_tunnel(*tunnel_id) : nullptr;
      if (tunnel == nullptr || !user.ok()) {
        ++report.failed;
        return;
      }
      // WAL detached during recovery: the insert cannot fail.
      (void)tunnel->authorize(*user);
      ++report.replayed;
    } else if (record.kind == wal_kind::kTunnelAlloc ||
               record.kind == wal_kind::kTunnelAllocBatch ||
               record.kind == wal_kind::kTunnelRelease) {
      auto tunnel_id = wal_field(record.fields, "tunnel");
      Tunnel* tunnel =
          tunnel_id.ok() ? broker.find_tunnel(*tunnel_id) : nullptr;
      if (tunnel == nullptr) {
        ++report.failed;
        return;
      }
      if (record.kind == wal_kind::kTunnelRelease) {
        auto sub_id = wal_field(record.fields, "sub_id");
        if (!sub_id.ok()) {
          ++report.failed;
          return;
        }
        applied(tunnel->release(*sub_id));
        return;
      }
      const std::vector<WalFields> single{record.fields};
      const auto& items =
          record.kind == wal_kind::kTunnelAlloc ? single : record.items;
      Status worst = Status::ok_status();
      for (const WalFields& item : items) {
        auto status = apply_tunnel_alloc(*tunnel, item);
        if (!status.ok()) worst = std::move(status);
      }
      applied(worst);
    } else if (record.kind == wal_kind::kDelegationSerial) {
      auto raw = wal_field(record.fields, "serial");
      if (!raw.ok()) {
        ++report.failed;
        return;
      }
      std::uint64_t serial = 0;
      for (const char c : *raw) {
        if (c < '0' || c > '9') {
          ++report.failed;
          return;
        }
        serial = serial * 10 + static_cast<std::uint64_t>(c - '0');
      }
      max_serial = std::max(max_serial, serial + 1);
      ++report.replayed;
    } else {
      ++report.failed;  // unknown kind: refuse silently guessing
    }
  }

  Status apply_tunnel_alloc(Tunnel& tunnel, const WalFields& item) {
    auto sub_id = wal_field(item, "sub_id");
    auto start = wal_field(item, "start");
    auto end = wal_field(item, "end");
    auto raw_rate = wal_field(item, "rate");
    if (!sub_id.ok() || !start.ok() || !end.ok() || !raw_rate.ok()) {
      return make_error(ErrorCode::kBadMessage,
                        "tunnel_alloc record missing fields", "bb.recovery");
    }
    auto rate = wal_parse_double(*raw_rate);
    if (!rate.ok()) return rate.error();
    TimeInterval interval{};
    for (auto [raw, target] :
         {std::pair<const std::string*, SimTime*>{&*start, &interval.start},
          {&*end, &interval.end}}) {
      SimTime value = 0;
      bool neg = false;
      std::size_t i = 0;
      if (!raw->empty() && (*raw)[0] == '-') {
        neg = true;
        i = 1;
      }
      if (i >= raw->size()) {
        return make_error(ErrorCode::kBadMessage, "malformed time field",
                          "bb.recovery");
      }
      for (; i < raw->size(); ++i) {
        const char c = (*raw)[i];
        if (c < '0' || c > '9') {
          return make_error(ErrorCode::kBadMessage, "malformed time field",
                            "bb.recovery");
        }
        value = value * 10 + (c - '0');
      }
      *target = neg ? -value : value;
    }
    note_handle(*sub_id);
    return tunnel.restore_allocation(*sub_id, interval, *rate);
  }
};

}  // namespace

Result<RecoveryReport> recover_broker(BandwidthBroker& broker,
                                      const std::string& snapshot_path,
                                      const std::string& wal_path) {
  RecoveryReport report;
  Replayer replayer{broker, report};
  const auto fail = [&](const Error& error) -> Result<RecoveryReport> {
    count(obs::kBbRecoveryRunsTotal, "result", "error");
    return error;
  };

  // --- Phase 1: the snapshot (if one exists) --------------------------------
  std::uint64_t covered_next_seq = 1;
  std::string expected_head = WriteAheadLog::genesis_hash();
  std::uint64_t next_id_floor = broker.next_id_value();
  std::uint64_t serial_floor = broker.next_certificate_serial_value();
  if (file_exists(snapshot_path)) {
    auto snapshot = read_snapshot(snapshot_path);
    if (!snapshot.ok()) return fail(snapshot.error());
    if (snapshot->meta.domain != broker.domain()) {
      return fail(make_error(ErrorCode::kInvalidArgument,
                             "snapshot is for domain " +
                                 snapshot->meta.domain + ", broker is " +
                                 broker.domain(),
                             "bb.recovery"));
    }
    report.snapshot_loaded = true;
    covered_next_seq = snapshot->meta.wal_next_seq;
    expected_head = snapshot->meta.wal_head;
    next_id_floor = snapshot->meta.next_id;
    serial_floor = snapshot->meta.next_cert_serial;
    broker.restore_counters(snapshot->meta.counters);
    for (const Reservation& resv : snapshot->reservations) {
      replayer.note_handle(resv.id);
      auto status = broker.restore_reservation(resv);
      if (!status.ok()) return fail(status.error());
      ++report.snapshot_reservations;
    }
    for (const SnapshotTunnel& entry : snapshot->tunnels) {
      replayer.note_handle(entry.id);
      auto status = broker.restore_tunnel(entry.id, entry.spec);
      if (!status.ok()) return fail(status.error());
      Tunnel* tunnel = broker.find_tunnel(entry.id);
      for (const std::string& user : entry.authorized) {
        (void)tunnel->authorize(user);  // WAL detached: cannot fail
      }
      for (const CapacityPool::CommitmentView& alloc : entry.allocations) {
        replayer.note_handle(alloc.key);
        auto restored =
            tunnel->restore_allocation(alloc.key, alloc.interval, alloc.rate);
        if (!restored.ok()) return fail(restored.error());
        ++report.snapshot_tunnel_allocations;
      }
      ++report.snapshot_tunnels;
    }
    count(obs::kBbRecoveryReplayedTotal, "source", "snapshot",
          report.snapshot_reservations + report.snapshot_tunnels +
              report.snapshot_tunnel_allocations);
  }

  // --- Phase 2: the WAL tail ------------------------------------------------
  if (!file_exists(wal_path)) {
    if (report.snapshot_loaded && covered_next_seq > 1 &&
        !wal_path.empty()) {
      // The snapshot covers logged records, so a (possibly empty)
      // truncated WAL file must exist — truncation rewrites the file, it
      // never unlinks it. A missing file means the log was deleted:
      // anything acked after the snapshot is silently gone. Refuse.
      return fail(make_error(
          ErrorCode::kBadMessage,
          "wal file " + wal_path + " is missing but the snapshot covers " +
              std::to_string(covered_next_seq - 1) +
              " log records (log deleted?)",
          "bb.recovery"));
    }
  } else {
    auto read = WriteAheadLog::read_file(wal_path);
    if (!read.ok()) return fail(read.error());
    report.torn_tail_dropped = read->torn_tail;
    report.wal_records = read->records.size();
    // Continuity with the snapshot before anything replays. read_file
    // verified the chain WITHIN the file; these checks tie the file to
    // the snapshot's recorded position (meta.wal_head / wal_next_seq), so
    // a swapped, re-truncated or tail-trimmed log cannot recover
    // silently without its acked records.
    if (!read->records.empty()) {
      const WalRecord& first = read->records.front();
      const std::uint64_t last_seq = read->records.back().seq;
      if (first.seq > covered_next_seq) {
        return fail(make_error(
            ErrorCode::kBadMessage,
            "wal starts at seq " + std::to_string(first.seq) +
                " but the snapshot covers through " +
                std::to_string(covered_next_seq - 1) +
                " (records between them are missing)",
            "bb.recovery"));
      }
      if (first.seq == covered_next_seq) {
        // Tail truncated at the snapshot boundary (or a fresh chain with
        // no snapshot): the first record must link to the recorded head.
        if (first.prev_hash != expected_head) {
          return fail(make_error(
              ErrorCode::kBadMessage,
              "wal tail does not link to the " +
                  std::string(report.snapshot_loaded ? "snapshot's chain head"
                                                     : "genesis hash") +
                  " (first record prev mismatch at seq " +
                  std::to_string(first.seq) + ")",
              "bb.recovery"));
        }
      } else if (last_seq + 1 >= covered_next_seq) {
        // Untruncated overlap: the record the snapshot names as its chain
        // head is still in the file — it must carry that exact hash.
        const WalRecord& head =
            read->records[covered_next_seq - 1 - first.seq];
        if (head.hash != expected_head) {
          return fail(make_error(
              ErrorCode::kBadMessage,
              "wal record at seq " + std::to_string(head.seq) +
                  " does not match the snapshot's recorded chain head "
                  "(snapshot and log are from different histories)",
              "bb.recovery"));
        }
      }
      // else: every record predates the snapshot's coverage and the
      // record the snapshot links to never reached the file (it was
      // appended but unsynced at the crash — its effects are inside the
      // snapshot). Nothing is replayable, nothing to verify.
    }
    for (const WalRecord& record : read->records) {
      if (record.seq < covered_next_seq) {
        // The snapshot already captured this record's effect (the log was
        // not truncated at the snapshot boundary — e.g. a crash between
        // snapshot rename and truncation).
        ++report.skipped_covered;
        continue;
      }
      replayer.replay(record);
    }
    if (!read->records.empty()) {
      covered_next_seq =
          std::max(covered_next_seq, read->records.back().seq + 1);
      expected_head = read->records.back().hash;
    }
  }
  report.wal_next_seq = covered_next_seq;
  report.wal_head = expected_head;

  // Fast-forward the id/serial sources past everything ever issued, so the
  // recovered broker can never hand out a handle twice.
  broker.restore_ids(std::max(next_id_floor, replayer.max_handle + 1),
                     std::max(serial_floor, replayer.max_serial));

  count(obs::kBbRecoveryReplayedTotal, "source", "wal", report.replayed);
  count(obs::kBbRecoverySkippedTotal, "reason", "seq_covered",
        report.skipped_covered);
  count(obs::kBbRecoverySkippedTotal, "reason", "already_present",
        report.skipped_duplicate);
  count(obs::kBbRecoveryRunsTotal, "result",
        report.failed == 0 ? "ok" : "error");

  obs::AuditLog::global().append(
      broker.domain(), obs::audit_kind::kRecovery,
      {{"result", report.failed == 0 ? "ok" : "divergent"},
       {"snapshot", report.snapshot_loaded ? "1" : "0"},
       {"replayed", std::to_string(report.replayed)},
       {"skipped", std::to_string(report.skipped_covered +
                                  report.skipped_duplicate)},
       {"failed", std::to_string(report.failed)},
       {"torn_tail", report.torn_tail_dropped ? "1" : "0"}});
  return report;
}

}  // namespace e2e::bb
