#include "bb/bandwidth_broker.hpp"

#include "common/logging.hpp"
#include "obs/audit.hpp"
#include "obs/instruments.hpp"

namespace e2e::bb {

BandwidthBroker::BandwidthBroker(BrokerConfig config,
                                 policy::PolicyServer policy_server,
                                 crypto::CertificateAuthority& ca, Rng& rng,
                                 TimeInterval cert_validity)
    : config_(std::move(config)),
      dn_(crypto::DistinguishedName::make("BB-" + config_.domain,
                                          config_.domain)),
      keys_(crypto::generate_keypair(rng, config_.key_bits)),
      certificate_(ca.issue(dn_, keys_.pub, cert_validity)),
      policy_server_(std::move(policy_server)),
      local_pool_(config_.capacity_bits_per_s) {
  trust_store_.add_anchor(ca.root_certificate());
}

void BandwidthBroker::add_upstream_sla(sla::ServiceLevelAgreement agreement) {
  if (agreement.peer_ca_certificate) {
    trust_store_.add_anchor(*agreement.peer_ca_certificate);
  }
  peer_pools_.emplace(agreement.from_domain,
                      CapacityPool(agreement.profile.rate_bits_per_s));
  upstream_slas_[agreement.from_domain] = std::move(agreement);
}

const sla::ServiceLevelAgreement* BandwidthBroker::upstream_sla(
    const std::string& from_domain) const {
  const auto it = upstream_slas_.find(from_domain);
  return it == upstream_slas_.end() ? nullptr : &it->second;
}

void BandwidthBroker::set_next_hop(const std::string& destination_domain,
                                   const std::string& peer_domain) {
  next_hops_[destination_domain] = peer_domain;
}

std::optional<std::string> BandwidthBroker::next_hop(
    const std::string& destination_domain) const {
  if (destination_domain == config_.domain) return std::nullopt;
  const auto it = next_hops_.find(destination_domain);
  if (it == next_hops_.end()) return std::nullopt;
  return it->second;
}

Status BandwidthBroker::check_admission(const ResSpec& spec,
                                        const std::string& from_domain) const {
  std::lock_guard lock(mutex_);
  return check_admission_locked(spec, from_domain);
}

Status BandwidthBroker::check_admission_locked(
    const ResSpec& spec, const std::string& from_domain) const {
  if (!spec.interval.valid() || spec.rate_bits_per_s <= 0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "reservation needs a valid interval and positive rate",
                      config_.domain);
  }
  if (!from_domain.empty()) {
    // Transit traffic: must conform to the SLA with the upstream peer
    // (paper §6.2: the intermediate BB "checks whether the requested
    // traffic profile conforms to the related SLA").
    const auto* agreement = upstream_sla(from_domain);
    if (agreement == nullptr) {
      return make_error(ErrorCode::kAdmissionRejected,
                        "no SLA with upstream domain " + from_domain,
                        config_.domain);
    }
    if (!agreement->covers(spec.interval.start)) {
      return make_error(ErrorCode::kAdmissionRejected,
                        "SLA with " + from_domain + " does not cover t=" +
                            std::to_string(spec.interval.start),
                        config_.domain);
    }
    const auto pool_it = peer_pools_.find(from_domain);
    if (pool_it == peer_pools_.end() ||
        !pool_it->second.can_admit(spec.interval, spec.rate_bits_per_s)) {
      return make_error(ErrorCode::kAdmissionRejected,
                        "SLA profile with " + from_domain + " exhausted",
                        config_.domain);
    }
  }
  if (!local_pool_.can_admit(spec.interval, spec.rate_bits_per_s)) {
    return make_error(ErrorCode::kAdmissionRejected,
                      "domain capacity exhausted (headroom " +
                          std::to_string(local_pool_.headroom(spec.interval)) +
                          " bits/s)",
                      config_.domain);
  }
  return Status::ok_status();
}

Result<ReservationId> BandwidthBroker::commit(const ResSpec& spec,
                                              const std::string& from_domain) {
  auto& registry = obs::MetricsRegistry::global();
  auto count_admission = [&](const char* result) {
    registry
        .counter(obs::kBbAdmissionChecksTotal,
                 {{"domain", config_.domain}, {"result", result}})
        .increment();
  };
  // Audit every accept/reject with the residual local capacity the decision
  // left behind; the record joins the caller's active admission span.
  auto audit_admission = [&](const char* result, const std::string& reason) {
    std::vector<std::pair<std::string, std::string>> fields;
    fields.emplace_back("result", result);
    fields.emplace_back("user", spec.user);
    fields.emplace_back("rate_bits_per_s",
                        std::to_string(spec.rate_bits_per_s));
    fields.emplace_back(
        "residual_bits_per_s",
        std::to_string(local_pool_.headroom(spec.interval)));
    if (!reason.empty()) fields.emplace_back("reason", reason);
    obs::AuditLog::global().append(config_.domain, obs::audit_kind::kAdmission,
                                   std::move(fields));
  };
  std::unique_lock lock(mutex_);
  ++counters_.requests;
  auto admissible = check_admission_locked(spec, from_domain);
  if (!admissible.ok()) {
    ++counters_.denied_admission;
    count_admission("rejected");
    audit_admission("rejected", admissible.error().message);
    return admissible.error();
  }
  const ReservationId id =
      config_.domain + "-resv-" + std::to_string(next_id_++);
  auto local = local_pool_.commit(id, spec.interval, spec.rate_bits_per_s);
  if (!local.ok()) {
    ++counters_.denied_admission;
    count_admission("rejected");
    audit_admission("rejected", local.error().message);
    return local.error();
  }
  if (!from_domain.empty()) {
    auto peer = peer_pools_.at(from_domain)
                    .commit(id, spec.interval, spec.rate_bits_per_s);
    if (!peer.ok()) {
      (void)local_pool_.release(id);  // rollback
      ++counters_.denied_admission;
      count_admission("rejected");
      audit_admission("rejected", peer.error().message);
      return peer.error();
    }
  }
  Reservation resv{id, spec, ReservationState::kGranted, from_domain};
  reservations_.emplace(id, resv);
  ++counters_.granted;
  count_admission("admitted");
  audit_admission("admitted", "");
  registry
      .counter(obs::kBbReservationsCommittedTotal,
               {{"domain", config_.domain}})
      .increment();
  registry
      .gauge(obs::kBbReservationsActive, {{"domain", config_.domain}})
      .add(1);
  lock.unlock();  // configurator may call back into the broker
  if (edge_configurator_) edge_configurator_(resv, /*install=*/true);
  log::info("bb[" + config_.domain + "]")
      << "committed " << id << ": " << spec.to_text();
  return id;
}

Status BandwidthBroker::release(const ReservationId& id) {
  std::unique_lock lock(mutex_);
  const auto it = reservations_.find(id);
  if (it == reservations_.end()) {
    return make_error(ErrorCode::kNotFound, "unknown reservation " + id,
                      config_.domain);
  }
  Reservation resv = it->second;
  (void)local_pool_.release(id);
  if (!resv.upstream_domain.empty()) {
    const auto pool_it = peer_pools_.find(resv.upstream_domain);
    if (pool_it != peer_pools_.end()) (void)pool_it->second.release(id);
  }
  resv.state = ReservationState::kReleased;
  reservations_.erase(it);
  ++counters_.released;
  auto& registry = obs::MetricsRegistry::global();
  registry
      .counter(obs::kBbReservationsReleasedTotal,
               {{"domain", config_.domain}})
      .increment();
  registry
      .gauge(obs::kBbReservationsActive, {{"domain", config_.domain}})
      .add(-1);
  lock.unlock();
  if (edge_configurator_) edge_configurator_(resv, /*install=*/false);
  return Status::ok_status();
}

std::size_t BandwidthBroker::purge_expired(SimTime now) {
  std::unique_lock lock(mutex_);
  std::vector<Reservation> purged;
  for (auto it = reservations_.begin(); it != reservations_.end();) {
    if (it->second.spec.interval.end <= now) {
      purged.push_back(it->second);
      (void)local_pool_.release(it->first);
      if (!it->second.upstream_domain.empty()) {
        const auto pool_it = peer_pools_.find(it->second.upstream_domain);
        if (pool_it != peer_pools_.end()) {
          (void)pool_it->second.release(it->first);
        }
      }
      it = reservations_.erase(it);
    } else {
      ++it;
    }
  }
  if (!purged.empty()) {
    auto& registry = obs::MetricsRegistry::global();
    registry
        .counter(obs::kBbReservationsReleasedTotal,
                 {{"domain", config_.domain}})
        .increment(purged.size());
    registry
        .gauge(obs::kBbReservationsActive, {{"domain", config_.domain}})
        .add(-static_cast<double>(purged.size()));
  }
  lock.unlock();
  for (auto& resv : purged) {
    resv.state = ReservationState::kReleased;
    if (edge_configurator_) edge_configurator_(resv, /*install=*/false);
  }
  return purged.size();
}

const Reservation* BandwidthBroker::find(const ReservationId& id) const {
  std::lock_guard lock(mutex_);
  const auto it = reservations_.find(id);
  return it == reservations_.end() ? nullptr : &it->second;
}

Result<TunnelId> BandwidthBroker::register_tunnel(
    const ResSpec& aggregate_spec) {
  if (!aggregate_spec.is_tunnel) {
    return make_error(ErrorCode::kInvalidArgument,
                      "register_tunnel: spec is not a tunnel",
                      config_.domain);
  }
  const TunnelId id =
      config_.domain + "-tunnel-" + std::to_string(next_id_++);
  tunnels_.emplace(id, Tunnel(id, aggregate_spec));
  obs::MetricsRegistry::global()
      .counter(obs::kBbTunnelsRegisteredTotal, {{"domain", config_.domain}})
      .increment();
  log::info("bb[" + config_.domain + "]")
      << "registered " << id << " aggregate "
      << aggregate_spec.rate_bits_per_s / 1e6 << " Mb/s";
  return id;
}

Tunnel* BandwidthBroker::find_tunnel(const TunnelId& id) {
  const auto it = tunnels_.find(id);
  return it == tunnels_.end() ? nullptr : &it->second;
}

const Tunnel* BandwidthBroker::find_tunnel(const TunnelId& id) const {
  const auto it = tunnels_.find(id);
  return it == tunnels_.end() ? nullptr : &it->second;
}

}  // namespace e2e::bb
