#include "bb/bandwidth_broker.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <latch>

#include "bb/wal.hpp"
#include "common/logging.hpp"
#include "obs/audit.hpp"
#include "obs/instruments.hpp"

namespace e2e::bb {

namespace {

/// Wall-clock microseconds since `t0` (the admission histogram is the one
/// wall-clock metric; everything else runs on virtual time).
double wall_us_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

BandwidthBroker::BandwidthBroker(BrokerConfig config,
                                 policy::PolicyServer policy_server,
                                 crypto::CertificateAuthority& ca, Rng& rng,
                                 TimeInterval cert_validity)
    : config_(std::move(config)),
      dn_(crypto::DistinguishedName::make("BB-" + config_.domain,
                                          config_.domain)),
      keys_(crypto::generate_keypair(rng, config_.key_bits)),
      certificate_(ca.issue(dn_, keys_.pub, cert_validity)),
      policy_server_(std::move(policy_server)),
      local_pool_(config_.capacity_bits_per_s, config_.domain) {
  trust_store_.add_anchor(ca.root_certificate());
  // Resolve the per-domain instruments once; references stay valid for the
  // registry's lifetime, so the admission hot path never takes the
  // registry mutex.
  auto& registry = obs::MetricsRegistry::global();
  const obs::Labels domain{{"domain", config_.domain}};
  checks_admitted_ = &registry.counter(
      obs::kBbAdmissionChecksTotal,
      {{"domain", config_.domain}, {"result", "admitted"}});
  checks_rejected_ = &registry.counter(
      obs::kBbAdmissionChecksTotal,
      {{"domain", config_.domain}, {"result", "rejected"}});
  committed_counter_ =
      &registry.counter(obs::kBbReservationsCommittedTotal, domain);
  released_counter_ =
      &registry.counter(obs::kBbReservationsReleasedTotal, domain);
  active_gauge_ = &registry.gauge(obs::kBbReservationsActive, domain);
  admission_hist_ = &registry.histogram(obs::kBbAdmissionUs, domain);
}

void BandwidthBroker::add_upstream_sla(sla::ServiceLevelAgreement agreement) {
  if (agreement.peer_ca_certificate) {
    trust_store_.add_anchor(*agreement.peer_ca_certificate);
  }
  peer_pools_.emplace(agreement.from_domain,
                      CapacityPool(agreement.profile.rate_bits_per_s,
                                   config_.domain));
  upstream_slas_[agreement.from_domain] = std::move(agreement);
}

const sla::ServiceLevelAgreement* BandwidthBroker::upstream_sla(
    const std::string& from_domain) const {
  const auto it = upstream_slas_.find(from_domain);
  return it == upstream_slas_.end() ? nullptr : &it->second;
}

void BandwidthBroker::set_next_hop(const std::string& destination_domain,
                                   const std::string& peer_domain) {
  next_hops_[destination_domain] = peer_domain;
}

std::optional<std::string> BandwidthBroker::next_hop(
    const std::string& destination_domain) const {
  if (destination_domain == config_.domain) return std::nullopt;
  const auto it = next_hops_.find(destination_domain);
  if (it == next_hops_.end()) return std::nullopt;
  return it->second;
}

Status BandwidthBroker::check_admission(const ResSpec& spec,
                                        const std::string& from_domain) const {
  auto pre = precheck_admission(spec, from_domain);
  if (!pre.ok()) return pre;
  if (!local_pool_.can_admit(spec.interval, spec.rate_bits_per_s)) {
    return make_error(ErrorCode::kAdmissionRejected,
                      "domain capacity exhausted (headroom " +
                          std::to_string(local_pool_.headroom(spec.interval)) +
                          " bits/s)",
                      config_.domain);
  }
  return Status::ok_status();
}

Status BandwidthBroker::precheck_admission(
    const ResSpec& spec, const std::string& from_domain) const {
  if (!spec.admissible()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "reservation needs a valid interval and positive rate",
                      config_.domain);
  }
  if (!from_domain.empty()) {
    // Transit traffic: must conform to the SLA with the upstream peer
    // (paper §6.2: the intermediate BB "checks whether the requested
    // traffic profile conforms to the related SLA").
    const auto* agreement = upstream_sla(from_domain);
    if (agreement == nullptr) {
      return make_error(ErrorCode::kAdmissionRejected,
                        "no SLA with upstream domain " + from_domain,
                        config_.domain);
    }
    if (!agreement->covers(spec.interval.start)) {
      return make_error(ErrorCode::kAdmissionRejected,
                        "SLA with " + from_domain + " does not cover t=" +
                            std::to_string(spec.interval.start),
                        config_.domain);
    }
    const auto pool_it = peer_pools_.find(from_domain);
    if (pool_it == peer_pools_.end() ||
        !pool_it->second.can_admit(spec.interval, spec.rate_bits_per_s)) {
      return make_error(ErrorCode::kAdmissionRejected,
                        "SLA profile with " + from_domain + " exhausted",
                        config_.domain);
    }
  }
  return Status::ok_status();
}

void BandwidthBroker::record_rejection(const ResSpec& spec,
                                       const std::string& reason) {
  stats_.denied.fetch_add(1, std::memory_order_relaxed);
  checks_rejected_->increment();
  obs::AuditLog::global().append(
      config_.domain, obs::audit_kind::kAdmission,
      {{"result", "rejected"},
       {"user", spec.user},
       {"rate_bits_per_s", std::to_string(spec.rate_bits_per_s)},
       {"residual_bits_per_s",
        std::to_string(local_pool_.headroom(spec.interval))},
       {"reason", reason}});
}

void BandwidthBroker::record_grant(const ResSpec& spec) {
  stats_.granted.fetch_add(1, std::memory_order_relaxed);
  checks_admitted_->increment();
  obs::AuditLog::global().append(
      config_.domain, obs::audit_kind::kAdmission,
      {{"result", "admitted"},
       {"user", spec.user},
       {"rate_bits_per_s", std::to_string(spec.rate_bits_per_s)},
       {"residual_bits_per_s",
        std::to_string(local_pool_.headroom(spec.interval))}});
  committed_counter_->increment();
  active_gauge_->add(1);
}

Result<ReservationId> BandwidthBroker::commit(const ResSpec& spec,
                                              const std::string& from_domain) {
  const auto t0 = std::chrono::steady_clock::now();
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  // Advisory pre-pool checks (spec shape, SLA conformance). The local-pool
  // check-and-insert below is the authoritative admission decision under
  // concurrency.
  auto admissible = precheck_admission(spec, from_domain);
  if (admissible.ok() &&
      !local_pool_.can_admit(spec.interval, spec.rate_bits_per_s)) {
    admissible = make_error(
        ErrorCode::kAdmissionRejected,
        "domain capacity exhausted (headroom " +
            std::to_string(local_pool_.headroom(spec.interval)) + " bits/s)",
        config_.domain);
  }
  if (!admissible.ok()) {
    record_rejection(spec, admissible.error().message);
    admission_hist_->observe(wall_us_since(t0));
    return admissible.error();
  }
  const ReservationId id =
      config_.domain + "-resv-" +
      std::to_string(next_id_.fetch_add(1, std::memory_order_relaxed));
  Reservation resv{id, spec, ReservationState::kGranted, from_domain};

  // Apply half: owned state (pools + record shard) plus the WAL append.
  // Routed to the owning worker in engine mode; the blocking group commit
  // below always stays on THIS thread so an fsync never stalls a worker.
  auto apply = [&]() -> ApplyOutcome {
    auto local = local_pool_.commit(id, spec.interval, spec.rate_bits_per_s);
    if (!local.ok()) return {local, 0};
    if (!from_domain.empty()) {
      auto peer = peer_pools_.at(from_domain)
                      .commit(id, spec.interval, spec.rate_bits_per_s);
      if (!peer.ok()) {
        (void)local_pool_.release(id);  // rollback
        return {peer, 0};
      }
    }
    {
      RecordShard& shard = shard_for(id);
      std::lock_guard lock(shard.mutex);
      shard.records.emplace(id, resv);
    }
    std::uint64_t lsn = 0;
    if (wal_ != nullptr) {
      lsn = wal_->append(config_.domain, wal_kind::kAdmit,
                         reservation_to_fields(resv));
    }
    return {Status::ok_status(), lsn};
  };
  auto unwind = [&] {
    {
      RecordShard& shard = shard_for(id);
      std::lock_guard lock(shard.mutex);
      shard.records.erase(id);
    }
    (void)local_pool_.release(id);
    if (!from_domain.empty()) (void)peer_pools_.at(from_domain).release(id);
  };

  const ApplyOutcome applied = run_owned(apply);
  if (!applied.status.ok()) {
    record_rejection(spec, applied.status.error().message);
    admission_hist_->observe(wall_us_since(t0));
    return applied.status.error();
  }
  // Durable before acked: the grant is only returned once its WAL record
  // is fsync'd (group-committed with concurrent grants). A sync failure
  // unwinds the whole admission.
  if (applied.lsn != 0) {
    auto durable = wal_->commit(applied.lsn);
    if (!durable.ok()) {
      run_owned(unwind);
      record_rejection(spec, durable.error().message);
      admission_hist_->observe(wall_us_since(t0));
      return durable.error();
    }
  }
  record_grant(spec);
  admission_hist_->observe(wall_us_since(t0));
  if (edge_configurator_) edge_configurator_(resv, /*install=*/true);
  log::info("bb[" + config_.domain + "]")
      << "committed " << id << ": " << spec.to_text();
  return id;
}

std::vector<Result<ReservationId>> BandwidthBroker::commit_batch(
    const std::vector<ResSpec>& specs, const std::string& from_domain) {
  const auto t0 = std::chrono::steady_clock::now();
  stats_.requests.fetch_add(specs.size(), std::memory_order_relaxed);
  std::vector<Result<ReservationId>> results(
      specs.size(),
      Result<ReservationId>(make_error(ErrorCode::kInternal, "unset")));

  // Pre-pool validation, then one id per surviving spec (input order keeps
  // handle numbering deterministic regardless of admission order).
  struct Pending {
    std::size_t index;
    ReservationId id;
  };
  std::vector<Pending> pending;
  std::vector<CapacityPool::BatchRequest> local_batch;
  pending.reserve(specs.size());
  local_batch.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    auto pre = precheck_admission(specs[i], from_domain);
    if (!pre.ok()) {
      record_rejection(specs[i], pre.error().message);
      results[i] = pre.error();
      continue;
    }
    ReservationId id =
        config_.domain + "-resv-" +
        std::to_string(next_id_.fetch_add(1, std::memory_order_relaxed));
    local_batch.push_back(CapacityPool::BatchRequest{
        id, specs[i].interval, specs[i].rate_bits_per_s});
    pending.push_back(Pending{i, std::move(id)});
  }

  // Apply half (routed to the owning worker in engine mode): both pool
  // batches, the record-shard inserts and ONE WAL *append*. Bookkeeping
  // (audit appends, counters, results) stays in the same order as the
  // single-threaded path, so engine-on and engine-off reach identical
  // observable state.
  std::vector<Pending> admitted;
  std::vector<Reservation> installed;
  std::uint64_t lsn = 0;
  auto apply = [&] {
    // One lock acquisition on the local pool for the whole batch; the pool
    // evaluates in ascending start order.
    const std::vector<Status> local_statuses =
        local_pool_.commit_batch(local_batch);
    admitted.reserve(pending.size());
    for (std::size_t j = 0; j < pending.size(); ++j) {
      if (!local_statuses[j].ok()) {
        record_rejection(specs[pending[j].index],
                         local_statuses[j].error().message);
        results[pending[j].index] = local_statuses[j].error();
        continue;
      }
      admitted.push_back(std::move(pending[j]));
    }

    // Transit traffic additionally debits the per-peer SLA pool, again in
    // one lock acquisition, rolling back local commits that don't fit.
    if (!from_domain.empty() && !admitted.empty()) {
      CapacityPool& peer = peer_pools_.at(from_domain);
      std::vector<CapacityPool::BatchRequest> peer_batch;
      peer_batch.reserve(admitted.size());
      for (const Pending& p : admitted) {
        peer_batch.push_back(CapacityPool::BatchRequest{
            p.id, specs[p.index].interval, specs[p.index].rate_bits_per_s});
      }
      const std::vector<Status> peer_statuses = peer.commit_batch(peer_batch);
      std::vector<Pending> kept;
      kept.reserve(admitted.size());
      for (std::size_t j = 0; j < admitted.size(); ++j) {
        if (!peer_statuses[j].ok()) {
          (void)local_pool_.release(admitted[j].id);  // rollback
          record_rejection(specs[admitted[j].index],
                           peer_statuses[j].error().message);
          results[admitted[j].index] = peer_statuses[j].error();
          continue;
        }
        kept.push_back(std::move(admitted[j]));
      }
      admitted = std::move(kept);
    }

    installed.reserve(admitted.size());
    for (const Pending& p : admitted) {
      Reservation resv{p.id, specs[p.index], ReservationState::kGranted,
                       from_domain};
      {
        RecordShard& shard = shard_for(p.id);
        std::lock_guard lock(shard.mutex);
        shard.records.emplace(p.id, resv);
      }
      installed.push_back(std::move(resv));
    }
    // ONE WAL record for the whole batch (granted entries only), so batch
    // admission pays one line and one group-committed fsync, not one per
    // flow.
    if (wal_ != nullptr && !installed.empty()) {
      std::vector<WalFields> items;
      items.reserve(installed.size());
      for (const Reservation& resv : installed) {
        items.push_back(reservation_to_fields(resv));
      }
      lsn = wal_->append(config_.domain, wal_kind::kAdmitBatch,
                         {{"upstream", from_domain},
                          {"count", std::to_string(installed.size())}},
                         std::move(items));
    }
  };
  run_owned(apply);

  // Finish half, on the caller: ONE group commit makes every grant in the
  // batch durable. A sync failure unwinds all of them on the owner.
  if (lsn != 0) {
    auto durable = wal_->commit(lsn);
    if (!durable.ok()) {
      run_owned([&] {
        for (const Reservation& resv : installed) {
          {
            RecordShard& shard = shard_for(resv.id);
            std::lock_guard lock(shard.mutex);
            shard.records.erase(resv.id);
          }
          (void)local_pool_.release(resv.id);
          if (!from_domain.empty()) {
            (void)peer_pools_.at(from_domain).release(resv.id);
          }
          record_rejection(resv.spec, durable.error().message);
        }
      });
      for (const Pending& p : admitted) {
        results[p.index] = durable.error();
      }
      admission_hist_->observe(wall_us_since(t0));
      return results;
    }
  }
  for (const Pending& p : admitted) {
    record_grant(specs[p.index]);
    results[p.index] = p.id;
  }
  // One observation covering the whole batch (documented in
  // docs/OBSERVABILITY.md; per-RAR amortized cost is batch/size).
  admission_hist_->observe(wall_us_since(t0));
  if (edge_configurator_) {
    for (const Reservation& resv : installed) {
      edge_configurator_(resv, /*install=*/true);
    }
  }
  log::info("bb[" + config_.domain + "]")
      << "batch committed " << installed.size() << "/" << specs.size()
      << " reservations";
  return results;
}

Status BandwidthBroker::release(const ReservationId& id) {
  Reservation resv;
  std::uint64_t lsn = 0;
  // Apply half: record erase + pool releases + WAL append on the owning
  // worker (engine mode); everything after runs on the caller.
  auto apply = [&]() -> Status {
    {
      RecordShard& shard = shard_for(id);
      std::lock_guard lock(shard.mutex);
      const auto it = shard.records.find(id);
      if (it == shard.records.end()) {
        return make_error(ErrorCode::kNotFound, "unknown reservation " + id,
                          config_.domain);
      }
      resv = it->second;
      shard.records.erase(it);
    }
    (void)local_pool_.release(id);
    if (!resv.upstream_domain.empty()) {
      const auto pool_it = peer_pools_.find(resv.upstream_domain);
      if (pool_it != peer_pools_.end()) (void)pool_it->second.release(id);
    }
    if (wal_ != nullptr) {
      lsn = wal_->append(config_.domain, wal_kind::kRelease, {{"id", id}});
    }
    return Status::ok_status();
  };
  auto applied = run_owned(apply);
  if (!applied.ok()) return applied;
  resv.state = ReservationState::kReleased;
  stats_.released.fetch_add(1, std::memory_order_relaxed);
  released_counter_->increment();
  active_gauge_->add(-1);
  if (edge_configurator_) edge_configurator_(resv, /*install=*/false);
  // Apply-then-log: losing an un-acked release record is conservative (the
  // recovered broker still holds the reservation; capacity is never
  // double-granted). A sync failure surfaces as an error after the fact.
  if (lsn != 0) return wal_->commit(lsn);
  return Status::ok_status();
}

std::size_t BandwidthBroker::purge_expired(SimTime now) {
  std::vector<Reservation> purged;
  for (RecordShard& shard : record_shards_) {
    std::lock_guard lock(shard.mutex);
    for (auto it = shard.records.begin(); it != shard.records.end();) {
      if (it->second.spec.interval.end <= now) {
        purged.push_back(it->second);
        (void)local_pool_.release(it->first);
        if (!it->second.upstream_domain.empty()) {
          const auto pool_it = peer_pools_.find(it->second.upstream_domain);
          if (pool_it != peer_pools_.end()) {
            (void)pool_it->second.release(it->first);
          }
        }
        it = shard.records.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (!purged.empty()) {
    released_counter_->increment(purged.size());
    active_gauge_->add(-static_cast<double>(purged.size()));
    // One record for the whole purge; replay releases each listed handle
    // (unknown handles are skipped, so replay is idempotent).
    std::vector<WalFields> items;
    items.reserve(purged.size());
    for (const Reservation& resv : purged) {
      items.push_back({{"id", resv.id}});
    }
    (void)wal_log(wal_kind::kReleaseBatch,
                  {{"now", std::to_string(now)},
                   {"count", std::to_string(purged.size())}},
                  std::move(items));
  }
  for (auto& resv : purged) {
    resv.state = ReservationState::kReleased;
    if (edge_configurator_) edge_configurator_(resv, /*install=*/false);
  }
  return purged.size();
}

const Reservation* BandwidthBroker::find(const ReservationId& id) const {
  const RecordShard& shard = shard_for(id);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.records.find(id);
  return it == shard.records.end() ? nullptr : &it->second;
}

Result<TunnelId> BandwidthBroker::register_tunnel(
    const ResSpec& aggregate_spec) {
  if (!aggregate_spec.is_tunnel) {
    return make_error(ErrorCode::kInvalidArgument,
                      "register_tunnel: spec is not a tunnel",
                      config_.domain);
  }
  const TunnelId id =
      config_.domain + "-tunnel-" +
      std::to_string(next_id_.fetch_add(1, std::memory_order_relaxed));
  {
    std::lock_guard lock(tunnels_mutex_);
    auto [it, inserted] = tunnels_.emplace(id, Tunnel(id, aggregate_spec));
    if (inserted) {
      it->second.set_owner_domain(config_.domain);
      it->second.set_wal(wal_);
      if (engine_ != nullptr) {
        it->second.set_engine(engine_.get(), tunnel_owner_worker(id));
      }
    }
  }
  auto durable = wal_log(
      wal_kind::kTunnelRegister,
      reservation_to_fields(
          Reservation{id, aggregate_spec, ReservationState::kGranted, ""}));
  if (!durable.ok()) {
    // Never ack what isn't durable — and never KEEP what wasn't acked:
    // the caller sees an error, so the tunnel must not stay live in
    // tunnels_ (same unwind discipline as commit()/Tunnel::allocate()).
    std::lock_guard lock(tunnels_mutex_);
    tunnels_.erase(id);
    return durable.error();
  }
  obs::MetricsRegistry::global()
      .counter(obs::kBbTunnelsRegisteredTotal, {{"domain", config_.domain}})
      .increment();
  log::info("bb[" + config_.domain + "]")
      << "registered " << id << " aggregate "
      << aggregate_spec.rate_bits_per_s / 1e6 << " Mb/s";
  return id;
}

Tunnel* BandwidthBroker::find_tunnel(const TunnelId& id) {
  std::lock_guard lock(tunnels_mutex_);
  const auto it = tunnels_.find(id);
  return it == tunnels_.end() ? nullptr : &it->second;
}

const Tunnel* BandwidthBroker::find_tunnel(const TunnelId& id) const {
  std::lock_guard lock(tunnels_mutex_);
  const auto it = tunnels_.find(id);
  return it == tunnels_.end() ? nullptr : &it->second;
}

std::uint64_t BandwidthBroker::next_certificate_serial() {
  const std::uint64_t serial =
      next_cert_serial_.fetch_add(1, std::memory_order_relaxed);
  (void)wal_log(wal_kind::kDelegationSerial,
                {{"serial", std::to_string(serial)}});
  return serial;
}

std::size_t BandwidthBroker::tunnel_owner_worker(const TunnelId& id) const {
  // Sequentially minted tunnel ids round-robin the workers; foreign id
  // shapes all land on worker 0 (still correct, just unbalanced).
  return reservation_handle_number(id) % engine_->worker_count();
}

void BandwidthBroker::enable_shard_engine(std::size_t workers) {
  disable_shard_engine();
  engine_ = std::make_unique<ShardEngine>(workers);
  // Owned pools batch their registry traffic (totals flush on disable or
  // destruction, so engine on/off reaches identical final counts).
  local_pool_.set_metrics_flush_interval(kEngineMetricsFlushInterval);
  for (auto& [domain, pool] : peer_pools_) {
    pool.set_metrics_flush_interval(kEngineMetricsFlushInterval);
  }
  std::lock_guard lock(tunnels_mutex_);
  for (auto& [id, tunnel] : tunnels_) {
    tunnel.set_engine(engine_.get(), tunnel_owner_worker(id));
  }
}

void BandwidthBroker::disable_shard_engine() {
  if (engine_ == nullptr) return;
  {
    std::lock_guard lock(tunnels_mutex_);
    for (auto& [id, tunnel] : tunnels_) tunnel.set_engine(nullptr, 0);
  }
  local_pool_.set_metrics_flush_interval(1);
  for (auto& [domain, pool] : peer_pools_) pool.set_metrics_flush_interval(1);
  engine_.reset();  // drains the queues, joins the workers
}

std::vector<Status> BandwidthBroker::allocate_across_tunnels(
    const std::vector<TunnelFlowRequest>& requests) {
  std::vector<Status> statuses(requests.size(), Status::ok_status());
  std::vector<Tunnel*> targets(requests.size(), nullptr);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    Tunnel* tunnel = find_tunnel(requests[i].tunnel);
    if (tunnel == nullptr) {
      statuses[i] =
          make_error(ErrorCode::kNotFound,
                     "unknown tunnel " + requests[i].tunnel, config_.domain);
      continue;
    }
    targets[i] = tunnel;
  }

  // Apply: in engine mode, ONE task per owning worker applies that
  // worker's whole slice of the batch, so the request pipelines across
  // every shard at once instead of one synchronous round-trip per flow.
  // (A worker thread itself falls back to the sequential path — posting
  // to our own queue and waiting would self-deadlock.)
  std::vector<std::uint64_t> lsns(requests.size(), 0);
  if (engine_ != nullptr && !engine_->on_worker_thread()) {
    std::vector<std::vector<std::size_t>> by_worker(engine_->worker_count());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (targets[i] != nullptr) {
        by_worker[targets[i]->owner_worker()].push_back(i);
      }
    }
    std::ptrdiff_t used = 0;
    for (const auto& slice : by_worker) used += slice.empty() ? 0 : 1;
    if (used != 0) {
      std::latch joined(used);
      for (std::size_t w = 0; w < by_worker.size(); ++w) {
        if (by_worker[w].empty()) continue;
        engine_->post(w, [&, w] {
          for (std::size_t i : by_worker[w]) {
            statuses[i] =
                targets[i]->allocate_apply(requests[i].flow, &lsns[i]);
          }
          joined.count_down();
        });
      }
      joined.wait();
    }
  } else {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (targets[i] != nullptr) {
        statuses[i] = targets[i]->allocate_apply(requests[i].flow, &lsns[i]);
      }
    }
  }

  // Finish: ONE group commit covers every record the batch appended (the
  // WAL's LSNs are totally ordered, so committing the max fsyncs all of
  // them). A sync failure unwinds each granted flow on its owner.
  std::uint64_t max_lsn = 0;
  for (const std::uint64_t lsn : lsns) max_lsn = std::max(max_lsn, lsn);
  if (max_lsn != 0) {
    auto durable = wal_->commit(max_lsn);
    if (!durable.ok()) {
      for (std::size_t i = 0; i < requests.size(); ++i) {
        if (lsns[i] == 0 || !statuses[i].ok()) continue;
        Tunnel* tunnel = targets[i];
        const ReservationId& sub_id = requests[i].flow.sub_id;
        if (engine_ != nullptr) {
          engine_->run_on(tunnel->owner_worker(),
                          [&] { tunnel->allocate_unwind(sub_id); });
        } else {
          tunnel->allocate_unwind(sub_id);
        }
        statuses[i] = durable;
      }
    }
  }
  return statuses;
}

Status BandwidthBroker::wal_log(const char* kind, WalFields fields,
                                std::vector<WalFields> items) {
  if (wal_ == nullptr) return Status::ok_status();
  return wal_->log(config_.domain, kind, std::move(fields),
                   std::move(items));
}

void BandwidthBroker::attach_wal(WriteAheadLog* wal) {
  wal_ = wal;
  std::lock_guard lock(tunnels_mutex_);
  for (auto& [id, tunnel] : tunnels_) tunnel.set_wal(wal);
}

Status BandwidthBroker::restore_reservation(const Reservation& reservation) {
  const ReservationId& id = reservation.id;
  {
    const RecordShard& shard = shard_for(id);
    std::lock_guard lock(shard.mutex);
    if (shard.records.contains(id)) {
      return make_error(ErrorCode::kConflict,
                        "reservation already present: " + id,
                        config_.domain);
    }
  }
  const ResSpec& spec = reservation.spec;
  auto local = local_pool_.commit(id, spec.interval, spec.rate_bits_per_s);
  if (!local.ok()) return local;
  if (!reservation.upstream_domain.empty()) {
    const auto pool_it = peer_pools_.find(reservation.upstream_domain);
    if (pool_it != peer_pools_.end()) {
      auto peer =
          pool_it->second.commit(id, spec.interval, spec.rate_bits_per_s);
      if (!peer.ok()) {
        (void)local_pool_.release(id);
        return peer;
      }
    }
  }
  {
    RecordShard& shard = shard_for(id);
    std::lock_guard lock(shard.mutex);
    shard.records.emplace(id, reservation);
  }
  active_gauge_->add(1);
  return Status::ok_status();
}

Status BandwidthBroker::restore_tunnel(const TunnelId& id,
                                       const ResSpec& aggregate_spec) {
  std::lock_guard lock(tunnels_mutex_);
  auto [it, inserted] = tunnels_.emplace(id, Tunnel(id, aggregate_spec));
  if (!inserted) {
    return make_error(ErrorCode::kConflict, "tunnel already present: " + id,
                      config_.domain);
  }
  it->second.set_owner_domain(config_.domain);
  return Status::ok_status();
}

void BandwidthBroker::restore_ids(std::uint64_t next_id,
                                  std::uint64_t next_cert_serial) {
  next_id_.store(next_id, std::memory_order_relaxed);
  next_cert_serial_.store(next_cert_serial, std::memory_order_relaxed);
}

std::vector<Reservation> BandwidthBroker::all_reservations() const {
  std::vector<Reservation> out;
  for (const RecordShard& shard : record_shards_) {
    std::lock_guard lock(shard.mutex);
    for (const auto& [id, resv] : shard.records) out.push_back(resv);
  }
  std::sort(out.begin(), out.end(),
            [](const Reservation& a, const Reservation& b) {
              return a.id < b.id;
            });
  return out;
}

std::vector<const Tunnel*> BandwidthBroker::all_tunnels() const {
  std::lock_guard lock(tunnels_mutex_);
  std::vector<const Tunnel*> out;
  out.reserve(tunnels_.size());
  for (const auto& [id, tunnel] : tunnels_) out.push_back(&tunnel);
  return out;
}

}  // namespace e2e::bb
