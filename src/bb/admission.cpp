#include "bb/admission.hpp"

#include <algorithm>

#include "obs/instruments.hpp"

namespace e2e::bb {

double CapacityPool::peak_committed(const TimeInterval& interval) const {
  // Sweep over the start/end points of overlapping commitments. The
  // committed-rate function is piecewise constant and only changes at
  // commitment boundaries, so evaluating at each boundary inside the
  // interval (plus the interval start) finds the peak.
  std::vector<SimTime> points{interval.start};
  for (const auto& [key, c] : commitments_) {
    if (!c.interval.overlaps(interval)) continue;
    if (c.interval.start > interval.start) points.push_back(c.interval.start);
  }
  double peak = 0;
  for (SimTime p : points) {
    peak = std::max(peak, committed_at(p));
  }
  return peak;
}

double CapacityPool::committed_at(SimTime t) const {
  double total = 0;
  for (const auto& [key, c] : commitments_) {
    if (c.interval.contains(t)) total += c.rate;
  }
  return total;
}

Status CapacityPool::commit(const std::string& key,
                            const TimeInterval& interval, double rate) {
  if (!interval.valid() || rate < 0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "commit: bad interval or rate");
  }
  if (commitments_.contains(key)) {
    return make_error(ErrorCode::kConflict, "commit: duplicate key " + key);
  }
  if (!can_admit(interval, rate)) {
    obs::MetricsRegistry::global()
        .counter(obs::kBbPoolRejectionsTotal)
        .increment();
    return make_error(ErrorCode::kAdmissionRejected,
                      "commit: insufficient capacity (headroom " +
                          std::to_string(headroom(interval)) + " bits/s)");
  }
  commitments_.emplace(key, Commitment{interval, rate});
  obs::MetricsRegistry::global()
      .counter(obs::kBbPoolCommitsTotal)
      .increment();
  return Status::ok_status();
}

Status CapacityPool::release(const std::string& key) {
  if (commitments_.erase(key) == 0) {
    return make_error(ErrorCode::kNotFound, "release: unknown key " + key);
  }
  obs::MetricsRegistry::global()
      .counter(obs::kBbPoolReleasesTotal)
      .increment();
  return Status::ok_status();
}

}  // namespace e2e::bb
