#include "bb/admission.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "obs/instruments.hpp"

namespace e2e::bb {

CapacityPool::~CapacityPool() {
  // Flush whatever the batching window still holds, then return this
  // pool's contribution to the boundary gauge (tunnel pools come and go;
  // the gauge must track live timelines only). No lock: nobody else may
  // hold a reference during destruction.
  if (pending_commits_ != 0 || pending_releases_ != 0 ||
      pending_rejections_ != 0) {
    flush_metrics_locked();
  }
  if (boundaries_gauge_ != nullptr && reported_boundaries_ != 0) {
    boundaries_gauge_->add(-reported_boundaries_);
  }
}

CapacityPool::CapacityPool(const CapacityPool& other)
    : mutex_(std::make_unique<std::mutex>()) {
  std::lock_guard lock(*other.mutex_);
  capacity_ = other.capacity_;
  owner_domain_ = other.owner_domain_;
  // Copy-assign keeps this side's fresh arena (POCCA is false); the copy
  // never deallocates into the source's slabs.
  commitments_ = other.commitments_;
  timeline_ = other.timeline_;
  metrics_flush_interval_ = other.metrics_flush_interval_;
}

CapacityPool& CapacityPool::operator=(const CapacityPool& other) {
  if (this == &other) return *this;
  CapacityPool copy(other);
  return *this = std::move(copy);
}

CapacityPool::CapacityPool(CapacityPool&& other) noexcept = default;

CapacityPool& CapacityPool::operator=(CapacityPool&& other) noexcept {
  if (this == &other) return *this;
  if (pending_commits_ != 0 || pending_releases_ != 0 ||
      pending_rejections_ != 0) {
    flush_metrics_locked();
  }
  if (boundaries_gauge_ != nullptr && reported_boundaries_ != 0) {
    boundaries_gauge_->add(-reported_boundaries_);
  }
  capacity_ = other.capacity_;
  owner_domain_ = std::move(other.owner_domain_);
  commitments_ = std::move(other.commitments_);
  timeline_ = std::move(other.timeline_);
  mutex_ = std::move(other.mutex_);
  metrics_flush_interval_ = other.metrics_flush_interval_;
  mutations_since_flush_ = other.mutations_since_flush_;
  pending_commits_ = other.pending_commits_;
  pending_releases_ = other.pending_releases_;
  pending_rejections_ = other.pending_rejections_;
  commits_counter_ = other.commits_counter_;
  releases_counter_ = other.releases_counter_;
  rejections_counter_ = other.rejections_counter_;
  boundaries_gauge_ = other.boundaries_gauge_;
  reported_boundaries_ = other.reported_boundaries_;
  other.pending_commits_ = 0;
  other.pending_releases_ = 0;
  other.pending_rejections_ = 0;
  other.boundaries_gauge_ = nullptr;
  other.reported_boundaries_ = 0;
  return *this;
}

void CapacityPool::set_owner_domain(std::string domain) {
  std::lock_guard lock(*mutex_);
  if (domain == owner_domain_) return;
  // Pending deltas and the reported boundary count belong to the OLD
  // label's series: push them out before re-resolving instruments.
  flush_metrics_locked();
  if (boundaries_gauge_ != nullptr && reported_boundaries_ != 0) {
    boundaries_gauge_->add(-reported_boundaries_);
  }
  reported_boundaries_ = 0;
  owner_domain_ = std::move(domain);
  rejections_counter_ = nullptr;
  boundaries_gauge_ = nullptr;
  flush_metrics_locked();
}

void CapacityPool::set_metrics_flush_interval(std::size_t n) {
  std::lock_guard lock(*mutex_);
  flush_metrics_locked();
  metrics_flush_interval_ = n == 0 ? 1 : n;
}

void CapacityPool::flush_metrics() {
  std::lock_guard lock(*mutex_);
  flush_metrics_locked();
}

void CapacityPool::ensure_instruments_locked() const {
  if (commits_counter_ != nullptr && rejections_counter_ != nullptr) return;
  auto& registry = obs::MetricsRegistry::global();
  obs::Labels domain_labels;
  if (!owner_domain_.empty()) {
    domain_labels.emplace_back("domain", owner_domain_);
  }
  commits_counter_ = &registry.counter(obs::kBbPoolCommitsTotal);
  releases_counter_ = &registry.counter(obs::kBbPoolReleasesTotal);
  rejections_counter_ =
      &registry.counter(obs::kBbPoolRejectionsTotal, domain_labels);
  boundaries_gauge_ =
      &registry.gauge(obs::kBbPoolBoundaries, domain_labels);
}

void CapacityPool::flush_metrics_locked() {
  ensure_instruments_locked();
  if (pending_commits_ != 0) {
    commits_counter_->increment(pending_commits_);
    pending_commits_ = 0;
  }
  if (pending_releases_ != 0) {
    releases_counter_->increment(pending_releases_);
    pending_releases_ = 0;
  }
  if (pending_rejections_ != 0) {
    rejections_counter_->increment(pending_rejections_);
    pending_rejections_ = 0;
  }
  const double now = static_cast<double>(timeline_.size());
  if (now != reported_boundaries_) {
    boundaries_gauge_->add(now - reported_boundaries_);
    reported_boundaries_ = now;
  }
  mutations_since_flush_ = 0;
}

void CapacityPool::note_mutation_locked() {
  if (++mutations_since_flush_ >= metrics_flush_interval_) {
    flush_metrics_locked();
  }
}

// --- Timeline queries -------------------------------------------------------

double CapacityPool::committed_at_locked(SimTime t) const {
  return timeline_.committed_at(t);
}

double CapacityPool::peak_committed_locked(
    const TimeInterval& interval) const {
  return timeline_.peak_committed(interval);
}

bool CapacityPool::can_admit_locked(const TimeInterval& interval,
                                    double rate) const {
  return interval.valid() && rate >= 0 &&
         peak_committed_locked(interval) + rate <= capacity_ + kEpsilon;
}

double CapacityPool::headroom_locked(const TimeInterval& interval) const {
  const double h = capacity_ - peak_committed_locked(interval);
  return h > 0 ? h : 0;
}

double CapacityPool::peak_committed(const TimeInterval& interval) const {
  std::lock_guard lock(*mutex_);
  return peak_committed_locked(interval);
}

double CapacityPool::committed_at(SimTime t) const {
  std::lock_guard lock(*mutex_);
  return committed_at_locked(t);
}

bool CapacityPool::can_admit(const TimeInterval& interval, double rate) const {
  std::lock_guard lock(*mutex_);
  return can_admit_locked(interval, rate);
}

double CapacityPool::headroom(const TimeInterval& interval) const {
  std::lock_guard lock(*mutex_);
  return headroom_locked(interval);
}

// --- Reference oracle (the original full-scan implementation) ---------------

double CapacityPool::committed_at_reference_locked(SimTime t) const {
  double total = 0;
  for (const auto& [key, c] : commitments_) {
    if (c.interval.contains(t)) total += c.rate;
  }
  return total;
}

double CapacityPool::peak_committed_reference_locked(
    const TimeInterval& interval) const {
  // Sweep over the start points of overlapping commitments; the committed
  // function only changes at boundaries, so evaluating at each start inside
  // the interval (plus the interval start) finds the peak.
  std::vector<SimTime> points;
  points.reserve(commitments_.size() + 1);
  points.push_back(interval.start);
  for (const auto& [key, c] : commitments_) {
    if (!c.interval.overlaps(interval)) continue;
    if (c.interval.start > interval.start) points.push_back(c.interval.start);
  }
  double peak = 0;
  for (SimTime p : points) {
    peak = std::max(peak, committed_at_reference_locked(p));
  }
  return peak;
}

double CapacityPool::peak_committed_reference(
    const TimeInterval& interval) const {
  std::lock_guard lock(*mutex_);
  return peak_committed_reference_locked(interval);
}

double CapacityPool::committed_at_reference(SimTime t) const {
  std::lock_guard lock(*mutex_);
  return committed_at_reference_locked(t);
}

bool CapacityPool::can_admit_reference(const TimeInterval& interval,
                                       double rate) const {
  std::lock_guard lock(*mutex_);
  return interval.valid() && rate >= 0 &&
         peak_committed_reference_locked(interval) + rate <=
             capacity_ + kEpsilon;
}

double CapacityPool::headroom_reference(const TimeInterval& interval) const {
  std::lock_guard lock(*mutex_);
  const double h = capacity_ - peak_committed_reference_locked(interval);
  return h > 0 ? h : 0;
}

// --- Mutation ---------------------------------------------------------------

Status CapacityPool::commit_locked(const std::string& key,
                                   const TimeInterval& interval, double rate,
                                   bool use_reference) {
  if (!interval.valid() || rate < 0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "commit: bad interval or rate");
  }
  if (commitments_.find(key) != commitments_.end()) {
    return make_error(ErrorCode::kConflict, "commit: duplicate key " + key);
  }
  const bool admit =
      use_reference
          ? (interval.valid() && rate >= 0 &&
             peak_committed_reference_locked(interval) + rate <=
                 capacity_ + kEpsilon)
          : can_admit_locked(interval, rate);
  if (!admit) {
    ++pending_rejections_;
    const double headroom = use_reference
                                ? capacity_ - peak_committed_reference_locked(
                                                  interval)
                                : headroom_locked(interval);
    note_mutation_locked();
    return make_error(ErrorCode::kAdmissionRejected,
                      "commit: insufficient capacity (headroom " +
                          std::to_string(headroom > 0 ? headroom : 0) +
                          " bits/s)");
  }
  commitments_.emplace(key, Commitment{interval, rate});
  timeline_.apply(interval, rate);
  ++pending_commits_;
  note_mutation_locked();
  return Status::ok_status();
}

Status CapacityPool::commit(const std::string& key,
                            const TimeInterval& interval, double rate) {
  std::lock_guard lock(*mutex_);
  return commit_locked(key, interval, rate, /*use_reference=*/false);
}

Status CapacityPool::commit_reference(const std::string& key,
                                      const TimeInterval& interval,
                                      double rate) {
  std::lock_guard lock(*mutex_);
  return commit_locked(key, interval, rate, /*use_reference=*/true);
}

std::vector<Status> CapacityPool::commit_batch(
    const std::vector<BatchRequest>& requests) {
  // Evaluate in start order (stable on ties) so a batch packs the timeline
  // front to back deterministically, under a single lock acquisition.
  std::vector<std::size_t> order(requests.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return requests[a].interval.start <
                            requests[b].interval.start;
                   });
  std::vector<Status> statuses(requests.size(), Status::ok_status());
  std::lock_guard lock(*mutex_);
  for (std::size_t idx : order) {
    const BatchRequest& r = requests[idx];
    statuses[idx] =
        commit_locked(r.key, r.interval, r.rate, /*use_reference=*/false);
  }
  return statuses;
}

Status CapacityPool::release(const std::string& key) {
  std::lock_guard lock(*mutex_);
  const auto it = commitments_.find(key);
  if (it == commitments_.end()) {
    return make_error(ErrorCode::kNotFound, "release: unknown key " + key);
  }
  const Commitment c = it->second;
  commitments_.erase(it);
  timeline_.retire(c.interval, c.rate);
  // Once the pool empties, drop the whole timeline: incremental subtraction
  // may leave float residue on boundaries still referenced by other
  // commitments, but an empty pool has an exactly-zero profile.
  if (commitments_.empty()) timeline_.clear();
  ++pending_releases_;
  note_mutation_locked();
  return Status::ok_status();
}

}  // namespace e2e::bb
