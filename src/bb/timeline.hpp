// Timeline index for the piecewise-constant committed-rate function.
//
// A CapacityPool's committed level only changes at commitment boundaries
// (interval starts and ends). The index keeps one entry per distinct
// boundary: the committed level on [time, next boundary) and a refcount of
// commitments starting or ending there (pruned at zero, so float residue
// from incremental add/subtract cannot accumulate on dead boundaries).
//
// Two implementations share the same contract:
//
//   FlatTimeline  — a sorted vector of POD entries. Lookups are a binary
//                   search over contiguous memory; raising or lowering a
//                   level over [start, end) is a linear pass over adjacent
//                   entries; inserting a new boundary is one vector insert.
//                   No per-node allocation, no pointer chasing: this is
//                   what the pool runs in production (ISSUE 8 — the
//                   shared-nothing admission engine wants shard state that
//                   stays in its owner core's cache).
//
//   MapTimeline   — the PR-5 std::map<SimTime, Boundary> implementation,
//                   kept verbatim as the differential oracle
//                   (tests/bb_pool_equivalence_test.cpp drives both with
//                   identical op sequences, the same *_reference pattern
//                   as crypto's modexp_reference).
//
// Neither is internally locked; the owning pool's mutex (or owning shard
// worker) serializes access.
#pragma once

#include <algorithm>
#include <cstddef>
#include <map>
#include <vector>

#include "common/clock.hpp"

namespace e2e::bb {

class FlatTimeline {
 public:
  struct Entry {
    SimTime time = 0;
    double level = 0;  ///< committed rate on [time, next entry's time)
    int refs = 0;      ///< commitments starting or ending at `time`
  };

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  /// Committed level at one instant: the level of the greatest boundary
  /// <= t (0 before the first boundary).
  double committed_at(SimTime t) const {
    const std::size_t idx = upper_bound(t);
    return idx == 0 ? 0.0 : entries_[idx - 1].level;
  }

  /// Peak committed level over `interval`. A degenerate interval reduces
  /// to committed_at(start), matching the original full-scan semantics.
  double peak_committed(const TimeInterval& interval) const {
    if (interval.end <= interval.start) return committed_at(interval.start);
    double peak = committed_at(interval.start);
    for (std::size_t i = upper_bound(interval.start);
         i < entries_.size() && entries_[i].time < interval.end; ++i) {
      peak = std::max(peak, entries_[i].level);
    }
    return peak;
  }

  /// Insert a commitment: materialize both boundaries (seeding each new
  /// entry's level from its floor neighbour), take a ref on each, raise
  /// the level on [start, end).
  void apply(const TimeInterval& interval, double rate) {
    // Insert the start boundary first: inserting the (later) end boundary
    // afterwards cannot shift the start index, and the end entry must seed
    // from the pre-raise level (a commitment covers [start, end) only).
    const std::size_t start = ensure_boundary(interval.start);
    const std::size_t end = ensure_boundary(interval.end);
    ++entries_[start].refs;
    ++entries_[end].refs;
    for (std::size_t i = start; i < end; ++i) entries_[i].level += rate;
  }

  /// Remove a released commitment: lower the level on [start, end), drop a
  /// ref from each boundary, erase entries whose refcount reaches zero.
  void retire(const TimeInterval& interval, double rate) {
    const std::size_t start = index_of(interval.start);
    const std::size_t end = index_of(interval.end);
    for (std::size_t i = start; i < end; ++i) entries_[i].level -= rate;
    const bool drop_start = --entries_[start].refs == 0;
    const bool drop_end = --entries_[end].refs == 0;
    // Erase back to front so the start index stays valid (end > start for
    // every valid interval).
    if (drop_end) entries_.erase(entries_.begin() + static_cast<long>(end));
    if (drop_start) {
      entries_.erase(entries_.begin() + static_cast<long>(start));
    }
  }

  /// The raw entries, ascending by time (differential tests).
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  /// Index of the first entry with time > t.
  std::size_t upper_bound(SimTime t) const {
    const auto it = std::upper_bound(
        entries_.begin(), entries_.end(), t,
        [](SimTime v, const Entry& e) { return v < e.time; });
    return static_cast<std::size_t>(it - entries_.begin());
  }

  /// Index of the entry at exactly `t`, inserting one (refs 0, level
  /// seeded from the floor neighbour) when absent.
  std::size_t ensure_boundary(SimTime t) {
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), t,
        [](const Entry& e, SimTime v) { return e.time < v; });
    if (it == entries_.end() || it->time != t) {
      const double seed =
          it == entries_.begin() ? 0.0 : std::prev(it)->level;
      it = entries_.insert(it, Entry{t, seed, 0});
    }
    return static_cast<std::size_t>(it - entries_.begin());
  }

  /// Index of the entry at exactly `t` (which must exist: retire only
  /// sees boundaries its own apply materialized).
  std::size_t index_of(SimTime t) const {
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), t,
        [](const Entry& e, SimTime v) { return e.time < v; });
    return static_cast<std::size_t>(it - entries_.begin());
  }

  std::vector<Entry> entries_;
};

/// The PR-5 map-backed index, kept as the flat index's differential
/// oracle. Same contract, same pruning discipline.
class MapTimeline {
 public:
  struct Boundary {
    double level = 0;
    int refs = 0;
  };

  std::size_t size() const { return timeline_.size(); }
  bool empty() const { return timeline_.empty(); }
  void clear() { timeline_.clear(); }

  double committed_at(SimTime t) const {
    auto it = timeline_.upper_bound(t);
    if (it == timeline_.begin()) return 0;
    return std::prev(it)->second.level;
  }

  double peak_committed(const TimeInterval& interval) const {
    if (interval.end <= interval.start) return committed_at(interval.start);
    double peak = committed_at(interval.start);
    for (auto it = timeline_.upper_bound(interval.start);
         it != timeline_.end() && it->first < interval.end; ++it) {
      peak = std::max(peak, it->second.level);
    }
    return peak;
  }

  void apply(const TimeInterval& interval, double rate) {
    auto add_boundary = [this](SimTime t) {
      auto it = timeline_.lower_bound(t);
      if (it == timeline_.end() || it->first != t) {
        const double seed =
            it == timeline_.begin() ? 0.0 : std::prev(it)->second.level;
        it = timeline_.emplace_hint(it, t, Boundary{seed, 0});
      }
      return it;
    };
    auto start_it = add_boundary(interval.start);
    auto end_it = add_boundary(interval.end);
    ++start_it->second.refs;
    ++end_it->second.refs;
    for (auto it = start_it; it != end_it; ++it) it->second.level += rate;
  }

  void retire(const TimeInterval& interval, double rate) {
    auto start_it = timeline_.find(interval.start);
    auto end_it = timeline_.find(interval.end);
    for (auto it = start_it; it != end_it; ++it) it->second.level -= rate;
    if (--start_it->second.refs == 0) timeline_.erase(start_it);
    if (--end_it->second.refs == 0) timeline_.erase(end_it);
  }

  const std::map<SimTime, Boundary>& boundaries() const { return timeline_; }

 private:
  std::map<SimTime, Boundary> timeline_;
};

}  // namespace e2e::bb
