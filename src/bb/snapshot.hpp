// Broker state snapshots.
//
// A snapshot is the logical broker state — reservations, tunnels with
// their authorizations and per-flow allocations, the id/serial sources and
// the statistics counters — written as JSON lines with an integrity hash
// over the whole file. Capacity-pool timelines are NOT persisted: the
// timeline is a pure function of the live commitment set, so recovery
// rebuilds the pools by re-committing each entry (exactly, for the
// integer-valued rates the harnesses use; see docs/DURABILITY.md).
//
// The snapshot records the WAL position it covers (`wal_next_seq`, the
// first sequence number NOT captured): recovery replays only records at or
// past it, and snapshot_and_truncate() drops the covered WAL prefix.
// Snapshots are written to a temp file and renamed into place, so a crash
// mid-snapshot leaves the previous snapshot intact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bb/bandwidth_broker.hpp"
#include "bb/wal.hpp"
#include "common/result.hpp"

namespace e2e::bb {

struct SnapshotMeta {
  std::string domain;
  double capacity_bits_per_s = 0;
  /// First WAL sequence number NOT covered by this snapshot.
  std::uint64_t wal_next_seq = 1;
  /// WAL chain head at snapshot time (links the snapshot to the log).
  std::string wal_head;
  std::uint64_t next_id = 1;
  std::uint64_t next_cert_serial = 0;
  BandwidthBroker::Counters counters;
};

struct SnapshotTunnel {
  TunnelId id;
  ResSpec spec;
  std::vector<std::string> authorized;
  std::vector<CapacityPool::CommitmentView> allocations;
};

struct SnapshotData {
  SnapshotMeta meta;
  std::vector<Reservation> reservations;
  std::vector<SnapshotTunnel> tunnels;
};

/// Write `broker`'s state to `path` (tmp + rename). `wal` may be null
/// (snapshot of a broker running without durability); the recorded WAL
/// position then covers nothing.
Status write_snapshot(const BandwidthBroker& broker, const WriteAheadLog* wal,
                      const std::string& path);

/// Read and integrity-check a snapshot file.
Result<SnapshotData> read_snapshot(const std::string& path);

/// The periodic checkpoint step: write the snapshot, then truncate the WAL
/// through the covered prefix. Returns the number of WAL records dropped.
Result<std::size_t> snapshot_and_truncate(const BandwidthBroker& broker,
                                          WriteAheadLog& wal,
                                          const std::string& path);

}  // namespace e2e::bb
