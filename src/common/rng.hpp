// Deterministic PRNG used throughout the library.
//
// Reproducibility matters more than cryptographic strength here: simulator
// runs, key generation for tests and benchmark workloads must be replayable
// from a seed. xoshiro256** (public-domain algorithm by Blackman & Vigna)
// seeded via SplitMix64.
#pragma once

#include <cmath>
#include <cstdint>

namespace e2e {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding to fill the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias for practical purposes.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    return next_u64() % bound;  // bias negligible for simulation workloads
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Exponentially distributed with the given mean (>0); used by Poisson
  /// traffic sources.
  double next_exponential(double mean) {
    double u = next_double();
    if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
    return -mean * std::log(u);
  }

  bool next_bool(double p_true) { return next_double() < p_true; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace e2e
