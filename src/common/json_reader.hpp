// Minimal zero-dependency JSON reader.
//
// Just enough JSON to read back what the observability plane writes —
// metrics snapshots (MetricsRegistry::to_json), admin-plane /statz and
// /tracez documents — from tools (bbstat, tracedump --from-json) and
// tests, with no third-party dependency. Recursive descent over the full
// value grammar; numbers parse as double; object keys keep insertion
// order (the writers emit deterministically ordered documents, and tests
// compare against that order).
//
// This is a reader for OUR writers, not a general validator: it accepts
// the common \uXXXX escapes only for the BMP (emitting UTF-8), and depth
// is bounded to keep hostile inputs from recursing the stack away.
#pragma once

#include <cctype>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.hpp"

namespace e2e::json {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_bool() const { return kind == Kind::kBool; }

  /// First member named `key`, or nullptr (objects only).
  const Value* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

namespace detail {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Value> parse() {
    auto value = parse_value(0);
    if (!value.ok()) return value;
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after the top-level value");
    }
    return value;
  }

 private:
  static constexpr std::size_t kMaxDepth = 64;

  Result<Value> fail(const std::string& what) const {
    return make_error(ErrorCode::kBadMessage,
                      "json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(const char* word) {
    std::size_t n = 0;
    while (word[n] != '\0') ++n;
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  Result<Value> parse_value(std::size_t depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(depth);
    if (c == '[') return parse_array(depth);
    if (c == '"') {
      auto s = parse_string();
      if (!s.ok()) return s.error();
      Value v;
      v.kind = Value::Kind::kString;
      v.string = std::move(s.value());
      return v;
    }
    if (consume_word("true")) {
      Value v;
      v.kind = Value::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_word("false")) {
      Value v;
      v.kind = Value::Kind::kBool;
      v.boolean = false;
      return v;
    }
    if (consume_word("null")) return Value{};
    return parse_number();
  }

  Result<Value> parse_object(std::size_t depth) {
    Value v;
    v.kind = Value::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) return v;
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      auto key = parse_string();
      if (!key.ok()) return key.error();
      skip_ws();
      if (!consume(':')) return fail("expected ':' after object key");
      auto member = parse_value(depth + 1);
      if (!member.ok()) return member;
      v.object.emplace_back(std::move(key.value()),
                            std::move(member.value()));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return v;
      return fail("expected ',' or '}' in object");
    }
  }

  Result<Value> parse_array(std::size_t depth) {
    Value v;
    v.kind = Value::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) return v;
    while (true) {
      auto element = parse_value(depth + 1);
      if (!element.ok()) return element;
      v.array.push_back(std::move(element.value()));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return v;
      return fail("expected ',' or ']' in array");
    }
  }

  Result<std::string> parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) break;
        const char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return make_error(ErrorCode::kBadMessage,
                                "json: truncated \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return make_error(ErrorCode::kBadMessage,
                                  "json: bad \\u escape");
              }
            }
            pos_ += 4;
            // UTF-8 encode the BMP code point (no surrogate pairing —
            // our writers never emit astral-plane text).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return make_error(ErrorCode::kBadMessage,
                              "json: unknown escape");
        }
        continue;
      }
      out += c;
      ++pos_;
    }
    return make_error(ErrorCode::kBadMessage, "json: unterminated string");
  }

  Result<Value> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    Value v;
    v.kind = Value::Kind::kNumber;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return fail("malformed number");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parse one JSON document.
inline Result<Value> parse(const std::string& text) {
  return detail::Parser(text).parse();
}

}  // namespace e2e::json
