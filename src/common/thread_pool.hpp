// Fixed-size thread pool.
//
// Used by the source-domain signalling engine to contact all bandwidth
// brokers concurrently (the paper notes source-based signalling "may be
// faster ... because the reservations for each domain can be made in
// parallel") and by benchmark drivers that admit many flows at once.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace e2e {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>=1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedule `fn` and get a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) {
        throw std::logic_error("ThreadPool::submit after shutdown");
      }
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace e2e
