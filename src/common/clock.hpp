// Simulated time.
//
// The whole system runs against a virtual clock so experiments are
// deterministic and the latency model (bench/fig3) does not depend on wall
// time. SimTime is microseconds since an arbitrary epoch.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace e2e {

/// Microseconds of virtual time.
using SimTime = std::int64_t;
using SimDuration = std::int64_t;

constexpr SimDuration microseconds(std::int64_t v) { return v; }
constexpr SimDuration milliseconds(std::int64_t v) { return v * 1000; }
constexpr SimDuration seconds(std::int64_t v) { return v * 1000000; }
constexpr SimDuration minutes(std::int64_t v) { return v * 60000000; }
constexpr SimDuration hours(std::int64_t v) { return v * 3600000000ll; }

constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / 1e6;
}
constexpr double to_milliseconds(SimDuration d) {
  return static_cast<double>(d) / 1e3;
}

/// Half-open virtual-time interval [start, end). Used by advance
/// reservations and certificate validity periods.
struct TimeInterval {
  SimTime start = 0;
  SimTime end = 0;

  bool contains(SimTime t) const { return t >= start && t < end; }
  bool overlaps(const TimeInterval& o) const {
    return start < o.end && o.start < end;
  }
  SimDuration length() const { return end - start; }
  bool valid() const { return end > start; }

  bool operator==(const TimeInterval&) const = default;
};

/// A mutable clock owned by the environment (simulator or signalling
/// fabric). Components hold a pointer and never advance it themselves.
class VirtualClock {
 public:
  SimTime now() const { return now_; }
  void advance_to(SimTime t) {
    if (t > now_) now_ = t;
  }
  void advance_by(SimDuration d) { now_ += d; }

 private:
  SimTime now_ = 0;
};

/// Render a SimTime as "HH:MM:SS.mmm" of the virtual day (used by the
/// time-of-day policy conditions in Fig. 6, e.g. "Time > 8am").
inline std::string format_time_of_day(SimTime t) {
  const std::int64_t us_per_day = hours(24);
  std::int64_t rem = t % us_per_day;
  if (rem < 0) rem += us_per_day;
  const int h = static_cast<int>(rem / hours(1));
  const int m = static_cast<int>((rem % hours(1)) / minutes(1));
  const int s = static_cast<int>((rem % minutes(1)) / seconds(1));
  const int ms = static_cast<int>((rem % seconds(1)) / 1000);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d.%03d", h, m, s, ms);
  return buf;
}

/// Hour-of-day (0-23) for a SimTime, used by policy conditions.
constexpr int hour_of_day(SimTime t) {
  const std::int64_t us_per_day = hours(24);
  std::int64_t rem = t % us_per_day;
  if (rem < 0) rem += us_per_day;
  return static_cast<int>(rem / hours(1));
}

}  // namespace e2e
