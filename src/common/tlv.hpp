// Canonical TLV (tag-length-value) encoding.
//
// Every signed object in the signalling protocol — reservation
// specifications, certificates, RAR layers — is serialized with this encoder
// before hashing, so encoding must be *canonical*: a given logical value has
// exactly one byte representation. We guarantee this by fixed-width
// big-endian integers, explicit tags, and length-prefixed values, and the
// reader rejects trailing garbage.
//
// Wire format of one element:
//   tag      : u16  big-endian
//   length   : u32  big-endian (byte length of value)
//   value    : `length` bytes (possibly nested TLV elements)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace e2e::tlv {

using Tag = std::uint16_t;

/// Incremental writer. Scalar put_* helpers encode the value as the TLV
/// payload; `open`/`close` create nested containers.
class Writer {
 public:
  void put_u8(Tag tag, std::uint8_t v);
  void put_u16(Tag tag, std::uint16_t v);
  void put_u32(Tag tag, std::uint32_t v);
  void put_u64(Tag tag, std::uint64_t v);
  void put_i64(Tag tag, std::int64_t v);
  void put_bool(Tag tag, bool v);
  void put_string(Tag tag, std::string_view v);
  void put_bytes(Tag tag, BytesView v);
  /// Doubles are encoded as their IEEE-754 bit pattern (big-endian u64);
  /// this is canonical for any given double value.
  void put_f64(Tag tag, double v);

  /// Begin a nested container with `tag`; elements written until the matching
  /// close() become its payload. Containers may nest arbitrarily.
  void open(Tag tag);
  void close();

  /// Finish and return the encoded bytes. All containers must be closed.
  Bytes take();

 private:
  void put_header(Tag tag, std::uint32_t length);
  Bytes buf_;
  std::vector<std::size_t> open_offsets_;  // offsets of length fields to patch
};

/// One parsed element (header + view into the buffer).
struct Element {
  Tag tag = 0;
  BytesView value;
};

/// Sequential reader over one TLV container. The reader borrows the byte
/// buffer; callers must keep it alive.
class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  bool at_end() const { return pos_ >= data_.size(); }

  /// Peek the tag of the next element without consuming it.
  Result<Tag> peek_tag() const;

  /// Read the next element of any tag.
  Result<Element> next();

  /// Read the next element and require a specific tag.
  Result<Element> expect(Tag tag);

  // Typed accessors: read the next element, require `tag`, and decode the
  // payload with strict length checks.
  Result<std::uint8_t> read_u8(Tag tag);
  Result<std::uint16_t> read_u16(Tag tag);
  Result<std::uint32_t> read_u32(Tag tag);
  Result<std::uint64_t> read_u64(Tag tag);
  Result<std::int64_t> read_i64(Tag tag);
  Result<bool> read_bool(Tag tag);
  Result<std::string> read_string(Tag tag);
  Result<Bytes> read_bytes(Tag tag);
  Result<double> read_f64(Tag tag);

  /// Read the next element, require `tag`, and return a Reader over its
  /// payload (for nested containers).
  Result<Reader> read_nested(Tag tag);

  /// If the next element has `tag`, consume and return it; otherwise
  /// std::nullopt. Used for optional fields.
  std::optional<Element> try_next(Tag tag);

 private:
  BytesView data_;
  std::size_t pos_ = 0;
};

// Scalar big-endian helpers (exposed for the crypto layer).
void put_be16(Bytes& out, std::uint16_t v);
void put_be32(Bytes& out, std::uint32_t v);
void put_be64(Bytes& out, std::uint64_t v);
std::uint64_t get_be(BytesView in, std::size_t nbytes);

}  // namespace e2e::tlv
