#include "common/tlv.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace e2e::tlv {

void put_be16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_be32(Bytes& out, std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_be64(Bytes& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

std::uint64_t get_be(BytesView in, std::size_t nbytes) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < nbytes; ++i) {
    v = (v << 8) | in[i];
  }
  return v;
}

void Writer::put_header(Tag tag, std::uint32_t length) {
  put_be16(buf_, tag);
  put_be32(buf_, length);
}

void Writer::put_u8(Tag tag, std::uint8_t v) {
  put_header(tag, 1);
  buf_.push_back(v);
}

void Writer::put_u16(Tag tag, std::uint16_t v) {
  put_header(tag, 2);
  put_be16(buf_, v);
}

void Writer::put_u32(Tag tag, std::uint32_t v) {
  put_header(tag, 4);
  put_be32(buf_, v);
}

void Writer::put_u64(Tag tag, std::uint64_t v) {
  put_header(tag, 8);
  put_be64(buf_, v);
}

void Writer::put_i64(Tag tag, std::int64_t v) {
  put_u64(tag, static_cast<std::uint64_t>(v));
}

void Writer::put_bool(Tag tag, bool v) { put_u8(tag, v ? 1 : 0); }

void Writer::put_string(Tag tag, std::string_view v) {
  put_header(tag, static_cast<std::uint32_t>(v.size()));
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void Writer::put_bytes(Tag tag, BytesView v) {
  put_header(tag, static_cast<std::uint32_t>(v.size()));
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void Writer::put_f64(Tag tag, double v) {
  put_u64(tag, std::bit_cast<std::uint64_t>(v));
}

void Writer::open(Tag tag) {
  put_be16(buf_, tag);
  open_offsets_.push_back(buf_.size());
  put_be32(buf_, 0);  // placeholder length, patched in close()
}

void Writer::close() {
  if (open_offsets_.empty()) {
    throw std::logic_error("tlv::Writer::close without matching open");
  }
  const std::size_t off = open_offsets_.back();
  open_offsets_.pop_back();
  const std::size_t payload = buf_.size() - off - 4;
  buf_[off] = static_cast<std::uint8_t>(payload >> 24);
  buf_[off + 1] = static_cast<std::uint8_t>(payload >> 16);
  buf_[off + 2] = static_cast<std::uint8_t>(payload >> 8);
  buf_[off + 3] = static_cast<std::uint8_t>(payload);
}

Bytes Writer::take() {
  if (!open_offsets_.empty()) {
    throw std::logic_error("tlv::Writer::take with unclosed containers");
  }
  return std::move(buf_);
}

namespace {
Error bad(std::string msg) {
  return make_error(ErrorCode::kBadMessage, std::move(msg));
}
}  // namespace

Result<Tag> Reader::peek_tag() const {
  if (pos_ + 6 > data_.size()) return bad("tlv: truncated header");
  return static_cast<Tag>(get_be(data_.subspan(pos_, 2), 2));
}

Result<Element> Reader::next() {
  if (pos_ + 6 > data_.size()) return bad("tlv: truncated header");
  const Tag tag = static_cast<Tag>(get_be(data_.subspan(pos_, 2), 2));
  const std::uint64_t len = get_be(data_.subspan(pos_ + 2, 4), 4);
  if (pos_ + 6 + len > data_.size()) return bad("tlv: truncated value");
  Element e{tag, data_.subspan(pos_ + 6, static_cast<std::size_t>(len))};
  pos_ += 6 + static_cast<std::size_t>(len);
  return e;
}

Result<Element> Reader::expect(Tag tag) {
  auto e = next();
  if (!e) return e;
  if (e->tag != tag) {
    return bad("tlv: expected tag " + std::to_string(tag) + " got " +
               std::to_string(e->tag));
  }
  return e;
}

std::optional<Element> Reader::try_next(Tag tag) {
  auto t = peek_tag();
  if (!t.ok() || *t != tag) return std::nullopt;
  auto e = next();
  if (!e.ok()) return std::nullopt;
  return *e;
}

Result<std::uint8_t> Reader::read_u8(Tag tag) {
  auto e = expect(tag);
  if (!e) return e.error();
  if (e->value.size() != 1) return bad("tlv: u8 length");
  return e->value[0];
}

Result<std::uint16_t> Reader::read_u16(Tag tag) {
  auto e = expect(tag);
  if (!e) return e.error();
  if (e->value.size() != 2) return bad("tlv: u16 length");
  return static_cast<std::uint16_t>(get_be(e->value, 2));
}

Result<std::uint32_t> Reader::read_u32(Tag tag) {
  auto e = expect(tag);
  if (!e) return e.error();
  if (e->value.size() != 4) return bad("tlv: u32 length");
  return static_cast<std::uint32_t>(get_be(e->value, 4));
}

Result<std::uint64_t> Reader::read_u64(Tag tag) {
  auto e = expect(tag);
  if (!e) return e.error();
  if (e->value.size() != 8) return bad("tlv: u64 length");
  return get_be(e->value, 8);
}

Result<std::int64_t> Reader::read_i64(Tag tag) {
  auto v = read_u64(tag);
  if (!v) return v.error();
  return static_cast<std::int64_t>(*v);
}

Result<bool> Reader::read_bool(Tag tag) {
  auto v = read_u8(tag);
  if (!v) return v.error();
  if (*v > 1) return bad("tlv: bool out of range");
  return *v == 1;
}

Result<std::string> Reader::read_string(Tag tag) {
  auto e = expect(tag);
  if (!e) return e.error();
  return std::string(e->value.begin(), e->value.end());
}

Result<Bytes> Reader::read_bytes(Tag tag) {
  auto e = expect(tag);
  if (!e) return e.error();
  return Bytes(e->value.begin(), e->value.end());
}

Result<double> Reader::read_f64(Tag tag) {
  auto v = read_u64(tag);
  if (!v) return v.error();
  return std::bit_cast<double>(*v);
}

Result<Reader> Reader::read_nested(Tag tag) {
  auto e = expect(tag);
  if (!e) return e.error();
  return Reader(e->value);
}

}  // namespace e2e::tlv
