#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace e2e::log {

namespace {
std::atomic<Level> g_level{Level::kWarn};
std::mutex g_mutex;

const char* level_name(Level l) {
  switch (l) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void write(Level lvl, const std::string& component,
           const std::string& message) {
  if (lvl < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard lock(g_mutex);
  std::fprintf(stderr, "[%s] %-12s %s\n", level_name(lvl), component.c_str(),
               message.c_str());
}

}  // namespace e2e::log
