// Minimal leveled logger.
//
// Components log protocol events (request received, policy decision,
// admission result) at kInfo; the default threshold is kWarn so tests and
// benchmarks stay quiet. Examples raise the threshold to narrate scenarios.
#pragma once

#include <sstream>
#include <string>

namespace e2e::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped.
void set_level(Level level);
Level level();

/// Emit one line (thread-safe).
void write(Level level, const std::string& component,
           const std::string& message);

namespace detail {
class LineBuilder {
 public:
  LineBuilder(Level level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LineBuilder() { write(level_, component_, stream_.str()); }
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;

  template <typename T>
  LineBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  Level level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LineBuilder debug(std::string component) {
  return {Level::kDebug, std::move(component)};
}
inline detail::LineBuilder info(std::string component) {
  return {Level::kInfo, std::move(component)};
}
inline detail::LineBuilder warn(std::string component) {
  return {Level::kWarn, std::move(component)};
}
inline detail::LineBuilder error(std::string component) {
  return {Level::kError, std::move(component)};
}

}  // namespace e2e::log
