// Byte-buffer utilities shared by every layer of the stack.
//
// All protocol messages, hashes, signatures and certificates are carried as
// `Bytes` (a plain std::vector<uint8_t>); this header provides conversions
// to/from text and hex plus small helpers used by the canonical encoder.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace e2e {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// UTF-8/ASCII string -> bytes (no terminator).
Bytes to_bytes(std::string_view s);

/// Bytes -> std::string (bytes are copied verbatim).
std::string to_string(BytesView b);

/// Lower-case hex encoding ("deadbeef").
std::string hex_encode(BytesView b);

/// Decode hex produced by hex_encode. Throws std::invalid_argument on
/// malformed input (odd length or non-hex characters).
Bytes hex_decode(std::string_view hex);

/// Constant-time-style equality (length leak only); used when comparing MACs.
bool equal_ct(BytesView a, BytesView b);

/// Append `src` to `dst`.
void append(Bytes& dst, BytesView src);

}  // namespace e2e
