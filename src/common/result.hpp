// Result<T> — a small expected-like type used across the library for
// operations that can fail for *protocol* reasons (policy denial, bad
// signature, SLA violation, ...). Exceptions are reserved for programming
// errors (precondition violations, malformed internal state).
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace e2e {

/// Machine-readable failure category. The signalling protocol propagates
/// these upstream so the requesting user learns *why* a reservation failed
/// (paper §6.1: "Whenever a request is denied by one domain, the event is
/// propagated upstream to inform the user of the reason for the denial").
enum class ErrorCode {
  kPolicyDenied,        // policy engine returned DENY
  kAdmissionRejected,   // insufficient capacity / SLA profile exceeded
  kAuthenticationFailed,// channel or signature authentication failure
  kBadSignature,        // signature verification failed
  kUntrustedKey,        // no acceptable trust path to the signing key
  kBadMessage,          // malformed or non-canonical message
  kNoRoute,             // no BB path between the given domains
  kNotFound,            // unknown handle / DN / object
  kExpired,             // certificate or reservation outside validity
  kUnavailable,         // peer or server unreachable
  kInvalidArgument,     // caller error detectable at the API boundary
  kConflict,            // duplicate handle, overlapping state
  kTimeout,             // peer stayed silent past the retry budget
  kInternal,            // unexpected internal failure
};

/// Human-readable name for an ErrorCode (stable, used in logs and tests).
constexpr const char* to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::kPolicyDenied: return "policy-denied";
    case ErrorCode::kAdmissionRejected: return "admission-rejected";
    case ErrorCode::kAuthenticationFailed: return "authentication-failed";
    case ErrorCode::kBadSignature: return "bad-signature";
    case ErrorCode::kUntrustedKey: return "untrusted-key";
    case ErrorCode::kBadMessage: return "bad-message";
    case ErrorCode::kNoRoute: return "no-route";
    case ErrorCode::kNotFound: return "not-found";
    case ErrorCode::kExpired: return "expired";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kInvalidArgument: return "invalid-argument";
    case ErrorCode::kConflict: return "conflict";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  /// Name of the domain (or entity) that produced the error; filled in by the
  /// signalling layer so denials can be attributed as they travel upstream.
  std::string origin;

  std::string to_text() const {
    std::string s = to_string(code);
    if (!origin.empty()) s += " @" + origin;
    if (!message.empty()) s += ": " + message;
    return s;
  }
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}          // NOLINT(implicit)
  Result(Error error) : state_(std::move(error)) {}      // NOLINT(implicit)

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    require_ok();
    return std::get<T>(state_);
  }
  T& value() & {
    require_ok();
    return std::get<T>(state_);
  }
  T&& value() && {
    require_ok();
    return std::get<T>(std::move(state_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const {
    if (ok()) throw std::logic_error("Result::error() called on ok result");
    return std::get<Error>(state_);
  }

  /// Value if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

 private:
  void require_ok() const {
    if (!ok()) {
      throw std::logic_error("Result::value() on error: " +
                             std::get<Error>(state_).to_text());
    }
  }
  std::variant<T, Error> state_;
};

/// Result for operations with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(implicit)

  static Status ok_status() { return Status(); }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    if (ok()) throw std::logic_error("Status::error() called on ok status");
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

inline Error make_error(ErrorCode code, std::string message,
                        std::string origin = {}) {
  return Error{code, std::move(message), std::move(origin)};
}

}  // namespace e2e
