#include "net/socket_transport.hpp"

#include <utility>

#include "obs/instruments.hpp"

namespace e2e::net {

Bytes encode_hub_message(const std::string& from, const std::string& to,
                         BytesView payload,
                         const obs::TraceContext* trace_context) {
  tlv::Writer writer;
  writer.open(hub_tag::kMessage);
  writer.put_string(hub_tag::kFrom, from);
  writer.put_string(hub_tag::kTo, to);
  writer.put_bytes(hub_tag::kPayload, payload);
  if (trace_context != nullptr && trace_context->valid()) {
    writer.put_bytes(hub_tag::kTrace,
                     sig::encode_trace_context(*trace_context));
  }
  writer.close();
  return writer.take();
}

namespace {

Bytes encode_hello(const std::string& party) {
  tlv::Writer writer;
  writer.open(hub_tag::kHello);
  writer.put_string(hub_tag::kParty, party);
  writer.close();
  return writer.take();
}

}  // namespace

Result<HubMessage> decode_hub_frame(BytesView frame, bool& is_hello) {
  tlv::Reader outer(frame);
  auto hello = outer.read_nested(hub_tag::kHello);
  if (hello.ok()) {
    is_hello = true;
    auto party = hello.value().read_string(hub_tag::kParty);
    if (!party.ok()) return party.error();
    HubMessage message;
    message.from = std::move(party.value());
    return message;
  }
  is_hello = false;
  tlv::Reader retry(frame);
  auto nested = retry.read_nested(hub_tag::kMessage);
  if (!nested.ok()) return nested.error();
  tlv::Reader& reader = nested.value();
  HubMessage message;
  auto from = reader.read_string(hub_tag::kFrom);
  if (!from.ok()) return from.error();
  message.from = std::move(from.value());
  auto to = reader.read_string(hub_tag::kTo);
  if (!to.ok()) return to.error();
  message.to = std::move(to.value());
  auto payload = reader.read_bytes(hub_tag::kPayload);
  if (!payload.ok()) return payload.error();
  message.payload = std::move(payload.value());
  if (!reader.at_end()) {
    auto trace = reader.read_bytes(hub_tag::kTrace);
    if (!trace.ok()) return trace.error();
    auto context = sig::decode_trace_context(trace.value());
    if (!context.ok()) return context.error();
    message.trace_context = std::move(context.value());
  }
  return message;
}

Result<std::unique_ptr<SocketHub>> SocketHub::start(const Endpoint& listen) {
  std::unique_ptr<SocketHub> hub(new SocketHub());
  SocketHub* raw = hub.get();
  StreamServer::Options options;
  options.listen_on = {listen};
  StreamServer::Callbacks callbacks;
  callbacks.on_frame = [raw](StreamServer::ConnId id, Bytes frame) {
    raw->on_frame(id, std::move(frame));
  };
  callbacks.on_close = [raw](StreamServer::ConnId id, const Status&) {
    raw->on_close(id);
  };
  hub->server_ =
      std::make_unique<StreamServer>(std::move(options), std::move(callbacks));
  if (auto started = hub->server_->start(); !started.ok()) {
    return started.error();
  }
  hub->endpoint_ = hub->server_->bound_endpoints().front();
  hub->loop_ = std::thread([raw] { raw->server_->run(); });
  return hub;
}

SocketHub::~SocketHub() { stop(); }

void SocketHub::stop() {
  if (server_ != nullptr) server_->stop();
  if (loop_.joinable()) loop_.join();
}

void SocketHub::on_frame(StreamServer::ConnId id, Bytes frame) {
  bool is_hello = false;
  auto decoded = decode_hub_frame(frame, is_hello);
  if (!decoded.ok()) {
    // A peer speaking garbage cannot be routed; the frame is dropped.
    (void)id;
    return;
  }
  if (is_hello) {
    const std::string& party = decoded.value().from;
    party_conns_[party] = id;
    conn_parties_[id] = party;
    // Flush messages that arrived before the party did (inbox
    // semantics: a message waits for its receiver).
    auto pending = undelivered_.find(party);
    if (pending != undelivered_.end()) {
      for (Bytes& buffered : pending->second) {
        (void)server_->send(id, buffered);
      }
      undelivered_.erase(pending);
    }
    return;
  }
  const auto target = party_conns_.find(decoded.value().to);
  if (target == party_conns_.end()) {
    undelivered_[decoded.value().to].push_back(std::move(frame));
    return;
  }
  (void)server_->send(target->second, frame);
}

void SocketHub::on_close(StreamServer::ConnId id) {
  const auto it = conn_parties_.find(id);
  if (it == conn_parties_.end()) return;
  party_conns_.erase(it->second);
  conn_parties_.erase(it);
}

void SocketTransport::record_message(const std::string& from,
                                     const std::string& to,
                                     std::size_t bytes) {
  (void)from;
  (void)to;
  auto& registry = obs::MetricsRegistry::global();
  registry.counter(obs::kSigFabricMessagesTotal).increment();
  registry.counter(obs::kSigFabricBytesTotal).increment(bytes);
  std::lock_guard lock(mutex_);
  total_.messages++;
  total_.bytes += bytes;
}

Result<StreamSocket*> SocketTransport::party_locked(const std::string& name) {
  auto it = parties_.find(name);
  if (it != parties_.end()) return &it->second;
  auto connected = StreamSocket::connect(hub_);
  if (!connected.ok()) return connected.error();
  auto [inserted, unused] =
      parties_.emplace(name, std::move(connected.value()));
  auto hello = inserted->second.send_frame(encode_hello(name));
  if (!hello.ok()) {
    parties_.erase(inserted);
    return hello.error();
  }
  return &inserted->second;
}

sig::Delivery SocketTransport::transmit(const std::string& from,
                                        const std::string& to,
                                        BytesView payload,
                                        const obs::TraceContext* trace_context) {
  sig::Delivery delivery;
  auto sent = send(from, to, payload, trace_context);
  if (!sent.ok()) {
    delivery.outcome = sig::Delivery::Outcome::kDropped;
    return delivery;
  }
  delivery.outcome = sig::Delivery::Outcome::kDelivered;
  delivery.payload.assign(payload.begin(), payload.end());
  if (trace_context != nullptr && trace_context->valid()) {
    delivery.trace_context = *trace_context;
  }
  return delivery;
}

Status SocketTransport::send(const std::string& from, const std::string& to,
                             BytesView payload,
                             const obs::TraceContext* trace_context) {
  if (payload.size() > sig::kMaxTransportPayload) {
    return make_error(ErrorCode::kInvalidArgument,
                      "payload exceeds transport frame cap",
                      std::to_string(payload.size()));
  }
  record_message(from, to, payload.size());
  std::lock_guard lock(mutex_);
  auto party = party_locked(from);
  if (!party.ok()) return party.error();
  return party.value()->send_frame(
      encode_hub_message(from, to, payload, trace_context));
}

Result<sig::InboundMessage> SocketTransport::receive(
    const std::string& self, std::chrono::milliseconds wait) {
  StreamSocket* socket = nullptr;
  {
    std::lock_guard lock(mutex_);
    auto party = party_locked(self);
    if (!party.ok()) return party.error();
    socket = party.value();
  }
  auto frame = socket->recv_frame(wait);
  if (!frame.ok()) return frame.error();
  bool is_hello = false;
  auto decoded = decode_hub_frame(frame.value(), is_hello);
  if (!decoded.ok()) return decoded.error();
  if (is_hello || decoded.value().to != self) {
    return make_error(ErrorCode::kBadMessage,
                      "hub delivered a misrouted envelope", self);
  }
  sig::InboundMessage message;
  message.from = std::move(decoded.value().from);
  message.payload = std::move(decoded.value().payload);
  message.trace_context = std::move(decoded.value().trace_context);
  return message;
}

SocketTransport::Stats SocketTransport::total() const {
  std::lock_guard lock(mutex_);
  return total_;
}

void SocketTransport::reset_counters() {
  std::lock_guard lock(mutex_);
  total_ = Stats{};
}

}  // namespace e2e::net
