// The bbd daemon: a ChainWorld behind a StreamServer.
//
// One process hosts the whole chain of administrative domains — brokers,
// CAs, SLAs, both signalling engines — and exposes the BbdOp RPC surface
// (bbd_protocol.hpp) over authenticated stream connections. Client
// processes (bench --daemon modes, the soak test, bbd_client) drive the
// world remotely; because the world is seeded deterministically and every
// RarReply crosses the wire as its canonical encoding, a multi-process run
// produces byte-identical protocol output to the in-memory one.
//
// Threading: all application state (world, users, per-connection state)
// is touched only from the StreamServer loop thread — callbacks run there
// one at a time, so no locks. start()/stop()/shutdown_gracefully()/wait()
// are the cross-thread entry points.
#pragma once

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "crypto/ca.hpp"
#include "kit/chain_world.hpp"
#include "net/bbd_protocol.hpp"
#include "net/stream_server.hpp"
#include "obs/admin.hpp"
#include "obs/window.hpp"
#include "sig/channel.hpp"

namespace e2e::net {

/// Deterministic mutual-auth material: daemon and clients derive the SAME
/// CA, certificates and keys from a shared seed, and each side pins the
/// other's exact certificate (sig::ChannelEndpoint::pinned_peer), so no
/// trust-store distribution is needed. The daemon's RPC credentials are
/// deliberately separate from any world's key material: kConfigure can
/// tear the world down and rebuild it without invalidating live channels.
struct ServiceIdentity {
  crypto::Certificate daemon_certificate;
  crypto::KeyPair daemon_keys;
  crypto::Certificate client_certificate;
  crypto::KeyPair client_keys;

  sig::ChannelEndpoint daemon_endpoint() const;
  sig::ChannelEndpoint client_endpoint() const;
};

ServiceIdentity make_service_identity(std::uint64_t seed);

inline constexpr std::uint64_t kDefaultAuthSeed = 20010801;

class BbdService {
 public:
  struct Options {
    std::vector<Endpoint> listen_on;
    /// Handshake credential seed; clients must use the same one.
    std::uint64_t auth_seed = kDefaultAuthSeed;
    /// Applied onto every world this daemon builds (startup and
    /// kConfigure): per-domain WAL + snapshot files live here.
    std::string durability_dir;
    /// Replay snapshot + WAL into each world build (restart path).
    bool recover = false;
    std::chrono::milliseconds idle_timeout{0};
    std::size_t max_write_queue_bytes = 4u << 20;
    bool force_poll = false;
    /// Optional plaintext admin/telemetry listeners (docs/DAEMON.md "Live
    /// operations"): a second StreamServer in raw mode serving the
    /// obs::AdminPlane HTTP routes. Empty (the default) disables the
    /// whole plane — no extra thread, no extra series, byte-identical
    /// outputs.
    std::vector<Endpoint> admin_on;
    /// When non-empty, a final metrics snapshot (registry JSON) is
    /// written here as the daemon drains, after the audit "shutdown"
    /// record is appended.
    std::string metrics_out;
    /// Base config of the startup world (durability fields above win).
    kit::ChainWorldConfig world;
  };

  explicit BbdService(Options options);
  ~BbdService();
  BbdService(const BbdService&) = delete;
  BbdService& operator=(const BbdService&) = delete;

  /// Build the startup world (recovering prior state when configured),
  /// bind the listeners, and run the event loop on a background thread.
  Status start();

  /// Block until the loop exits (stop, graceful shutdown, or kShutdown).
  void wait();
  void stop();
  void shutdown_gracefully();

  std::vector<Endpoint> bound_endpoints() const;
  /// Bound admin endpoints (empty when the admin plane is disabled).
  std::vector<Endpoint> admin_endpoints() const;
  const char* poller_name() const;

 private:
  struct ConnState {
    std::unique_ptr<sig::HandshakeResponder> handshake;
    /// The ClientHello was consumed and the ServerHello sent; the next
    /// frame must be the Finished message. (The responder's own done()
    /// only flips after Finished, so the connection tracks this stage.)
    bool hello_consumed = false;
    bool established = false;
    bool release_on_disconnect = false;
    /// (engine, RarReply bytes) of every end-to-end grant made over this
    /// connection and not yet released — released on disconnect when the
    /// connection asked for it (kHello flag bit 0).
    std::vector<std::pair<std::string, Bytes>> grants;
  };

  void on_open(StreamServer::ConnId id, const Endpoint& via);
  void on_frame(StreamServer::ConnId id, Bytes frame);
  void on_close(StreamServer::ConnId id, const Status& reason);

  /// Handshake-stage frames (ClientHello, Finished) — returns false when
  /// the connection was closed on error.
  bool on_handshake_frame(StreamServer::ConnId id, ConnState& conn,
                          const Bytes& frame);
  BbdResponse handle(StreamServer::ConnId id, ConnState& conn,
                     const BbdRequest& request);
  void send_response(StreamServer::ConnId id, ConnState& conn,
                     const BbdResponse& response);
  Status rebuild_world(kit::ChainWorldConfig config);
  void release_orphans(ConnState& conn);

  /// Admin plane (options_.admin_on non-empty only). The admin server
  /// runs raw HTTP on its own thread; its providers synchronize against
  /// the RPC loop through world_mutex_.
  Status start_admin();
  void on_admin_data(StreamServer::ConnId id, BytesView data);
  std::string build_statz() const;
  std::string build_tracez() const;
  /// Runs on the loop thread after run() returns: stop the admin plane,
  /// append the audit "shutdown" record, write the final snapshot.
  void finalize_shutdown();

  Options options_;
  ServiceIdentity identity_;
  Rng handshake_rng_;
  std::unique_ptr<StreamServer> server_;
  std::thread loop_;
  std::unique_ptr<kit::ChainWorld> world_;
  std::map<std::string, kit::WorldUser> users_;
  std::map<StreamServer::ConnId, ConnState> conns_;

  /// Orders admin-thread reads of world_/users_ against the loop thread's
  /// RPC handling and world rebuilds. The loop takes it per request; the
  /// admin thread takes it per /statz-/tracez render. Uncontended (and
  /// therefore ~free) whenever nobody scrapes.
  mutable std::mutex world_mutex_;
  std::atomic<bool> loop_live_{false};

  std::unique_ptr<StreamServer> admin_server_;
  std::thread admin_loop_;
  std::unique_ptr<obs::AdminPlane> admin_plane_;
  /// Per-connection request bytes (admin loop thread only).
  std::map<StreamServer::ConnId, std::string> admin_buffers_;

  /// Wall-clock telemetry over the RPC stream: latency distribution and
  /// SLO burn over the last minute, published at admin snapshot refresh.
  obs::WallClockFn wall_clock_;
  obs::WindowedHistogram rpc_latency_;
  obs::BurnRateTracker rpc_burn_;
};

}  // namespace e2e::net
