// The bbd daemon: a ChainWorld behind a StreamServer.
//
// One process hosts the whole chain of administrative domains — brokers,
// CAs, SLAs, both signalling engines — and exposes the BbdOp RPC surface
// (bbd_protocol.hpp) over authenticated stream connections. Client
// processes (bench --daemon modes, the soak test, bbd_client) drive the
// world remotely; because the world is seeded deterministically and every
// RarReply crosses the wire as its canonical encoding, a multi-process run
// produces byte-identical protocol output to the in-memory one.
//
// Threading (ISSUE 10): the daemon is a three-stage pipeline.
//   1. The StreamServer loop thread owns sockets and frames: it runs the
//      handshake stages inline, dispatches established frames to the RPC
//      worker pool, and is the only thread that calls send().
//   2. The RPC worker pool (Options::rpc_workers ShardEngine threads, no
//      e2e_bb_shard_* series — those stay attributable to admission)
//      unseals, decodes, executes and re-seals each request. A connection
//      is affine to one worker (conn id mod pool size), so its sealed
//      sequence numbers advance in FIFO order with no cross-thread
//      session use; completions return to the loop via
//      StreamServer::post().
//   3. The admin plane thread renders introspection documents.
// Locks are per-stage, not monolithic:
//   - world_mutex_   serializes world/engine/users mutation (the engines
//     are not internally synchronized), taken by workers per request and
//     by /tracez;
//   - world_ptr_mutex_ guards only the world_ shared_ptr itself, so
//     /statz and /healthz observe the world without queueing behind a
//     long-running RPC;
//   - conns_mutex_   guards the connection-state map (loop inserts and
//     erases; /statz reads the per-connection in-flight gauges).
// Per-connection mutable state is either loop-owned (handshake stage),
// worker-affine (grants, release_on_disconnect — the disconnect
// finalizer runs on the same worker queue, after every dispatched
// request), or atomic (in_flight, pipeline window, dead flag).
#pragma once

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bb/shard_engine.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "crypto/ca.hpp"
#include "kit/chain_world.hpp"
#include "net/bbd_protocol.hpp"
#include "net/stream_server.hpp"
#include "obs/admin.hpp"
#include "obs/window.hpp"
#include "sig/channel.hpp"

namespace e2e::net {

/// Deterministic mutual-auth material: daemon and clients derive the SAME
/// CA, certificates and keys from a shared seed, and each side pins the
/// other's exact certificate (sig::ChannelEndpoint::pinned_peer), so no
/// trust-store distribution is needed. The daemon's RPC credentials are
/// deliberately separate from any world's key material: kConfigure can
/// tear the world down and rebuild it without invalidating live channels.
struct ServiceIdentity {
  crypto::Certificate daemon_certificate;
  crypto::KeyPair daemon_keys;
  crypto::Certificate client_certificate;
  crypto::KeyPair client_keys;

  sig::ChannelEndpoint daemon_endpoint() const;
  sig::ChannelEndpoint client_endpoint() const;
};

ServiceIdentity make_service_identity(std::uint64_t seed);

inline constexpr std::uint64_t kDefaultAuthSeed = 20010801;

class BbdService {
 public:
  struct Options {
    std::vector<Endpoint> listen_on;
    /// Handshake credential seed; clients must use the same one.
    std::uint64_t auth_seed = kDefaultAuthSeed;
    /// Applied onto every world this daemon builds (startup and
    /// kConfigure): per-domain WAL + snapshot files live here.
    std::string durability_dir;
    /// Replay snapshot + WAL into each world build (restart path).
    bool recover = false;
    std::chrono::milliseconds idle_timeout{0};
    std::size_t max_write_queue_bytes = 4u << 20;
    bool force_poll = false;
    /// RPC worker pool size: decode/unseal + request execution run on
    /// these threads, not the event loop (docs/DAEMON.md "Pipelining").
    /// Each connection is affine to one worker; sizing past the number
    /// of distinct client connections buys nothing.
    std::size_t rpc_workers = 2;
    /// Optional plaintext admin/telemetry listeners (docs/DAEMON.md "Live
    /// operations"): a second StreamServer in raw mode serving the
    /// obs::AdminPlane HTTP routes. Empty (the default) disables the
    /// whole plane — no extra thread, no extra series, byte-identical
    /// outputs.
    std::vector<Endpoint> admin_on;
    /// When non-empty, a final metrics snapshot (registry JSON) is
    /// written here as the daemon drains, after the audit "shutdown"
    /// record is appended.
    std::string metrics_out;
    /// Base config of the startup world (durability fields above win).
    kit::ChainWorldConfig world;
  };

  explicit BbdService(Options options);
  ~BbdService();
  BbdService(const BbdService&) = delete;
  BbdService& operator=(const BbdService&) = delete;

  /// Build the startup world (recovering prior state when configured),
  /// bind the listeners, and run the event loop on a background thread.
  Status start();

  /// Block until the loop exits (stop, graceful shutdown, or kShutdown).
  void wait();
  void stop();
  void shutdown_gracefully();

  std::vector<Endpoint> bound_endpoints() const;
  /// Bound admin endpoints (empty when the admin plane is disabled).
  std::vector<Endpoint> admin_endpoints() const;
  const char* poller_name() const;

 private:
  struct ConnState {
    std::unique_ptr<sig::HandshakeResponder> handshake;
    /// The ClientHello was consumed and the ServerHello sent; the next
    /// frame must be the Finished message. (The responder's own done()
    /// only flips after Finished, so the connection tracks this stage.)
    bool hello_consumed = false;
    /// Loop thread only: set when the handshake completes. After this
    /// the session inside `handshake` is used exclusively by the
    /// connection's affine worker (the dispatch post orders the handoff).
    bool established = false;
    /// Worker-affine (kHello handler and the disconnect finalizer both
    /// run on the connection's worker).
    bool release_on_disconnect = false;
    /// (engine, RarReply bytes) of every end-to-end grant made over this
    /// connection and not yet released — released on disconnect when the
    /// connection asked for it (kHello flag bit 0). Worker-affine.
    std::vector<std::pair<std::string, Bytes>> grants;
    /// Negotiated pipeline window (kHello); 1 = the serial contract.
    std::atomic<std::uint64_t> window{1};
    /// Requests dispatched to the worker pool whose responses have not
    /// been queued yet. Loop increments at dispatch and decrements in
    /// the completion task; the drain gate and /statz read it.
    std::atomic<std::uint64_t> in_flight{0};
    /// Protocol error or close observed: queued worker tasks for this
    /// connection become no-ops.
    std::atomic<bool> dead{false};
  };
  using ConnPtr = std::shared_ptr<ConnState>;

  void on_open(StreamServer::ConnId id, const Endpoint& via);
  void on_frame(StreamServer::ConnId id, Bytes frame);
  void on_close(StreamServer::ConnId id, const Status& reason);

  /// Handshake-stage frames (ClientHello, Finished) — returns false when
  /// the connection was closed on error. Loop thread.
  bool on_handshake_frame(StreamServer::ConnId id, ConnState& conn,
                          const Bytes& frame);
  /// Worker thread: unseal, decode, execute, seal; posts the completion
  /// (or the close) back to the loop.
  void process_frame(StreamServer::ConnId id, const ConnPtr& conn,
                     Bytes frame);
  BbdResponse handle(StreamServer::ConnId id, ConnState& conn,
                     const BbdRequest& request);
  Status rebuild_world(kit::ChainWorldConfig config);
  void release_orphans(ConnState& conn);
  /// conns_ lookup under conns_mutex_.
  ConnPtr find_conn(StreamServer::ConnId id) const;
  std::size_t worker_for(StreamServer::ConnId id) const;

  /// Admin plane (options_.admin_on non-empty only). The admin server
  /// runs raw HTTP on its own thread; see the threading note above for
  /// which lock each provider takes.
  Status start_admin();
  void on_admin_data(StreamServer::ConnId id, BytesView data);
  std::string build_statz() const;
  std::string build_tracez() const;
  /// Runs on the loop thread after run() returns: retire the RPC worker
  /// pool (draining any queued work), stop the admin plane, append the
  /// audit "shutdown" record, write the final snapshot.
  void finalize_shutdown();

  Options options_;
  ServiceIdentity identity_;
  Rng handshake_rng_;
  std::unique_ptr<StreamServer> server_;
  std::thread loop_;
  std::map<std::string, kit::WorldUser> users_;

  /// Serializes every world/engine/users mutation (workers, kConfigure,
  /// /tracez). The signalling engines are not internally synchronized.
  mutable std::mutex world_mutex_;
  /// Guards only the world_ pointer (swap on kConfigure vs the admin
  /// thread's shared_ptr copy); never held across engine work.
  mutable std::mutex world_ptr_mutex_;
  std::shared_ptr<kit::ChainWorld> world_;

  /// Connection-state map: loop thread writes, /statz reads.
  mutable std::mutex conns_mutex_;
  std::map<StreamServer::ConnId, ConnPtr> conns_;

  std::atomic<bool> loop_live_{false};
  /// Set the moment a graceful drain is requested; /readyz flips to
  /// not-ready immediately, before the last in-flight request finishes.
  std::atomic<bool> draining_{false};

  std::unique_ptr<StreamServer> admin_server_;
  std::thread admin_loop_;
  std::unique_ptr<obs::AdminPlane> admin_plane_;
  /// Per-connection request bytes (admin loop thread only).
  std::map<StreamServer::ConnId, std::string> admin_buffers_;

  /// Wall-clock telemetry over the RPC stream: latency distribution and
  /// SLO burn over the last minute, published at admin snapshot refresh.
  /// Internally synchronized (workers record, admin thread reads).
  obs::WallClockFn wall_clock_;
  obs::WindowedHistogram rpc_latency_;
  obs::BurnRateTracker rpc_burn_;

  /// Declared last: its destructor drains all queued tasks, which may
  /// still touch the members above.
  std::unique_ptr<bb::ShardEngine> rpc_pool_;
};

}  // namespace e2e::net
