#include "net/stream_server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "obs/instruments.hpp"

namespace e2e::net {

namespace {

Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return make_error(ErrorCode::kInternal,
                      std::string("fcntl(O_NONBLOCK): ") +
                          std::strerror(errno));
  }
  return Status::ok_status();
}

void count_stream_bytes(const char* dir, std::size_t n) {
  obs::MetricsRegistry::global()
      .counter(obs::kNetStreamBytesTotal, {{"dir", dir}})
      .increment(n);
}

class PollPoller final : public Poller {
 public:
  Status add(int fd, bool want_write) override {
    want_write_[fd] = want_write;
    return Status::ok_status();
  }
  Status modify(int fd, bool want_write) override {
    want_write_[fd] = want_write;
    return Status::ok_status();
  }
  void remove(int fd) override { want_write_.erase(fd); }

  Result<std::vector<Event>> wait(int timeout_ms) override {
    std::vector<pollfd> pfds;
    pfds.reserve(want_write_.size());
    for (const auto& [fd, want_write] : want_write_) {
      pollfd p{};
      p.fd = fd;
      p.events = POLLIN;
      if (want_write) p.events |= POLLOUT;
      pfds.push_back(p);
    }
    const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) return std::vector<Event>{};
      return make_error(ErrorCode::kInternal,
                        std::string("poll(): ") + std::strerror(errno));
    }
    std::vector<Event> events;
    for (const pollfd& p : pfds) {
      if (p.revents == 0) continue;
      Event e;
      e.fd = p.fd;
      e.readable = (p.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
      e.writable = (p.revents & POLLOUT) != 0;
      e.hangup = (p.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
      events.push_back(e);
    }
    return events;
  }

  const char* name() const override { return "poll"; }

 private:
  std::map<int, bool> want_write_;
};

#ifdef __linux__
class EpollPoller final : public Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {}
  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  bool valid() const { return epfd_ >= 0; }

  Status add(int fd, bool want_write) override {
    return control(EPOLL_CTL_ADD, fd, want_write);
  }
  Status modify(int fd, bool want_write) override {
    return control(EPOLL_CTL_MOD, fd, want_write);
  }
  void remove(int fd) override {
    epoll_event ev{};
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev);
  }

  Result<std::vector<Event>> wait(int timeout_ms) override {
    epoll_event evs[64];
    const int ready = ::epoll_wait(epfd_, evs, 64, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) return std::vector<Event>{};
      return make_error(ErrorCode::kInternal,
                        std::string("epoll_wait(): ") +
                            std::strerror(errno));
    }
    std::vector<Event> events;
    events.reserve(static_cast<std::size_t>(ready));
    for (int i = 0; i < ready; ++i) {
      Event e;
      e.fd = evs[i].data.fd;
      e.readable =
          (evs[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0;
      e.writable = (evs[i].events & EPOLLOUT) != 0;
      e.hangup = (evs[i].events & (EPOLLHUP | EPOLLERR)) != 0;
      events.push_back(e);
    }
    return events;
  }

  const char* name() const override { return "epoll"; }

 private:
  Status control(int op, int fd, bool want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    if (::epoll_ctl(epfd_, op, fd, &ev) != 0) {
      return make_error(ErrorCode::kInternal,
                        std::string("epoll_ctl(): ") +
                            std::strerror(errno));
    }
    return Status::ok_status();
  }

  int epfd_ = -1;
};
#endif  // __linux__

}  // namespace

std::unique_ptr<Poller> Poller::create(bool force_poll) {
  const char* env = std::getenv("E2E_FORCE_POLL");
  if (env != nullptr && env[0] == '1') force_poll = true;
#ifdef __linux__
  if (!force_poll) {
    auto epoll = std::make_unique<EpollPoller>();
    if (epoll->valid()) return epoll;
  }
#endif
  (void)force_poll;
  return std::make_unique<PollPoller>();
}

StreamServer::StreamServer(Options options, Callbacks callbacks)
    : options_(std::move(options)), callbacks_(std::move(callbacks)) {}

StreamServer::~StreamServer() {
  for (auto& [id, conn] : connections_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  connections_.clear();
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

const char* StreamServer::poller_name() const {
  return poller_ != nullptr ? poller_->name() : "unstarted";
}

Status StreamServer::start() {
  if (options_.listen_on.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "no listen endpoints");
  }
  poller_ = Poller::create(options_.force_poll);
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return make_error(ErrorCode::kInternal,
                      std::string("pipe(): ") + std::strerror(errno));
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  if (auto s = set_nonblocking(wake_read_fd_); !s.ok()) return s;
  if (auto s = set_nonblocking(wake_write_fd_); !s.ok()) return s;
  if (auto s = poller_->add(wake_read_fd_, false); !s.ok()) return s;

  for (const Endpoint& endpoint : options_.listen_on) {
    auto listener = Listener::listen(endpoint);
    if (!listener.ok()) return listener.error();
    if (auto s = set_nonblocking(listener.value().fd()); !s.ok()) return s;
    if (auto s = poller_->add(listener.value().fd(), false); !s.ok()) {
      return s;
    }
    listener_by_fd_[listener.value().fd()] = listeners_.size();
    listeners_.push_back(std::move(listener.value()));
  }
  return Status::ok_status();
}

std::vector<Endpoint> StreamServer::bound_endpoints() const {
  std::vector<Endpoint> endpoints;
  endpoints.reserve(listeners_.size());
  for (const Listener& listener : listeners_) {
    endpoints.push_back(listener.local_endpoint());
  }
  return endpoints;
}

void StreamServer::stop() {
  stop_requested_.store(true, std::memory_order_release);
  if (wake_write_fd_ >= 0) {
    const char byte = 's';
    [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
}

void StreamServer::shutdown_gracefully() {
  drain_requested_.store(true, std::memory_order_release);
  if (wake_write_fd_ >= 0) {
    const char byte = 'd';
    [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
}

void StreamServer::post(std::function<void()> task) {
  {
    std::lock_guard lock(post_mutex_);
    posted_.push_back(std::move(task));
  }
  if (wake_write_fd_ >= 0) {
    const char byte = 'p';
    [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
}

void StreamServer::run_posted_tasks() {
  std::deque<std::function<void()>> tasks;
  {
    std::lock_guard lock(post_mutex_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
}

void StreamServer::require_loop_thread(const char* api) const {
  if (!loop_live_.load(std::memory_order_acquire)) return;
  if (loop_thread_.load(std::memory_order_relaxed) ==
      std::this_thread::get_id()) {
    return;
  }
  // Always-on (CI builds define NDEBUG, so assert() would never fire):
  // a foreign thread reaching the loop-owned write path is a data race
  // on every connection structure — abort before it corrupts anything.
  std::fprintf(stderr,
               "StreamServer::%s called off the loop thread; use post()\n",
               api);
  std::abort();
}

void StreamServer::drain_wake_pipe() {
  char sink[64];
  while (::read(wake_read_fd_, sink, sizeof(sink)) > 0) {
  }
}

int StreamServer::next_timeout_ms() const {
  if (options_.idle_timeout.count() <= 0) return -1;
  if (connections_.empty()) return -1;
  const auto now = std::chrono::steady_clock::now();
  auto soonest = options_.idle_timeout;
  for (const auto& [id, conn] : connections_) {
    const auto idle = std::chrono::duration_cast<std::chrono::milliseconds>(
        now - conn.last_activity);
    soonest = std::min(soonest, options_.idle_timeout - idle);
  }
  return static_cast<int>(std::max<std::int64_t>(soonest.count(), 0));
}

void StreamServer::sweep_idle() {
  if (options_.idle_timeout.count() <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  std::vector<ConnId> expired;
  for (const auto& [id, conn] : connections_) {
    if (now - conn.last_activity >= options_.idle_timeout) {
      expired.push_back(id);
    }
  }
  for (ConnId id : expired) {
    obs::MetricsRegistry::global()
        .counter(obs::kNetIdleClosesTotal)
        .increment();
    close_connection(
        id, make_error(ErrorCode::kTimeout, "idle timeout exceeded"));
  }
}

void StreamServer::run() {
  loop_thread_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  loop_live_.store(true, std::memory_order_release);
  while (true) {
    if (stop_requested_.load(std::memory_order_acquire)) break;
    // Posted tasks run before the drain sweep so completions handed over
    // by worker threads queue their responses (and clear the drain gate)
    // in the same iteration that evaluates it.
    run_posted_tasks();
    if (drain_requested_.load(std::memory_order_acquire) && !draining_) {
      draining_ = true;
      // Stop accepting; existing connections get to drain their writes
      // and their in-flight worker requests (Options::drain_gate).
      for (Listener& listener : listeners_) {
        poller_->remove(listener.fd());
        listener.close();
      }
      listener_by_fd_.clear();
    }
    if (draining_) {
      sweep_draining();
      if (connections_.empty()) break;
    }

    auto events = poller_->wait(next_timeout_ms());
    if (!events.ok()) break;
    for (const Poller::Event& event : events.value()) {
      if (event.fd == wake_read_fd_) {
        drain_wake_pipe();
        continue;
      }
      if (listener_by_fd_.contains(event.fd)) {
        if (event.readable) accept_ready(event.fd);
        continue;
      }
      const auto it = conn_by_fd_.find(event.fd);
      if (it == conn_by_fd_.end()) continue;
      const ConnId id = it->second;
      if (event.writable) {
        if (!flush_writes(id)) continue;
      }
      if (event.readable) {
        read_ready(id);
      } else if (event.hangup) {
        close_connection(
            id, make_error(ErrorCode::kUnavailable, "peer hung up"));
      }
    }
    sweep_idle();
  }
  loop_live_.store(false, std::memory_order_release);

  // Loop exit: close whatever is left (stop(), or a poller failure).
  std::vector<ConnId> remaining;
  remaining.reserve(connections_.size());
  for (const auto& [id, conn] : connections_) remaining.push_back(id);
  for (ConnId id : remaining) close_connection(id, Status::ok_status());
  for (Listener& listener : listeners_) {
    if (listener.valid()) {
      poller_->remove(listener.fd());
      listener.close();
    }
  }
  listener_by_fd_.clear();
}

void StreamServer::sweep_draining() {
  std::vector<ConnId> idle_now;
  for (auto& [id, conn] : connections_) {
    if (options_.drain_gate && !options_.drain_gate(id)) {
      // In-flight application work: the response is not even queued yet,
      // so this connection must neither close now nor arm
      // closing_after_flush (the write queue may transiently drain while
      // a worker still owns a request). Re-checked next iteration.
      continue;
    }
    if (conn.write_queue.empty()) {
      idle_now.push_back(id);
    } else {
      conn.closing_after_flush = true;
    }
  }
  for (ConnId id : idle_now) close_connection(id, Status::ok_status());
}

void StreamServer::accept_ready(int listener_fd) {
  const std::size_t index = listener_by_fd_.at(listener_fd);
  Listener& listener = listeners_[index];
  auto& registry = obs::MetricsRegistry::global();
  while (true) {
    const int fd = ::accept(listener_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept failure; the listener stays armed
    }
    if (!set_nonblocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    if (listener.local_endpoint().kind == Endpoint::Kind::kTcp) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    if (!poller_->add(fd, false).ok()) {
      ::close(fd);
      continue;
    }
    const ConnId id = next_conn_id_++;
    Connection conn;
    conn.fd = fd;
    conn.via = listener.local_endpoint();
    conn.last_activity = std::chrono::steady_clock::now();
    conn.stats = std::make_shared<ConnCounters>();
    conn.stats->transport = listener.local_endpoint().transport_label();
    {
      std::lock_guard lock(stats_mutex_);
      stats_[id] = conn.stats;
    }
    connections_.emplace(id, std::move(conn));
    conn_by_fd_[fd] = id;
    if (!options_.raw_stream) {
      registry
          .counter(
              obs::kNetConnsAcceptedTotal,
              {{"transport", listener.local_endpoint().transport_label()}})
          .increment();
      registry.gauge(obs::kNetConnsActive)
          .set(static_cast<double>(connections_.size()));
    }
    if (callbacks_.on_open) callbacks_.on_open(id, listener.local_endpoint());
  }
}

void StreamServer::read_ready(ConnId id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  conn.last_activity = std::chrono::steady_clock::now();
  while (true) {
    std::uint8_t chunk[16384];
    const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_connection(id, make_error(ErrorCode::kUnavailable,
                                      std::string("recv(): ") +
                                          std::strerror(errno)));
      return;
    }
    if (n == 0) {
      close_connection(id,
                       !options_.raw_stream && conn.decoder.mid_frame()
                           ? Status(make_error(ErrorCode::kUnavailable,
                                               "peer disconnected "
                                               "mid-message"))
                           : Status::ok_status());
      return;
    }
    count_stream_bytes("rx", static_cast<std::size_t>(n));
    conn.stats->bytes_rx.fetch_add(static_cast<std::uint64_t>(n),
                                   std::memory_order_relaxed);
    if (options_.raw_stream) {
      if (callbacks_.on_data) {
        callbacks_.on_data(id,
                           BytesView(chunk, static_cast<std::size_t>(n)));
      }
      // The callback may have closed the connection (bad request).
      if (!connections_.contains(id)) return;
      continue;
    }
    auto fed = conn.decoder.feed(BytesView(chunk, static_cast<std::size_t>(n)));
    if (!fed.ok()) {
      close_connection(id, fed);
      return;
    }
    while (auto frame = conn.decoder.next()) {
      obs::MetricsRegistry::global()
          .counter(obs::kNetFramesTotal, {{"dir", "rx"}})
          .increment();
      conn.stats->frames_rx.fetch_add(1, std::memory_order_relaxed);
      if (callbacks_.on_frame) callbacks_.on_frame(id, std::move(*frame));
      // The callback may have closed the connection (protocol error).
      if (!connections_.contains(id)) return;
    }
  }
}

bool StreamServer::flush_writes(ConnId id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return false;
  Connection& conn = it->second;
  while (!conn.write_queue.empty()) {
    const Bytes& front = conn.write_queue.front();
    const std::size_t remaining = front.size() - conn.front_offset;
    const ssize_t n = ::send(conn.fd, front.data() + conn.front_offset,
                             remaining, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn.want_write) {
          conn.want_write = true;
          (void)poller_->modify(conn.fd, true);
        }
        return true;
      }
      if (errno == EINTR) continue;
      close_connection(id, make_error(ErrorCode::kUnavailable,
                                      std::string("send(): ") +
                                          std::strerror(errno)));
      return false;
    }
    count_stream_bytes("tx", static_cast<std::size_t>(n));
    conn.stats->bytes_tx.fetch_add(static_cast<std::uint64_t>(n),
                                   std::memory_order_relaxed);
    conn.front_offset += static_cast<std::size_t>(n);
    conn.queued_bytes -= static_cast<std::size_t>(n);
    total_queued_bytes_ -= static_cast<std::size_t>(n);
    conn.stats->queued_bytes.store(conn.queued_bytes,
                                   std::memory_order_relaxed);
    if (conn.front_offset == front.size()) {
      conn.write_queue.pop_front();
      conn.front_offset = 0;
    }
  }
  if (!options_.raw_stream) publish_write_queue_gauge();
  if (conn.want_write) {
    conn.want_write = false;
    (void)poller_->modify(conn.fd, false);
  }
  if (conn.closing_after_flush) {
    close_connection(id, Status::ok_status());
    return false;
  }
  return true;
}

Status StreamServer::send(ConnId id, BytesView payload) {
  require_loop_thread("send");
  auto it = connections_.find(id);
  if (it == connections_.end()) {
    return make_error(ErrorCode::kNotFound,
                      "unknown connection " + std::to_string(id));
  }
  if (payload.size() > kMaxFramePayload) {
    return make_error(ErrorCode::kInvalidArgument,
                      "payload exceeds frame cap",
                      std::to_string(payload.size()));
  }
  obs::MetricsRegistry::global()
      .counter(obs::kNetFramesTotal, {{"dir", "tx"}})
      .increment();
  it->second.stats->frames_tx.fetch_add(1, std::memory_order_relaxed);
  return enqueue_bytes(id, encode_frame(payload));
}

Status StreamServer::send_raw(ConnId id, BytesView payload) {
  require_loop_thread("send_raw");
  if (connections_.find(id) == connections_.end()) {
    return make_error(ErrorCode::kNotFound,
                      "unknown connection " + std::to_string(id));
  }
  return enqueue_bytes(id, Bytes(payload.begin(), payload.end()));
}

Status StreamServer::enqueue_bytes(ConnId id, Bytes wire_bytes) {
  Connection& conn = connections_.at(id);
  const bool was_empty = conn.write_queue.empty();
  conn.queued_bytes += wire_bytes.size();
  total_queued_bytes_ += wire_bytes.size();
  conn.stats->queued_bytes.store(conn.queued_bytes,
                                 std::memory_order_relaxed);
  conn.write_queue.push_back(std::move(wire_bytes));
  if (!options_.raw_stream) publish_write_queue_gauge();
  if (conn.queued_bytes > options_.max_write_queue_bytes) {
    // Slow consumer: shedding beats unbounded buffering.
    obs::MetricsRegistry::global()
        .counter(obs::kNetBackpressureStallsTotal)
        .increment();
    close_connection(id, make_error(ErrorCode::kUnavailable,
                                    "write queue bound exceeded"));
    return make_error(ErrorCode::kUnavailable, "write queue bound exceeded");
  }
  if (was_empty) {
    if (!flush_writes(id)) {
      return make_error(ErrorCode::kUnavailable, "connection closed");
    }
    auto again = connections_.find(id);
    if (again != connections_.end() && again->second.want_write) {
      obs::MetricsRegistry::global()
          .counter(obs::kNetBackpressureStallsTotal)
          .increment();
    }
  }
  return Status::ok_status();
}

void StreamServer::close_after_flush(ConnId id) {
  require_loop_thread("close_after_flush");
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  if (it->second.write_queue.empty()) {
    close_connection(id, Status::ok_status());
  } else {
    it->second.closing_after_flush = true;
  }
}

void StreamServer::close_connection(ConnId id, const Status& reason) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  const int fd = it->second.fd;
  total_queued_bytes_ -= it->second.queued_bytes;
  poller_->remove(fd);
  ::close(fd);
  conn_by_fd_.erase(fd);
  connections_.erase(it);
  {
    std::lock_guard lock(stats_mutex_);
    stats_.erase(id);
  }
  if (!options_.raw_stream) {
    obs::MetricsRegistry::global()
        .gauge(obs::kNetConnsActive)
        .set(static_cast<double>(connections_.size()));
    publish_write_queue_gauge();
  }
  if (callbacks_.on_close) callbacks_.on_close(id, reason);
}

void StreamServer::publish_write_queue_gauge() {
  obs::MetricsRegistry::global()
      .gauge(obs::kNetWriteQueueBytes)
      .set(static_cast<double>(total_queued_bytes_));
}

std::vector<StreamServer::ConnectionStats> StreamServer::connection_stats()
    const {
  std::vector<ConnectionStats> out;
  std::lock_guard lock(stats_mutex_);
  out.reserve(stats_.size());
  for (const auto& [id, counters] : stats_) {
    ConnectionStats s;
    s.id = id;
    s.transport = counters->transport;
    s.bytes_rx = counters->bytes_rx.load(std::memory_order_relaxed);
    s.bytes_tx = counters->bytes_tx.load(std::memory_order_relaxed);
    s.frames_rx = counters->frames_rx.load(std::memory_order_relaxed);
    s.frames_tx = counters->frames_tx.load(std::memory_order_relaxed);
    s.queued_bytes = counters->queued_bytes.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace e2e::net
