// Length-prefixed framing for the stream transports.
//
// A TCP or UNIX-domain socket is a byte stream: one write() can arrive
// torn across many read()s, and many writes can coalesce into one. Every
// protocol message the daemon speaks (handshake messages, sealed records,
// RPC requests) is therefore wrapped in the simplest possible frame:
//
//   +----------------+----------------------+
//   | length (u32be) | payload (length bytes)|
//   +----------------+----------------------+
//
// The length covers the payload only. The cap is sig::kMaxTransportPayload
// (1 MiB) plus a small envelope headroom: the hub wraps application
// payloads in a routing envelope (from/to/trace TLVs), so a message at
// exactly the transport cap must still fit one frame. A length above the
// cap is a framing error: the
// decoder latches kBadMessage and the connection must be dropped, because
// a desynchronized stream can never recover (the "length" being parsed is
// protocol bytes misread as a header).
//
// FrameDecoder is incremental: feed() accepts whatever the socket
// produced — a single byte, half a frame, three frames and a torn fourth —
// and next() hands back complete payloads in order. It never blocks and
// never copies more than once. tests/net_framing_test.cpp drives it with
// torn reads, coalesced writes and a seeded boundary fuzzer.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "sig/transport.hpp"

namespace e2e::net {

/// Bytes of the length prefix.
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Headroom for the hub routing envelope (party names, trace context,
/// TLV framing) around a transport payload at the cap.
inline constexpr std::size_t kFrameEnvelopeHeadroom = 4096;

/// Largest payload a frame may carry: the transport cap (shared with the
/// in-memory fabric) plus the envelope headroom.
inline constexpr std::size_t kMaxFramePayload =
    sig::kMaxTransportPayload + kFrameEnvelopeHeadroom;

/// Wrap `payload` in a length-prefixed frame. Precondition: payload fits
/// the cap (callers go through Status-returning send paths that check).
Bytes encode_frame(BytesView payload);

/// Incremental frame parser over an arbitrary chunking of the stream.
class FrameDecoder {
 public:
  /// Consume one chunk as read off the socket. Returns kBadMessage when
  /// the stream announces a payload above the cap; after that the decoder
  /// is poisoned (the stream cannot be resynchronized) and every further
  /// feed() fails the same way.
  Status feed(BytesView chunk);

  /// Pop the next complete payload, arrival order; nullopt when no full
  /// frame is buffered.
  std::optional<Bytes> next();

  /// True when a partial frame (header or payload) is buffered — a peer
  /// that disconnects now tore a message in half.
  bool mid_frame() const { return !buffer_.empty(); }

  bool poisoned() const { return !poison_.ok(); }

  /// Complete frames decoded over the decoder's lifetime.
  std::uint64_t frames_decoded() const { return frames_decoded_; }

 private:
  Bytes buffer_;             // unparsed tail: partial header or payload
  std::deque<Bytes> ready_;  // complete payloads, arrival order
  Status poison_;
  std::uint64_t frames_decoded_ = 0;
};

}  // namespace e2e::net
