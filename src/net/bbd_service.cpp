#include "net/bbd_service.hpp"

#include <chrono>
#include <fstream>
#include <utility>

#include "obs/audit.hpp"
#include "obs/instruments.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "sig/message.hpp"

namespace e2e::net {

namespace {

/// The world's virtual clock never moves past kWorldValidity's start in
/// the handshake: service channels are established "at" virtual time zero.
constexpr SimTime kHandshakeTime = 0;

/// Request heads larger than this are not scrape traffic; drop them.
constexpr std::size_t kMaxAdminRequestBytes = 16384;

/// Wall-clock RPC latency buckets (us): daemon round trips are crypto +
/// admission, tens of us to tens of ms.
std::vector<double> rpc_latency_buckets_us() {
  return {50, 100, 200, 500, 1000, 2000, 5000, 10000, 20000, 50000, 100000};
}

obs::BurnRateSpec rpc_burn_spec() {
  obs::BurnRateSpec spec;
  spec.objective = "bbd.rpc";
  spec.budget_error_rate = 0.01;
  spec.window = std::chrono::seconds(60);
  spec.alert_threshold = 10.0;
  return spec;
}

}  // namespace

sig::ChannelEndpoint ServiceIdentity::daemon_endpoint() const {
  sig::ChannelEndpoint endpoint;
  endpoint.certificate = daemon_certificate;
  endpoint.private_key = daemon_keys.priv;
  endpoint.pinned_peer = client_certificate;
  return endpoint;
}

sig::ChannelEndpoint ServiceIdentity::client_endpoint() const {
  sig::ChannelEndpoint endpoint;
  endpoint.certificate = client_certificate;
  endpoint.private_key = client_keys.priv;
  endpoint.pinned_peer = daemon_certificate;
  return endpoint;
}

ServiceIdentity make_service_identity(std::uint64_t seed) {
  // Derivation order is part of the contract: both processes must draw
  // from the RNG in exactly this sequence to end up with the same bytes.
  Rng rng(seed);
  crypto::CertificateAuthority ca(
      crypto::DistinguishedName::make("bbd-ca", "bbd"), rng,
      kit::kWorldValidity, 256);
  ServiceIdentity identity;
  identity.daemon_keys = crypto::generate_keypair(rng, 256);
  identity.daemon_certificate =
      ca.issue(crypto::DistinguishedName::make("bbd-server", "bbd"),
               identity.daemon_keys.pub, kit::kWorldValidity);
  identity.client_keys = crypto::generate_keypair(rng, 256);
  identity.client_certificate =
      ca.issue(crypto::DistinguishedName::make("bbd-client", "bbd"),
               identity.client_keys.pub, kit::kWorldValidity);
  return identity;
}

BbdService::BbdService(Options options)
    : options_(std::move(options)),
      identity_(make_service_identity(options_.auth_seed)),
      // Handshake nonces only; never touches any world's RNG stream.
      handshake_rng_(options_.auth_seed ^ 0x6262642d64616d6eull),
      wall_clock_(obs::steady_wall_clock()),
      rpc_latency_(std::chrono::seconds(60), 12, rpc_latency_buckets_us()),
      rpc_burn_(rpc_burn_spec()) {}

BbdService::~BbdService() {
  stop();
  wait();
}

Status BbdService::start() {
  kit::ChainWorldConfig config = options_.world;
  if (auto built = rebuild_world(std::move(config)); !built.ok()) {
    return built;
  }
  StreamServer::Options server_options;
  server_options.listen_on = options_.listen_on;
  server_options.idle_timeout = options_.idle_timeout;
  server_options.max_write_queue_bytes = options_.max_write_queue_bytes;
  server_options.force_poll = options_.force_poll;
  StreamServer::Callbacks callbacks;
  callbacks.on_open = [this](StreamServer::ConnId id, const Endpoint& via) {
    on_open(id, via);
  };
  callbacks.on_frame = [this](StreamServer::ConnId id, Bytes frame) {
    on_frame(id, std::move(frame));
  };
  callbacks.on_close = [this](StreamServer::ConnId id, const Status& reason) {
    on_close(id, reason);
  };
  server_ = std::make_unique<StreamServer>(std::move(server_options),
                                           std::move(callbacks));
  if (auto started = server_->start(); !started.ok()) return started;
  if (!options_.admin_on.empty()) {
    if (auto admin = start_admin(); !admin.ok()) return admin;
  }
  loop_live_.store(true, std::memory_order_release);
  loop_ = std::thread([this] {
    server_->run();
    finalize_shutdown();
  });
  return Status::ok_status();
}

Status BbdService::start_admin() {
  auto& registry = obs::MetricsRegistry::global();
  obs::AdminPlane::Providers providers;
  providers.health = [this] {
    obs::AdminPlane::Health health;
    health.live = loop_live_.load(std::memory_order_acquire);
    std::lock_guard lock(world_mutex_);
    health.ready = health.live && world_ != nullptr;
    if (!health.ready) {
      health.detail = !health.live ? "rpc loop not running"
                                   : "no world configured";
    }
    return health;
  };
  providers.statz_json = [this] { return build_statz(); };
  providers.tracez_json = [this] { return build_tracez(); };
  providers.refresh = [this, &registry](std::uint64_t now_ms) {
    rpc_burn_.publish(registry, now_ms);
    const obs::Histogram::Snapshot window = rpc_latency_.snapshot(now_ms);
    if (window.count == 0) return;
    const std::pair<const char*, double> quantiles[] = {
        {"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}};
    for (const auto& [label, q] : quantiles) {
      registry
          .gauge(obs::kSloLatencyQuantileUs,
                 {{"objective", "bbd.rpc.wall"}, {"quantile", label}})
          .set(obs::estimate_quantile(window, q));
    }
  };
  admin_plane_ = std::make_unique<obs::AdminPlane>(registry,
                                                   std::move(providers));

  StreamServer::Options admin_options;
  admin_options.listen_on = options_.admin_on;
  admin_options.raw_stream = true;
  admin_options.force_poll = options_.force_poll;
  // A scraper that connects and never finishes its request is shed.
  admin_options.idle_timeout = std::chrono::seconds(10);
  StreamServer::Callbacks admin_callbacks;
  admin_callbacks.on_open = [this](StreamServer::ConnId id,
                                   const Endpoint& via) {
    (void)via;
    admin_buffers_[id];
  };
  admin_callbacks.on_data = [this](StreamServer::ConnId id, BytesView data) {
    on_admin_data(id, data);
  };
  admin_callbacks.on_close = [this](StreamServer::ConnId id,
                                    const Status& reason) {
    (void)reason;
    admin_buffers_.erase(id);
  };
  admin_server_ = std::make_unique<StreamServer>(std::move(admin_options),
                                                 std::move(admin_callbacks));
  if (auto started = admin_server_->start(); !started.ok()) return started;
  admin_loop_ = std::thread([this] { admin_server_->run(); });
  return Status::ok_status();
}

void BbdService::on_admin_data(StreamServer::ConnId id, BytesView data) {
  auto it = admin_buffers_.find(id);
  if (it == admin_buffers_.end()) return;
  std::string& buffer = it->second;
  buffer.append(reinterpret_cast<const char*>(data.data()), data.size());
  if (!obs::http_head_complete(buffer)) {
    if (buffer.size() > kMaxAdminRequestBytes) {
      obs::AdminResponse overflow;
      overflow.status = 400;
      overflow.body = "request head too large\n";
      const std::string wire = obs::render_http_response(overflow);
      (void)admin_server_->send_raw(
          id, BytesView(reinterpret_cast<const std::uint8_t*>(wire.data()),
                        wire.size()));
      admin_server_->close_after_flush(id);
    }
    return;
  }
  const obs::AdminResponse response =
      admin_plane_->handle(obs::parse_http_request(buffer));
  const std::string wire = obs::render_http_response(response);
  (void)admin_server_->send_raw(
      id, BytesView(reinterpret_cast<const std::uint8_t*>(wire.data()),
                    wire.size()));
  admin_server_->close_after_flush(id);
}

std::string BbdService::build_statz() const {
  std::string out = "{\"connections\":[";
  std::uint64_t conn_count = 0;
  if (server_ != nullptr) {
    bool first = true;
    for (const StreamServer::ConnectionStats& conn :
         server_->connection_stats()) {
      if (!first) out += ",";
      first = false;
      ++conn_count;
      out += "{\"id\":" + std::to_string(conn.id);
      out += ",\"transport\":\"" + obs::chain_json_escape(conn.transport) +
             "\"";
      out += ",\"bytes_rx\":" + std::to_string(conn.bytes_rx);
      out += ",\"bytes_tx\":" + std::to_string(conn.bytes_tx);
      out += ",\"frames_rx\":" + std::to_string(conn.frames_rx);
      out += ",\"frames_tx\":" + std::to_string(conn.frames_tx);
      out += ",\"queued_bytes\":" + std::to_string(conn.queued_bytes);
      out += "}";
    }
  }
  out += "],\"shards\":[";
  std::uint64_t depth_total = 0;
  std::uint64_t tasks_total = 0;
  std::uint64_t busy_total = 0;
  {
    std::lock_guard lock(world_mutex_);
    if (world_ != nullptr) {
      bool first_domain = true;
      for (std::size_t i = 0; i < world_->names().size(); ++i) {
        const bb::ShardEngine* engine = world_->broker(i).shard_engine();
        if (engine == nullptr) continue;
        if (!first_domain) out += ",";
        first_domain = false;
        out += "{\"domain\":\"" +
               obs::chain_json_escape(world_->names()[i]) + "\"";
        out += ",\"queue_depth\":" + std::to_string(engine->queue_depth());
        out += ",\"queue_depth_highwater\":" +
               std::to_string(engine->queue_depth_highwater());
        out += ",\"workers\":[";
        const auto workers = engine->stats();
        for (std::size_t w = 0; w < workers.size(); ++w) {
          if (w > 0) out += ",";
          out += "{\"worker\":" + std::to_string(w);
          out += ",\"queue_depth\":" +
                 std::to_string(workers[w].queue_depth);
          out += ",\"tasks_total\":" +
                 std::to_string(workers[w].tasks_total);
          out += ",\"busy_us_total\":" +
                 std::to_string(workers[w].busy_us_total);
          out += "}";
          depth_total += workers[w].queue_depth;
          tasks_total += workers[w].tasks_total;
          busy_total += workers[w].busy_us_total;
        }
        out += "]}";
      }
    }
  }
  out += "],\"totals\":{";
  out += "\"connections\":" + std::to_string(conn_count);
  out += ",\"shard_queue_depth\":" + std::to_string(depth_total);
  out += ",\"shard_tasks\":" + std::to_string(tasks_total);
  out += ",\"shard_busy_us\":" + std::to_string(busy_total);
  out += "}}";
  return out;
}

std::string BbdService::build_tracez() const {
  std::lock_guard lock(world_mutex_);
  if (world_ == nullptr) return "{\"traces\":[]}";
  obs::SpanCollector collector;
  world_->collect(collector);
  return obs::tracez_json(collector, 16);
}

void BbdService::finalize_shutdown() {
  loop_live_.store(false, std::memory_order_release);
  if (admin_server_ != nullptr) {
    admin_server_->stop();
    if (admin_loop_.joinable()) admin_loop_.join();
  }
  // Audit first, snapshot second: the snapshot then covers the shutdown
  // record's own counter bump and is truly final.
  obs::AuditLog::global().append(
      "bbd", obs::audit_kind::kShutdown,
      {{"reason", "drain"},
       {"metrics_out",
        options_.metrics_out.empty() ? "-" : options_.metrics_out}});
  if (!options_.metrics_out.empty()) {
    std::ofstream file(options_.metrics_out,
                       std::ios::binary | std::ios::trunc);
    if (file.is_open()) {
      file << obs::MetricsRegistry::global().to_json() << "\n";
    }
  }
}

void BbdService::wait() {
  if (loop_.joinable()) loop_.join();
}

void BbdService::stop() {
  if (server_ != nullptr) server_->stop();
}

void BbdService::shutdown_gracefully() {
  if (server_ != nullptr) server_->shutdown_gracefully();
}

std::vector<Endpoint> BbdService::bound_endpoints() const {
  return server_ != nullptr ? server_->bound_endpoints()
                            : std::vector<Endpoint>{};
}

std::vector<Endpoint> BbdService::admin_endpoints() const {
  return admin_server_ != nullptr ? admin_server_->bound_endpoints()
                                  : std::vector<Endpoint>{};
}

const char* BbdService::poller_name() const {
  return server_ != nullptr ? server_->poller_name() : "unstarted";
}

// Callers synchronize: start() runs before any thread exists, and the
// kConfigure path already holds world_mutex_ (taken around handle()).
Status BbdService::rebuild_world(kit::ChainWorldConfig config) {
  config.durability_dir = options_.durability_dir;
  config.recover_on_open = options_.recover && !options_.durability_dir.empty();
  // A kConfigure with no explicit thread count keeps the daemon's
  // configured admission engine instead of silently dropping to zero.
  if (config.admission_threads == 0) {
    config.admission_threads = options_.world.admission_threads;
  }
  users_.clear();
  // The old world must release its WALs before the new one reopens them.
  world_.reset();
  try {
    world_ = std::make_unique<kit::ChainWorld>(config);
  } catch (const std::exception& e) {
    return make_error(ErrorCode::kInternal, "world construction failed",
                      e.what());
  }
  return Status::ok_status();
}

void BbdService::on_open(StreamServer::ConnId id, const Endpoint& via) {
  (void)via;
  ConnState conn;
  conn.handshake = std::make_unique<sig::HandshakeResponder>(
      identity_.daemon_endpoint(), kHandshakeTime, handshake_rng_);
  conns_.emplace(id, std::move(conn));
}

void BbdService::on_close(StreamServer::ConnId id, const Status& reason) {
  (void)reason;
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  if (it->second.release_on_disconnect) {
    std::lock_guard lock(world_mutex_);
    release_orphans(it->second);
  }
  conns_.erase(it);
}

void BbdService::release_orphans(ConnState& conn) {
  if (world_ == nullptr) return;
  for (const auto& [engine, reply_bytes] : conn.grants) {
    auto reply = sig::RarReply::decode(reply_bytes);
    if (!reply.ok()) continue;
    if (engine == "source") {
      (void)world_->source_engine().release_end_to_end(reply.value());
    } else {
      (void)world_->engine().release_end_to_end(reply.value());
    }
  }
  conn.grants.clear();
}

bool BbdService::on_handshake_frame(StreamServer::ConnId id, ConnState& conn,
                                    const Bytes& frame) {
  if (conn.handshake == nullptr) {
    server_->close_after_flush(id);
    return false;
  }
  if (!conn.hello_consumed) {
    // First frame must be the ClientHello.
    auto server_hello = conn.handshake->on_client_hello(frame);
    if (!server_hello.ok()) {
      server_->close_after_flush(id);
      return false;
    }
    conn.hello_consumed = true;
    (void)server_->send(id, server_hello.value());
    return true;
  }
  // Second frame must be the Finished message.
  auto finished = conn.handshake->on_finished(frame);
  if (!finished.ok()) {
    server_->close_after_flush(id);
    return false;
  }
  conn.established = true;
  return true;
}

void BbdService::on_frame(StreamServer::ConnId id, Bytes frame) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  ConnState& conn = it->second;
  if (!conn.established) {
    (void)on_handshake_frame(id, conn, frame);
    return;
  }
  // Established: every frame is a sealed record carrying one request.
  auto record = sig::decode_record(frame);
  if (!record.ok()) {
    server_->close_after_flush(id);
    return;
  }
  auto payload = conn.handshake->session().open(record.value());
  if (!payload.ok()) {
    server_->close_after_flush(id);
    return;
  }
  auto request = BbdRequest::decode(payload.value());
  if (!request.ok()) {
    send_response(id, conn, BbdResponse::failure(0, request.error()));
    return;
  }
  const auto rpc_start = std::chrono::steady_clock::now();
  BbdResponse response;
  {
    // The admin thread reads world_/users_ under the same mutex; RPCs
    // stay serialized with introspection renders, nothing else.
    std::lock_guard lock(world_mutex_);
    response = handle(id, conn, request.value());
  }
  if (admin_plane_ != nullptr) {
    const auto elapsed_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - rpc_start)
            .count();
    const std::uint64_t now_ms = wall_clock_();
    rpc_latency_.observe(now_ms, static_cast<double>(elapsed_us));
    rpc_burn_.record(now_ms, !response.ok);
  }
  send_response(id, conn, response);
  if (request.value().op == BbdOp::kShutdown && response.ok) {
    server_->shutdown_gracefully();
  }
}

void BbdService::send_response(StreamServer::ConnId id, ConnState& conn,
                               const BbdResponse& response) {
  sig::Record record = conn.handshake->session().seal(response.encode());
  (void)server_->send(id, sig::encode_record(record));
}

BbdResponse BbdService::handle(StreamServer::ConnId id, ConnState& conn,
                               const BbdRequest& req) {
  (void)id;
  if (world_ == nullptr && req.op != BbdOp::kPing &&
      req.op != BbdOp::kHello && req.op != BbdOp::kConfigure &&
      req.op != BbdOp::kShutdown) {
    return BbdResponse::failure(
        req.id, Error{ErrorCode::kUnavailable, "no world configured", "bbd"});
  }
  switch (req.op) {
    case BbdOp::kPing: {
      BbdResponse res = BbdResponse::success(req.id);
      res.stra = poller_name();
      return res;
    }
    case BbdOp::kHello: {
      conn.release_on_disconnect = (req.flags & 1u) != 0;
      return BbdResponse::success(req.id);
    }
    case BbdOp::kConfigure: {
      kit::ChainWorldConfig config;
      if (req.u64a != 0) config.domains = req.u64a;
      if (req.u64b != 0) config.seed = req.u64b;
      if (req.u64c != 0) {
        config.inter_domain_latency = static_cast<SimDuration>(req.u64c);
      }
      if (req.f64a > 0) config.domain_capacity = req.f64a;
      if (req.f64b > 0) config.sla_rate = req.f64b;
      if (auto built = rebuild_world(std::move(config)); !built.ok()) {
        return BbdResponse::failure(req.id, built.error());
      }
      BbdResponse res = BbdResponse::success(req.id);
      res.u64a = options_.world.domains;
      return res;
    }
    case BbdOp::kSetLatency: {
      const auto& names = world_->names();
      if (req.u64a >= names.size() || req.u64b >= names.size()) {
        return BbdResponse::failure(
            req.id, Error{ErrorCode::kInvalidArgument,
                          "domain index out of range", "bbd"});
      }
      world_->fabric().set_latency(names[req.u64a], names[req.u64b],
                                   static_cast<SimDuration>(req.u64c));
      return BbdResponse::success(req.id);
    }
    case BbdOp::kSetProcessingDelay: {
      world_->fabric().set_processing_delay(
          static_cast<SimDuration>(req.u64a));
      return BbdResponse::success(req.id);
    }
    case BbdOp::kMakeUser: {
      if (req.u64a >= world_->names().size()) {
        return BbdResponse::failure(
            req.id, Error{ErrorCode::kInvalidArgument,
                          "home domain index out of range", "bbd"});
      }
      // Re-minting draws from the world RNG; reject duplicates so retried
      // requests cannot skew byte-identity.
      if (users_.count(req.stra) != 0) {
        return BbdResponse::failure(
            req.id, Error{ErrorCode::kConflict, "user already exists",
                          req.stra});
      }
      kit::WorldUser user =
          world_->make_user(req.stra, req.u64a, (req.flags & 1u) != 0,
                            (req.flags & 2u) != 0);
      BbdResponse res = BbdResponse::success(req.id);
      res.stra = user.dn.to_string();
      users_.emplace(req.stra, std::move(user));
      return res;
    }
    case BbdOp::kReserve:
    case BbdOp::kSourceReserve: {
      auto user_it = users_.find(req.stra);
      if (user_it == users_.end()) {
        return BbdResponse::failure(
            req.id,
            Error{ErrorCode::kNotFound, "unknown user", req.stra});
      }
      const kit::WorldUser& user = user_it->second;
      bb::ResSpec spec = world_->spec(
          user, req.f64a,
          TimeInterval{static_cast<SimTime>(req.u64a),
                       static_cast<SimTime>(req.u64b)},
          req.u64c, req.u64d);
      spec.is_tunnel = (req.flags & 1u) != 0;
      const SimTime at = static_cast<SimTime>(req.f64b);
      if (req.op == BbdOp::kReserve) {
        auto msg = world_->engine().build_user_request(user.credentials(),
                                                       spec, at);
        if (!msg.ok()) return BbdResponse::failure(req.id, msg.error());
        auto outcome = world_->engine().reserve(msg.value(), at);
        if (!outcome.ok()) {
          return BbdResponse::failure(req.id, outcome.error());
        }
        BbdResponse res = BbdResponse::success(req.id);
        res.bytes = outcome.value().reply.encode();
        res.u64a = static_cast<std::uint64_t>(outcome.value().latency);
        res.u64b = outcome.value().messages;
        if (outcome.value().reply.granted) {
          conn.grants.emplace_back("hopbyhop", res.bytes);
        }
        return res;
      }
      const auto mode = (req.flags & 2u) != 0
                            ? sig::SourceDomainEngine::Mode::kParallel
                            : sig::SourceDomainEngine::Mode::kSequential;
      auto outcome = world_->source_engine().reserve(
          world_->names(), spec, user.identity_cert, user.identity_keys.priv,
          mode, at);
      if (!outcome.ok()) return BbdResponse::failure(req.id, outcome.error());
      BbdResponse res = BbdResponse::success(req.id);
      res.bytes = outcome.value().reply.encode();
      res.u64a = static_cast<std::uint64_t>(outcome.value().latency);
      res.u64b = outcome.value().messages;
      if (outcome.value().reply.granted) {
        conn.grants.emplace_back("source", res.bytes);
      }
      return res;
    }
    case BbdOp::kTunnelReserve: {
      auto outcome = world_->engine().reserve_in_tunnel(
          req.stra, req.strb, req.f64a,
          TimeInterval{static_cast<SimTime>(req.u64a),
                       static_cast<SimTime>(req.u64b)},
          static_cast<SimTime>(req.f64b));
      if (!outcome.ok()) return BbdResponse::failure(req.id, outcome.error());
      BbdResponse res = BbdResponse::success(req.id);
      res.bytes = outcome.value().reply.encode();
      res.u64a = static_cast<std::uint64_t>(outcome.value().latency);
      res.u64b = outcome.value().messages;
      return res;
    }
    case BbdOp::kRelease: {
      auto reply = sig::RarReply::decode(req.bytes);
      if (!reply.ok()) return BbdResponse::failure(req.id, reply.error());
      Status released =
          req.stra == "source"
              ? world_->source_engine().release_end_to_end(reply.value())
              : world_->engine().release_end_to_end(reply.value());
      if (!released.ok()) {
        return BbdResponse::failure(req.id, released.error());
      }
      for (auto it = conn.grants.begin(); it != conn.grants.end(); ++it) {
        if (it->second == req.bytes) {
          conn.grants.erase(it);
          break;
        }
      }
      return BbdResponse::success(req.id);
    }
    case BbdOp::kTunnelRelease: {
      Status released = world_->engine().release_in_tunnel(req.stra, req.strb);
      if (!released.ok()) {
        return BbdResponse::failure(req.id, released.error());
      }
      return BbdResponse::success(req.id);
    }
    case BbdOp::kStats: {
      BbdResponse res = BbdResponse::success(req.id);
      res.u64a = world_->total_reservations();
      res.f64a =
          world_->total_committed_at(static_cast<SimTime>(req.f64b));
      return res;
    }
    case BbdOp::kMetricQuery: {
      auto& registry = obs::MetricsRegistry::global();
      const obs::Labels labels = parse_label_list(req.labels);
      BbdResponse res = BbdResponse::success(req.id);
      if (req.strb == "count") {
        res.f64a =
            static_cast<double>(registry.histogram(req.stra, labels).count());
      } else if (req.strb == "sum") {
        res.f64a = registry.histogram(req.stra, labels).sum();
      } else if (req.strb == "counter") {
        res.f64a =
            static_cast<double>(registry.counter(req.stra, labels).value());
      } else if (req.strb == "gauge") {
        res.f64a = registry.gauge(req.stra, labels).value();
      } else {
        return BbdResponse::failure(
            req.id, Error{ErrorCode::kInvalidArgument,
                          "unknown metric field", req.strb});
      }
      return res;
    }
    case BbdOp::kSnapshot: {
      auto dropped = world_->snapshot_domain(req.u64a);
      if (!dropped.ok()) return BbdResponse::failure(req.id, dropped.error());
      BbdResponse res = BbdResponse::success(req.id);
      res.u64a = dropped.value();
      return res;
    }
    case BbdOp::kShutdown:
      return BbdResponse::success(req.id);
  }
  return BbdResponse::failure(
      req.id, Error{ErrorCode::kInvalidArgument, "unknown op",
                    std::to_string(static_cast<std::uint32_t>(req.op))});
}

}  // namespace e2e::net
