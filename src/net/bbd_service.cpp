#include "net/bbd_service.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <utility>

#include "obs/audit.hpp"
#include "obs/instruments.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "sig/message.hpp"

namespace e2e::net {

namespace {

/// The world's virtual clock never moves past kWorldValidity's start in
/// the handshake: service channels are established "at" virtual time zero.
constexpr SimTime kHandshakeTime = 0;

/// Request heads larger than this are not scrape traffic; drop them.
constexpr std::size_t kMaxAdminRequestBytes = 16384;

/// Wall-clock RPC latency buckets (us): daemon round trips are crypto +
/// admission, tens of us to tens of ms.
std::vector<double> rpc_latency_buckets_us() {
  return {50, 100, 200, 500, 1000, 2000, 5000, 10000, 20000, 50000, 100000};
}

obs::BurnRateSpec rpc_burn_spec() {
  obs::BurnRateSpec spec;
  spec.objective = "bbd.rpc";
  spec.budget_error_rate = 0.01;
  spec.window = std::chrono::seconds(60);
  spec.alert_threshold = 10.0;
  return spec;
}

}  // namespace

sig::ChannelEndpoint ServiceIdentity::daemon_endpoint() const {
  sig::ChannelEndpoint endpoint;
  endpoint.certificate = daemon_certificate;
  endpoint.private_key = daemon_keys.priv;
  endpoint.pinned_peer = client_certificate;
  return endpoint;
}

sig::ChannelEndpoint ServiceIdentity::client_endpoint() const {
  sig::ChannelEndpoint endpoint;
  endpoint.certificate = client_certificate;
  endpoint.private_key = client_keys.priv;
  endpoint.pinned_peer = daemon_certificate;
  return endpoint;
}

ServiceIdentity make_service_identity(std::uint64_t seed) {
  // Derivation order is part of the contract: both processes must draw
  // from the RNG in exactly this sequence to end up with the same bytes.
  Rng rng(seed);
  crypto::CertificateAuthority ca(
      crypto::DistinguishedName::make("bbd-ca", "bbd"), rng,
      kit::kWorldValidity, 256);
  ServiceIdentity identity;
  identity.daemon_keys = crypto::generate_keypair(rng, 256);
  identity.daemon_certificate =
      ca.issue(crypto::DistinguishedName::make("bbd-server", "bbd"),
               identity.daemon_keys.pub, kit::kWorldValidity);
  identity.client_keys = crypto::generate_keypair(rng, 256);
  identity.client_certificate =
      ca.issue(crypto::DistinguishedName::make("bbd-client", "bbd"),
               identity.client_keys.pub, kit::kWorldValidity);
  return identity;
}

BbdService::BbdService(Options options)
    : options_(std::move(options)),
      identity_(make_service_identity(options_.auth_seed)),
      // Handshake nonces only; never touches any world's RNG stream.
      handshake_rng_(options_.auth_seed ^ 0x6262642d64616d6eull),
      wall_clock_(obs::steady_wall_clock()),
      rpc_latency_(std::chrono::seconds(60), 12, rpc_latency_buckets_us()),
      rpc_burn_(rpc_burn_spec()) {}

BbdService::~BbdService() {
  stop();
  wait();
}

Status BbdService::start() {
  kit::ChainWorldConfig config = options_.world;
  if (auto built = rebuild_world(std::move(config)); !built.ok()) {
    return built;
  }
  // The RPC execution pool. No e2e_bb_shard_* series: those belong to
  // the admission engine inside the world; this pool reuses only the
  // queue/worker machinery.
  rpc_pool_ = std::make_unique<bb::ShardEngine>(
      options_.rpc_workers == 0 ? 1 : options_.rpc_workers,
      /*register_metrics=*/false);
  StreamServer::Options server_options;
  server_options.listen_on = options_.listen_on;
  server_options.idle_timeout = options_.idle_timeout;
  server_options.max_write_queue_bytes = options_.max_write_queue_bytes;
  server_options.force_poll = options_.force_poll;
  // Graceful drain must outwait requests the worker pool still owns, not
  // just queued writes: a connection is drainable only once every
  // dispatched request has its response in the write queue.
  server_options.drain_gate = [this](StreamServer::ConnId id) {
    const ConnPtr conn = find_conn(id);
    return conn == nullptr ||
           conn->in_flight.load(std::memory_order_acquire) == 0;
  };
  StreamServer::Callbacks callbacks;
  callbacks.on_open = [this](StreamServer::ConnId id, const Endpoint& via) {
    on_open(id, via);
  };
  callbacks.on_frame = [this](StreamServer::ConnId id, Bytes frame) {
    on_frame(id, std::move(frame));
  };
  callbacks.on_close = [this](StreamServer::ConnId id, const Status& reason) {
    on_close(id, reason);
  };
  server_ = std::make_unique<StreamServer>(std::move(server_options),
                                           std::move(callbacks));
  if (auto started = server_->start(); !started.ok()) return started;
  if (!options_.admin_on.empty()) {
    if (auto admin = start_admin(); !admin.ok()) return admin;
  }
  loop_live_.store(true, std::memory_order_release);
  loop_ = std::thread([this] {
    server_->run();
    finalize_shutdown();
  });
  return Status::ok_status();
}

Status BbdService::start_admin() {
  auto& registry = obs::MetricsRegistry::global();
  obs::AdminPlane::Providers providers;
  providers.health = [this] {
    obs::AdminPlane::Health health;
    health.live = loop_live_.load(std::memory_order_acquire);
    const bool draining = draining_.load(std::memory_order_acquire);
    bool has_world = false;
    {
      // Pointer lock only: readiness must answer even while a worker
      // holds world_mutex_ for a long-running RPC.
      std::lock_guard lock(world_ptr_mutex_);
      has_world = world_ != nullptr;
    }
    health.ready = health.live && has_world && !draining;
    if (!health.ready) {
      health.detail = !health.live  ? "rpc loop not running"
                      : draining    ? "draining"
                                    : "no world configured";
    }
    return health;
  };
  providers.statz_json = [this] { return build_statz(); };
  providers.tracez_json = [this] { return build_tracez(); };
  providers.refresh = [this, &registry](std::uint64_t now_ms) {
    rpc_burn_.publish(registry, now_ms);
    const obs::Histogram::Snapshot window = rpc_latency_.snapshot(now_ms);
    if (window.count == 0) return;
    const std::pair<const char*, double> quantiles[] = {
        {"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}};
    for (const auto& [label, q] : quantiles) {
      registry
          .gauge(obs::kSloLatencyQuantileUs,
                 {{"objective", "bbd.rpc.wall"}, {"quantile", label}})
          .set(obs::estimate_quantile(window, q));
    }
  };
  admin_plane_ = std::make_unique<obs::AdminPlane>(registry,
                                                   std::move(providers));

  StreamServer::Options admin_options;
  admin_options.listen_on = options_.admin_on;
  admin_options.raw_stream = true;
  admin_options.force_poll = options_.force_poll;
  // A scraper that connects and never finishes its request is shed.
  admin_options.idle_timeout = std::chrono::seconds(10);
  StreamServer::Callbacks admin_callbacks;
  admin_callbacks.on_open = [this](StreamServer::ConnId id,
                                   const Endpoint& via) {
    (void)via;
    admin_buffers_[id];
  };
  admin_callbacks.on_data = [this](StreamServer::ConnId id, BytesView data) {
    on_admin_data(id, data);
  };
  admin_callbacks.on_close = [this](StreamServer::ConnId id,
                                    const Status& reason) {
    (void)reason;
    admin_buffers_.erase(id);
  };
  admin_server_ = std::make_unique<StreamServer>(std::move(admin_options),
                                                 std::move(admin_callbacks));
  if (auto started = admin_server_->start(); !started.ok()) return started;
  admin_loop_ = std::thread([this] { admin_server_->run(); });
  return Status::ok_status();
}

void BbdService::on_admin_data(StreamServer::ConnId id, BytesView data) {
  auto it = admin_buffers_.find(id);
  if (it == admin_buffers_.end()) return;
  std::string& buffer = it->second;
  buffer.append(reinterpret_cast<const char*>(data.data()), data.size());
  if (!obs::http_head_complete(buffer)) {
    if (buffer.size() > kMaxAdminRequestBytes) {
      obs::AdminResponse overflow;
      overflow.status = 400;
      overflow.body = "request head too large\n";
      const std::string wire = obs::render_http_response(overflow);
      (void)admin_server_->send_raw(
          id, BytesView(reinterpret_cast<const std::uint8_t*>(wire.data()),
                        wire.size()));
      admin_server_->close_after_flush(id);
    }
    return;
  }
  const obs::AdminResponse response =
      admin_plane_->handle(obs::parse_http_request(buffer));
  const std::string wire = obs::render_http_response(response);
  (void)admin_server_->send_raw(
      id, BytesView(reinterpret_cast<const std::uint8_t*>(wire.data()),
                    wire.size()));
  admin_server_->close_after_flush(id);
}

std::string BbdService::build_statz() const {
  std::string out = "{\"connections\":[";
  std::uint64_t conn_count = 0;
  if (server_ != nullptr) {
    bool first = true;
    for (const StreamServer::ConnectionStats& conn :
         server_->connection_stats()) {
      if (!first) out += ",";
      first = false;
      ++conn_count;
      out += "{\"id\":" + std::to_string(conn.id);
      out += ",\"transport\":\"" + obs::chain_json_escape(conn.transport) +
             "\"";
      out += ",\"bytes_rx\":" + std::to_string(conn.bytes_rx);
      out += ",\"bytes_tx\":" + std::to_string(conn.bytes_tx);
      out += ",\"frames_rx\":" + std::to_string(conn.frames_rx);
      out += ",\"frames_tx\":" + std::to_string(conn.frames_tx);
      out += ",\"queued_bytes\":" + std::to_string(conn.queued_bytes);
      std::uint64_t in_flight = 0;
      std::uint64_t window = 1;
      if (const ConnPtr state = find_conn(conn.id); state != nullptr) {
        in_flight = state->in_flight.load(std::memory_order_relaxed);
        window = state->window.load(std::memory_order_relaxed);
      }
      out += ",\"in_flight\":" + std::to_string(in_flight);
      out += ",\"window\":" + std::to_string(window);
      out += "}";
    }
  }
  out += "],\"shards\":[";
  std::uint64_t depth_total = 0;
  std::uint64_t tasks_total = 0;
  std::uint64_t busy_total = 0;
  // Shard stats are relaxed atomics and names() is immutable, so only
  // the pointer needs protection: the shared_ptr copy keeps the world
  // alive across a concurrent kConfigure, and no RPC is blocked.
  std::shared_ptr<kit::ChainWorld> world;
  {
    std::lock_guard lock(world_ptr_mutex_);
    world = world_;
  }
  {
    if (world != nullptr) {
      bool first_domain = true;
      for (std::size_t i = 0; i < world->names().size(); ++i) {
        const bb::ShardEngine* engine = world->broker(i).shard_engine();
        if (engine == nullptr) continue;
        if (!first_domain) out += ",";
        first_domain = false;
        out += "{\"domain\":\"" +
               obs::chain_json_escape(world->names()[i]) + "\"";
        out += ",\"queue_depth\":" + std::to_string(engine->queue_depth());
        out += ",\"queue_depth_highwater\":" +
               std::to_string(engine->queue_depth_highwater());
        out += ",\"workers\":[";
        const auto workers = engine->stats();
        for (std::size_t w = 0; w < workers.size(); ++w) {
          if (w > 0) out += ",";
          out += "{\"worker\":" + std::to_string(w);
          out += ",\"queue_depth\":" +
                 std::to_string(workers[w].queue_depth);
          out += ",\"tasks_total\":" +
                 std::to_string(workers[w].tasks_total);
          out += ",\"busy_us_total\":" +
                 std::to_string(workers[w].busy_us_total);
          out += "}";
          depth_total += workers[w].queue_depth;
          tasks_total += workers[w].tasks_total;
          busy_total += workers[w].busy_us_total;
        }
        out += "]}";
      }
    }
  }
  out += "],\"totals\":{";
  out += "\"connections\":" + std::to_string(conn_count);
  out += ",\"shard_queue_depth\":" + std::to_string(depth_total);
  out += ",\"shard_tasks\":" + std::to_string(tasks_total);
  out += ",\"shard_busy_us\":" + std::to_string(busy_total);
  out += "}}";
  return out;
}

std::string BbdService::build_tracez() const {
  std::lock_guard lock(world_mutex_);
  if (world_ == nullptr) return "{\"traces\":[]}";
  obs::SpanCollector collector;
  world_->collect(collector);
  return obs::tracez_json(collector, 16);
}

void BbdService::finalize_shutdown() {
  loop_live_.store(false, std::memory_order_release);
  // Retire the worker pool first: its destructor drains every queued
  // task (stale frames, disconnect finalizers), so the audit record and
  // the metrics snapshot below observe a fully settled world. A stop()
  // (non-graceful) exit may still have requests queued here; their
  // completions post to a loop that never runs again, which is safe —
  // posted tasks are discarded, never executed off-loop.
  rpc_pool_.reset();
  if (admin_server_ != nullptr) {
    admin_server_->stop();
    if (admin_loop_.joinable()) admin_loop_.join();
  }
  // Audit first, snapshot second: the snapshot then covers the shutdown
  // record's own counter bump and is truly final.
  obs::AuditLog::global().append(
      "bbd", obs::audit_kind::kShutdown,
      {{"reason", "drain"},
       {"metrics_out",
        options_.metrics_out.empty() ? "-" : options_.metrics_out}});
  if (!options_.metrics_out.empty()) {
    std::ofstream file(options_.metrics_out,
                       std::ios::binary | std::ios::trunc);
    if (file.is_open()) {
      file << obs::MetricsRegistry::global().to_json() << "\n";
    }
  }
}

void BbdService::wait() {
  if (loop_.joinable()) loop_.join();
}

void BbdService::stop() {
  if (server_ != nullptr) server_->stop();
}

void BbdService::shutdown_gracefully() {
  // Readiness flips before the drain begins: a load balancer probing
  // /readyz stops routing while the last in-flight requests finish.
  draining_.store(true, std::memory_order_release);
  if (server_ != nullptr) server_->shutdown_gracefully();
}

std::vector<Endpoint> BbdService::bound_endpoints() const {
  return server_ != nullptr ? server_->bound_endpoints()
                            : std::vector<Endpoint>{};
}

std::vector<Endpoint> BbdService::admin_endpoints() const {
  return admin_server_ != nullptr ? admin_server_->bound_endpoints()
                                  : std::vector<Endpoint>{};
}

const char* BbdService::poller_name() const {
  return server_ != nullptr ? server_->poller_name() : "unstarted";
}

// Callers synchronize: start() runs before any thread exists, and the
// kConfigure path already holds world_mutex_ (taken around handle()).
Status BbdService::rebuild_world(kit::ChainWorldConfig config) {
  config.durability_dir = options_.durability_dir;
  config.recover_on_open = options_.recover && !options_.durability_dir.empty();
  // A kConfigure with no explicit thread count keeps the daemon's
  // configured admission engine instead of silently dropping to zero.
  if (config.admission_threads == 0) {
    config.admission_threads = options_.world.admission_threads;
  }
  users_.clear();
  // The old world must release its WALs before the new one reopens them.
  // The admin thread may still hold a shared_ptr copy (its shard-stats
  // read finishes against the dying world), but the WAL handles close
  // only with the last reference — so drop ours first and publish the
  // replacement after construction succeeds.
  {
    std::lock_guard ptr_lock(world_ptr_mutex_);
    world_.reset();
  }
  std::shared_ptr<kit::ChainWorld> rebuilt;
  try {
    rebuilt = std::make_shared<kit::ChainWorld>(config);
  } catch (const std::exception& e) {
    return make_error(ErrorCode::kInternal, "world construction failed",
                      e.what());
  }
  std::lock_guard ptr_lock(world_ptr_mutex_);
  world_ = std::move(rebuilt);
  return Status::ok_status();
}

BbdService::ConnPtr BbdService::find_conn(StreamServer::ConnId id) const {
  std::lock_guard lock(conns_mutex_);
  const auto it = conns_.find(id);
  return it != conns_.end() ? it->second : nullptr;
}

std::size_t BbdService::worker_for(StreamServer::ConnId id) const {
  // Connection affinity: all of a connection's requests execute on one
  // worker, preserving the sealed channel's FIFO sequence chain.
  return static_cast<std::size_t>(id) % rpc_pool_->worker_count();
}

void BbdService::on_open(StreamServer::ConnId id, const Endpoint& via) {
  (void)via;
  auto conn = std::make_shared<ConnState>();
  conn->handshake = std::make_unique<sig::HandshakeResponder>(
      identity_.daemon_endpoint(), kHandshakeTime, handshake_rng_);
  std::lock_guard lock(conns_mutex_);
  conns_.emplace(id, std::move(conn));
}

void BbdService::on_close(StreamServer::ConnId id, const Status& reason) {
  (void)reason;
  ConnPtr conn;
  {
    std::lock_guard lock(conns_mutex_);
    const auto it = conns_.find(id);
    if (it == conns_.end()) return;
    conn = std::move(it->second);
    conns_.erase(it);
  }
  conn->dead.store(true, std::memory_order_release);
  // The disconnect finalizer runs on the connection's own worker, so it
  // queues BEHIND every request dispatched before the close: the grants
  // list is final when it runs, and orphan release happens exactly once,
  // after the last grant of the connection landed.
  rpc_pool_->post(worker_for(id), [this, conn] {
    if (conn->release_on_disconnect) {
      std::lock_guard lock(world_mutex_);
      release_orphans(*conn);
    }
  });
}

void BbdService::release_orphans(ConnState& conn) {
  if (world_ == nullptr) return;
  for (const auto& [engine, reply_bytes] : conn.grants) {
    auto reply = sig::RarReply::decode(reply_bytes);
    if (!reply.ok()) continue;
    if (engine == "source") {
      (void)world_->source_engine().release_end_to_end(reply.value());
    } else {
      (void)world_->engine().release_end_to_end(reply.value());
    }
  }
  conn.grants.clear();
}

bool BbdService::on_handshake_frame(StreamServer::ConnId id, ConnState& conn,
                                    const Bytes& frame) {
  if (conn.handshake == nullptr) {
    server_->close_after_flush(id);
    return false;
  }
  if (!conn.hello_consumed) {
    // First frame must be the ClientHello.
    auto server_hello = conn.handshake->on_client_hello(frame);
    if (!server_hello.ok()) {
      server_->close_after_flush(id);
      return false;
    }
    conn.hello_consumed = true;
    (void)server_->send(id, server_hello.value());
    return true;
  }
  // Second frame must be the Finished message.
  auto finished = conn.handshake->on_finished(frame);
  if (!finished.ok()) {
    server_->close_after_flush(id);
    return false;
  }
  conn.established = true;
  return true;
}

void BbdService::on_frame(StreamServer::ConnId id, Bytes frame) {
  const ConnPtr conn = find_conn(id);
  if (conn == nullptr) return;
  if (!conn->established) {
    (void)on_handshake_frame(id, *conn, frame);
    return;
  }
  if (conn->dead.load(std::memory_order_acquire)) return;
  // Window enforcement at dispatch: a connection may keep at most its
  // negotiated number of requests in flight (1 unless kHello raised it).
  // Exceeding it is a protocol violation — the peer is not the client
  // library — and the connection is shed before the excess can queue.
  const std::uint64_t in_flight =
      conn->in_flight.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (in_flight > conn->window.load(std::memory_order_acquire)) {
    conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
    conn->dead.store(true, std::memory_order_release);
    server_->close_after_flush(id);
    return;
  }
  // Everything else — unseal, decode, execute, re-seal — happens on the
  // connection's affine worker; the loop goes straight back to IO.
  rpc_pool_->post(worker_for(id),
                  [this, id, conn, frame = std::move(frame)]() mutable {
                    process_frame(id, conn, std::move(frame));
                  });
}

/// Worker-thread half of the RPC path.
void BbdService::process_frame(StreamServer::ConnId id, const ConnPtr& conn,
                               Bytes frame) {
  if (conn->dead.load(std::memory_order_acquire)) {
    conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
    return;
  }
  // Established: every frame is a sealed record carrying one request.
  auto record = sig::decode_record(frame);
  Result<Bytes> payload = record.ok()
                              ? conn->handshake->session().open(record.value())
                              : Result<Bytes>(record.error());
  if (!payload.ok()) {
    // Protocol corruption: poison the connection worker-side first so
    // frames already queued behind this one become no-ops, then hand the
    // close to the loop.
    conn->dead.store(true, std::memory_order_release);
    server_->post([this, id, conn] {
      server_->close_after_flush(id);
      conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
    });
    return;
  }
  auto request = BbdRequest::decode(payload.value());
  BbdResponse response;
  bool shutdown_after_reply = false;
  if (!request.ok()) {
    response = BbdResponse::failure(0, request.error());
  } else {
    const auto rpc_start = std::chrono::steady_clock::now();
    {
      // One exclusive section for world/engine/users: the signalling
      // engines mutate unsynchronized per-tunnel and per-node state, so
      // request execution serializes here — crypto framing above and
      // below runs concurrently across connections.
      std::lock_guard lock(world_mutex_);
      response = handle(id, *conn, request.value());
    }
    if (admin_plane_ != nullptr) {
      const auto elapsed_us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - rpc_start)
              .count();
      const std::uint64_t now_ms = wall_clock_();
      rpc_latency_.observe(now_ms, static_cast<double>(elapsed_us));
      rpc_burn_.record(now_ms, !response.ok);
    }
    shutdown_after_reply =
        request.value().op == BbdOp::kShutdown && response.ok;
  }
  // Seal on the worker too: per-connection FIFO execution keeps the send
  // sequence chain in order, and the loop thread never runs crypto.
  sig::Record sealed = conn->handshake->session().seal(response.encode());
  server_->post([this, id, conn, wire = sig::encode_record(sealed),
                 shutdown_after_reply] {
    (void)server_->send(id, BytesView(wire.data(), wire.size()));
    // Decrement AFTER the response is queued: the drain gate must never
    // see zero in-flight with the reply still on a worker.
    conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
    if (shutdown_after_reply) {
      draining_.store(true, std::memory_order_release);
      server_->shutdown_gracefully();
    }
  });
}

BbdResponse BbdService::handle(StreamServer::ConnId id, ConnState& conn,
                               const BbdRequest& req) {
  (void)id;
  if (world_ == nullptr && req.op != BbdOp::kPing &&
      req.op != BbdOp::kHello && req.op != BbdOp::kConfigure &&
      req.op != BbdOp::kShutdown) {
    return BbdResponse::failure(
        req.id, Error{ErrorCode::kUnavailable, "no world configured", "bbd"});
  }
  switch (req.op) {
    case BbdOp::kPing: {
      BbdResponse res = BbdResponse::success(req.id);
      res.stra = poller_name();
      return res;
    }
    case BbdOp::kHello: {
      conn.release_on_disconnect =
          (req.flags & hello_flag::kReleaseOnDisconnect) != 0;
      BbdResponse res = BbdResponse::success(req.id);
      if ((req.flags & hello_flag::kPipeline) != 0) {
        // Pipelining requested: grant min(asked, cap), floor 1, and echo
        // the granted window in u64a. Without the flag u64a stays 0 —
        // the exact bytes an old daemon produced, so legacy clients see
        // an unchanged wire.
        const std::uint64_t asked = req.u64a == 0 ? 1 : req.u64a;
        const std::uint64_t granted = std::min(asked, kMaxPipelineWindow);
        conn.window.store(granted, std::memory_order_release);
        res.u64a = granted;
      } else {
        conn.window.store(1, std::memory_order_release);
      }
      return res;
    }
    case BbdOp::kConfigure: {
      kit::ChainWorldConfig config;
      if (req.u64a != 0) config.domains = req.u64a;
      if (req.u64b != 0) config.seed = req.u64b;
      if (req.u64c != 0) {
        config.inter_domain_latency = static_cast<SimDuration>(req.u64c);
      }
      if (req.f64a > 0) config.domain_capacity = req.f64a;
      if (req.f64b > 0) config.sla_rate = req.f64b;
      if (auto built = rebuild_world(std::move(config)); !built.ok()) {
        return BbdResponse::failure(req.id, built.error());
      }
      BbdResponse res = BbdResponse::success(req.id);
      res.u64a = options_.world.domains;
      return res;
    }
    case BbdOp::kSetLatency: {
      const auto& names = world_->names();
      if (req.u64a >= names.size() || req.u64b >= names.size()) {
        return BbdResponse::failure(
            req.id, Error{ErrorCode::kInvalidArgument,
                          "domain index out of range", "bbd"});
      }
      world_->fabric().set_latency(names[req.u64a], names[req.u64b],
                                   static_cast<SimDuration>(req.u64c));
      return BbdResponse::success(req.id);
    }
    case BbdOp::kSetProcessingDelay: {
      world_->fabric().set_processing_delay(
          static_cast<SimDuration>(req.u64a));
      return BbdResponse::success(req.id);
    }
    case BbdOp::kMakeUser: {
      if (req.u64a >= world_->names().size()) {
        return BbdResponse::failure(
            req.id, Error{ErrorCode::kInvalidArgument,
                          "home domain index out of range", "bbd"});
      }
      // Re-minting draws from the world RNG; reject duplicates so retried
      // requests cannot skew byte-identity.
      if (users_.count(req.stra) != 0) {
        return BbdResponse::failure(
            req.id, Error{ErrorCode::kConflict, "user already exists",
                          req.stra});
      }
      kit::WorldUser user =
          world_->make_user(req.stra, req.u64a, (req.flags & 1u) != 0,
                            (req.flags & 2u) != 0);
      BbdResponse res = BbdResponse::success(req.id);
      res.stra = user.dn.to_string();
      users_.emplace(req.stra, std::move(user));
      return res;
    }
    case BbdOp::kReserve:
    case BbdOp::kSourceReserve: {
      auto user_it = users_.find(req.stra);
      if (user_it == users_.end()) {
        return BbdResponse::failure(
            req.id,
            Error{ErrorCode::kNotFound, "unknown user", req.stra});
      }
      const kit::WorldUser& user = user_it->second;
      bb::ResSpec spec = world_->spec(
          user, req.f64a,
          TimeInterval{static_cast<SimTime>(req.u64a),
                       static_cast<SimTime>(req.u64b)},
          req.u64c, req.u64d);
      spec.is_tunnel = (req.flags & 1u) != 0;
      const SimTime at = static_cast<SimTime>(req.f64b);
      if (req.op == BbdOp::kReserve) {
        auto msg = world_->engine().build_user_request(user.credentials(),
                                                       spec, at);
        if (!msg.ok()) return BbdResponse::failure(req.id, msg.error());
        auto outcome = world_->engine().reserve(msg.value(), at);
        if (!outcome.ok()) {
          return BbdResponse::failure(req.id, outcome.error());
        }
        BbdResponse res = BbdResponse::success(req.id);
        res.bytes = outcome.value().reply.encode();
        res.u64a = static_cast<std::uint64_t>(outcome.value().latency);
        res.u64b = outcome.value().messages;
        if (outcome.value().reply.granted) {
          conn.grants.emplace_back("hopbyhop", res.bytes);
        }
        return res;
      }
      const auto mode = (req.flags & 2u) != 0
                            ? sig::SourceDomainEngine::Mode::kParallel
                            : sig::SourceDomainEngine::Mode::kSequential;
      auto outcome = world_->source_engine().reserve(
          world_->names(), spec, user.identity_cert, user.identity_keys.priv,
          mode, at);
      if (!outcome.ok()) return BbdResponse::failure(req.id, outcome.error());
      BbdResponse res = BbdResponse::success(req.id);
      res.bytes = outcome.value().reply.encode();
      res.u64a = static_cast<std::uint64_t>(outcome.value().latency);
      res.u64b = outcome.value().messages;
      if (outcome.value().reply.granted) {
        conn.grants.emplace_back("source", res.bytes);
      }
      return res;
    }
    case BbdOp::kTunnelReserve: {
      auto outcome = world_->engine().reserve_in_tunnel(
          req.stra, req.strb, req.f64a,
          TimeInterval{static_cast<SimTime>(req.u64a),
                       static_cast<SimTime>(req.u64b)},
          static_cast<SimTime>(req.f64b));
      if (!outcome.ok()) return BbdResponse::failure(req.id, outcome.error());
      BbdResponse res = BbdResponse::success(req.id);
      res.bytes = outcome.value().reply.encode();
      res.u64a = static_cast<std::uint64_t>(outcome.value().latency);
      res.u64b = outcome.value().messages;
      return res;
    }
    case BbdOp::kRelease: {
      auto reply = sig::RarReply::decode(req.bytes);
      if (!reply.ok()) return BbdResponse::failure(req.id, reply.error());
      Status released =
          req.stra == "source"
              ? world_->source_engine().release_end_to_end(reply.value())
              : world_->engine().release_end_to_end(reply.value());
      if (!released.ok()) {
        return BbdResponse::failure(req.id, released.error());
      }
      for (auto it = conn.grants.begin(); it != conn.grants.end(); ++it) {
        if (it->second == req.bytes) {
          conn.grants.erase(it);
          break;
        }
      }
      return BbdResponse::success(req.id);
    }
    case BbdOp::kTunnelRelease: {
      Status released = world_->engine().release_in_tunnel(req.stra, req.strb);
      if (!released.ok()) {
        return BbdResponse::failure(req.id, released.error());
      }
      return BbdResponse::success(req.id);
    }
    case BbdOp::kStats: {
      BbdResponse res = BbdResponse::success(req.id);
      res.u64a = world_->total_reservations();
      res.f64a =
          world_->total_committed_at(static_cast<SimTime>(req.f64b));
      return res;
    }
    case BbdOp::kMetricQuery: {
      auto& registry = obs::MetricsRegistry::global();
      const obs::Labels labels = parse_label_list(req.labels);
      BbdResponse res = BbdResponse::success(req.id);
      if (req.strb == "count") {
        res.f64a =
            static_cast<double>(registry.histogram(req.stra, labels).count());
      } else if (req.strb == "sum") {
        res.f64a = registry.histogram(req.stra, labels).sum();
      } else if (req.strb == "counter") {
        res.f64a =
            static_cast<double>(registry.counter(req.stra, labels).value());
      } else if (req.strb == "gauge") {
        res.f64a = registry.gauge(req.stra, labels).value();
      } else {
        return BbdResponse::failure(
            req.id, Error{ErrorCode::kInvalidArgument,
                          "unknown metric field", req.strb});
      }
      return res;
    }
    case BbdOp::kSnapshot: {
      auto dropped = world_->snapshot_domain(req.u64a);
      if (!dropped.ok()) return BbdResponse::failure(req.id, dropped.error());
      BbdResponse res = BbdResponse::success(req.id);
      res.u64a = dropped.value();
      return res;
    }
    case BbdOp::kShutdown:
      return BbdResponse::success(req.id);
  }
  return BbdResponse::failure(
      req.id, Error{ErrorCode::kInvalidArgument, "unknown op",
                    std::to_string(static_cast<std::uint32_t>(req.op))});
}

}  // namespace e2e::net
