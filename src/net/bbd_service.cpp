#include "net/bbd_service.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "sig/message.hpp"

namespace e2e::net {

namespace {

/// The world's virtual clock never moves past kWorldValidity's start in
/// the handshake: service channels are established "at" virtual time zero.
constexpr SimTime kHandshakeTime = 0;

}  // namespace

sig::ChannelEndpoint ServiceIdentity::daemon_endpoint() const {
  sig::ChannelEndpoint endpoint;
  endpoint.certificate = daemon_certificate;
  endpoint.private_key = daemon_keys.priv;
  endpoint.pinned_peer = client_certificate;
  return endpoint;
}

sig::ChannelEndpoint ServiceIdentity::client_endpoint() const {
  sig::ChannelEndpoint endpoint;
  endpoint.certificate = client_certificate;
  endpoint.private_key = client_keys.priv;
  endpoint.pinned_peer = daemon_certificate;
  return endpoint;
}

ServiceIdentity make_service_identity(std::uint64_t seed) {
  // Derivation order is part of the contract: both processes must draw
  // from the RNG in exactly this sequence to end up with the same bytes.
  Rng rng(seed);
  crypto::CertificateAuthority ca(
      crypto::DistinguishedName::make("bbd-ca", "bbd"), rng,
      kit::kWorldValidity, 256);
  ServiceIdentity identity;
  identity.daemon_keys = crypto::generate_keypair(rng, 256);
  identity.daemon_certificate =
      ca.issue(crypto::DistinguishedName::make("bbd-server", "bbd"),
               identity.daemon_keys.pub, kit::kWorldValidity);
  identity.client_keys = crypto::generate_keypair(rng, 256);
  identity.client_certificate =
      ca.issue(crypto::DistinguishedName::make("bbd-client", "bbd"),
               identity.client_keys.pub, kit::kWorldValidity);
  return identity;
}

BbdService::BbdService(Options options)
    : options_(std::move(options)),
      identity_(make_service_identity(options_.auth_seed)),
      // Handshake nonces only; never touches any world's RNG stream.
      handshake_rng_(options_.auth_seed ^ 0x6262642d64616d6eull) {}

BbdService::~BbdService() {
  stop();
  wait();
}

Status BbdService::start() {
  kit::ChainWorldConfig config = options_.world;
  if (auto built = rebuild_world(std::move(config)); !built.ok()) {
    return built;
  }
  StreamServer::Options server_options;
  server_options.listen_on = options_.listen_on;
  server_options.idle_timeout = options_.idle_timeout;
  server_options.max_write_queue_bytes = options_.max_write_queue_bytes;
  server_options.force_poll = options_.force_poll;
  StreamServer::Callbacks callbacks;
  callbacks.on_open = [this](StreamServer::ConnId id, const Endpoint& via) {
    on_open(id, via);
  };
  callbacks.on_frame = [this](StreamServer::ConnId id, Bytes frame) {
    on_frame(id, std::move(frame));
  };
  callbacks.on_close = [this](StreamServer::ConnId id, const Status& reason) {
    on_close(id, reason);
  };
  server_ = std::make_unique<StreamServer>(std::move(server_options),
                                           std::move(callbacks));
  if (auto started = server_->start(); !started.ok()) return started;
  loop_ = std::thread([this] { server_->run(); });
  return Status::ok_status();
}

void BbdService::wait() {
  if (loop_.joinable()) loop_.join();
}

void BbdService::stop() {
  if (server_ != nullptr) server_->stop();
}

void BbdService::shutdown_gracefully() {
  if (server_ != nullptr) server_->shutdown_gracefully();
}

std::vector<Endpoint> BbdService::bound_endpoints() const {
  return server_ != nullptr ? server_->bound_endpoints()
                            : std::vector<Endpoint>{};
}

const char* BbdService::poller_name() const {
  return server_ != nullptr ? server_->poller_name() : "unstarted";
}

Status BbdService::rebuild_world(kit::ChainWorldConfig config) {
  config.durability_dir = options_.durability_dir;
  config.recover_on_open = options_.recover && !options_.durability_dir.empty();
  users_.clear();
  // The old world must release its WALs before the new one reopens them.
  world_.reset();
  try {
    world_ = std::make_unique<kit::ChainWorld>(config);
  } catch (const std::exception& e) {
    return make_error(ErrorCode::kInternal, "world construction failed",
                      e.what());
  }
  return Status::ok_status();
}

void BbdService::on_open(StreamServer::ConnId id, const Endpoint& via) {
  (void)via;
  ConnState conn;
  conn.handshake = std::make_unique<sig::HandshakeResponder>(
      identity_.daemon_endpoint(), kHandshakeTime, handshake_rng_);
  conns_.emplace(id, std::move(conn));
}

void BbdService::on_close(StreamServer::ConnId id, const Status& reason) {
  (void)reason;
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  if (it->second.release_on_disconnect) release_orphans(it->second);
  conns_.erase(it);
}

void BbdService::release_orphans(ConnState& conn) {
  if (world_ == nullptr) return;
  for (const auto& [engine, reply_bytes] : conn.grants) {
    auto reply = sig::RarReply::decode(reply_bytes);
    if (!reply.ok()) continue;
    if (engine == "source") {
      (void)world_->source_engine().release_end_to_end(reply.value());
    } else {
      (void)world_->engine().release_end_to_end(reply.value());
    }
  }
  conn.grants.clear();
}

bool BbdService::on_handshake_frame(StreamServer::ConnId id, ConnState& conn,
                                    const Bytes& frame) {
  if (conn.handshake == nullptr) {
    server_->close_after_flush(id);
    return false;
  }
  if (!conn.hello_consumed) {
    // First frame must be the ClientHello.
    auto server_hello = conn.handshake->on_client_hello(frame);
    if (!server_hello.ok()) {
      server_->close_after_flush(id);
      return false;
    }
    conn.hello_consumed = true;
    (void)server_->send(id, server_hello.value());
    return true;
  }
  // Second frame must be the Finished message.
  auto finished = conn.handshake->on_finished(frame);
  if (!finished.ok()) {
    server_->close_after_flush(id);
    return false;
  }
  conn.established = true;
  return true;
}

void BbdService::on_frame(StreamServer::ConnId id, Bytes frame) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  ConnState& conn = it->second;
  if (!conn.established) {
    (void)on_handshake_frame(id, conn, frame);
    return;
  }
  // Established: every frame is a sealed record carrying one request.
  auto record = sig::decode_record(frame);
  if (!record.ok()) {
    server_->close_after_flush(id);
    return;
  }
  auto payload = conn.handshake->session().open(record.value());
  if (!payload.ok()) {
    server_->close_after_flush(id);
    return;
  }
  auto request = BbdRequest::decode(payload.value());
  if (!request.ok()) {
    send_response(id, conn, BbdResponse::failure(0, request.error()));
    return;
  }
  BbdResponse response = handle(id, conn, request.value());
  send_response(id, conn, response);
  if (request.value().op == BbdOp::kShutdown && response.ok) {
    server_->shutdown_gracefully();
  }
}

void BbdService::send_response(StreamServer::ConnId id, ConnState& conn,
                               const BbdResponse& response) {
  sig::Record record = conn.handshake->session().seal(response.encode());
  (void)server_->send(id, sig::encode_record(record));
}

BbdResponse BbdService::handle(StreamServer::ConnId id, ConnState& conn,
                               const BbdRequest& req) {
  (void)id;
  if (world_ == nullptr && req.op != BbdOp::kPing &&
      req.op != BbdOp::kHello && req.op != BbdOp::kConfigure &&
      req.op != BbdOp::kShutdown) {
    return BbdResponse::failure(
        req.id, Error{ErrorCode::kUnavailable, "no world configured", "bbd"});
  }
  switch (req.op) {
    case BbdOp::kPing: {
      BbdResponse res = BbdResponse::success(req.id);
      res.stra = poller_name();
      return res;
    }
    case BbdOp::kHello: {
      conn.release_on_disconnect = (req.flags & 1u) != 0;
      return BbdResponse::success(req.id);
    }
    case BbdOp::kConfigure: {
      kit::ChainWorldConfig config;
      if (req.u64a != 0) config.domains = req.u64a;
      if (req.u64b != 0) config.seed = req.u64b;
      if (req.u64c != 0) {
        config.inter_domain_latency = static_cast<SimDuration>(req.u64c);
      }
      if (req.f64a > 0) config.domain_capacity = req.f64a;
      if (req.f64b > 0) config.sla_rate = req.f64b;
      if (auto built = rebuild_world(std::move(config)); !built.ok()) {
        return BbdResponse::failure(req.id, built.error());
      }
      BbdResponse res = BbdResponse::success(req.id);
      res.u64a = options_.world.domains;
      return res;
    }
    case BbdOp::kSetLatency: {
      const auto& names = world_->names();
      if (req.u64a >= names.size() || req.u64b >= names.size()) {
        return BbdResponse::failure(
            req.id, Error{ErrorCode::kInvalidArgument,
                          "domain index out of range", "bbd"});
      }
      world_->fabric().set_latency(names[req.u64a], names[req.u64b],
                                   static_cast<SimDuration>(req.u64c));
      return BbdResponse::success(req.id);
    }
    case BbdOp::kSetProcessingDelay: {
      world_->fabric().set_processing_delay(
          static_cast<SimDuration>(req.u64a));
      return BbdResponse::success(req.id);
    }
    case BbdOp::kMakeUser: {
      if (req.u64a >= world_->names().size()) {
        return BbdResponse::failure(
            req.id, Error{ErrorCode::kInvalidArgument,
                          "home domain index out of range", "bbd"});
      }
      // Re-minting draws from the world RNG; reject duplicates so retried
      // requests cannot skew byte-identity.
      if (users_.count(req.stra) != 0) {
        return BbdResponse::failure(
            req.id, Error{ErrorCode::kConflict, "user already exists",
                          req.stra});
      }
      kit::WorldUser user =
          world_->make_user(req.stra, req.u64a, (req.flags & 1u) != 0,
                            (req.flags & 2u) != 0);
      BbdResponse res = BbdResponse::success(req.id);
      res.stra = user.dn.to_string();
      users_.emplace(req.stra, std::move(user));
      return res;
    }
    case BbdOp::kReserve:
    case BbdOp::kSourceReserve: {
      auto user_it = users_.find(req.stra);
      if (user_it == users_.end()) {
        return BbdResponse::failure(
            req.id,
            Error{ErrorCode::kNotFound, "unknown user", req.stra});
      }
      const kit::WorldUser& user = user_it->second;
      bb::ResSpec spec = world_->spec(
          user, req.f64a,
          TimeInterval{static_cast<SimTime>(req.u64a),
                       static_cast<SimTime>(req.u64b)},
          req.u64c, req.u64d);
      spec.is_tunnel = (req.flags & 1u) != 0;
      const SimTime at = static_cast<SimTime>(req.f64b);
      if (req.op == BbdOp::kReserve) {
        auto msg = world_->engine().build_user_request(user.credentials(),
                                                       spec, at);
        if (!msg.ok()) return BbdResponse::failure(req.id, msg.error());
        auto outcome = world_->engine().reserve(msg.value(), at);
        if (!outcome.ok()) {
          return BbdResponse::failure(req.id, outcome.error());
        }
        BbdResponse res = BbdResponse::success(req.id);
        res.bytes = outcome.value().reply.encode();
        res.u64a = static_cast<std::uint64_t>(outcome.value().latency);
        res.u64b = outcome.value().messages;
        if (outcome.value().reply.granted) {
          conn.grants.emplace_back("hopbyhop", res.bytes);
        }
        return res;
      }
      const auto mode = (req.flags & 2u) != 0
                            ? sig::SourceDomainEngine::Mode::kParallel
                            : sig::SourceDomainEngine::Mode::kSequential;
      auto outcome = world_->source_engine().reserve(
          world_->names(), spec, user.identity_cert, user.identity_keys.priv,
          mode, at);
      if (!outcome.ok()) return BbdResponse::failure(req.id, outcome.error());
      BbdResponse res = BbdResponse::success(req.id);
      res.bytes = outcome.value().reply.encode();
      res.u64a = static_cast<std::uint64_t>(outcome.value().latency);
      res.u64b = outcome.value().messages;
      if (outcome.value().reply.granted) {
        conn.grants.emplace_back("source", res.bytes);
      }
      return res;
    }
    case BbdOp::kTunnelReserve: {
      auto outcome = world_->engine().reserve_in_tunnel(
          req.stra, req.strb, req.f64a,
          TimeInterval{static_cast<SimTime>(req.u64a),
                       static_cast<SimTime>(req.u64b)},
          static_cast<SimTime>(req.f64b));
      if (!outcome.ok()) return BbdResponse::failure(req.id, outcome.error());
      BbdResponse res = BbdResponse::success(req.id);
      res.bytes = outcome.value().reply.encode();
      res.u64a = static_cast<std::uint64_t>(outcome.value().latency);
      res.u64b = outcome.value().messages;
      return res;
    }
    case BbdOp::kRelease: {
      auto reply = sig::RarReply::decode(req.bytes);
      if (!reply.ok()) return BbdResponse::failure(req.id, reply.error());
      Status released =
          req.stra == "source"
              ? world_->source_engine().release_end_to_end(reply.value())
              : world_->engine().release_end_to_end(reply.value());
      if (!released.ok()) {
        return BbdResponse::failure(req.id, released.error());
      }
      for (auto it = conn.grants.begin(); it != conn.grants.end(); ++it) {
        if (it->second == req.bytes) {
          conn.grants.erase(it);
          break;
        }
      }
      return BbdResponse::success(req.id);
    }
    case BbdOp::kTunnelRelease: {
      Status released = world_->engine().release_in_tunnel(req.stra, req.strb);
      if (!released.ok()) {
        return BbdResponse::failure(req.id, released.error());
      }
      return BbdResponse::success(req.id);
    }
    case BbdOp::kStats: {
      BbdResponse res = BbdResponse::success(req.id);
      res.u64a = world_->total_reservations();
      res.f64a =
          world_->total_committed_at(static_cast<SimTime>(req.f64b));
      return res;
    }
    case BbdOp::kMetricQuery: {
      auto& registry = obs::MetricsRegistry::global();
      const obs::Labels labels = parse_label_list(req.labels);
      BbdResponse res = BbdResponse::success(req.id);
      if (req.strb == "count") {
        res.f64a =
            static_cast<double>(registry.histogram(req.stra, labels).count());
      } else if (req.strb == "sum") {
        res.f64a = registry.histogram(req.stra, labels).sum();
      } else if (req.strb == "counter") {
        res.f64a =
            static_cast<double>(registry.counter(req.stra, labels).value());
      } else if (req.strb == "gauge") {
        res.f64a = registry.gauge(req.stra, labels).value();
      } else {
        return BbdResponse::failure(
            req.id, Error{ErrorCode::kInvalidArgument,
                          "unknown metric field", req.strb});
      }
      return res;
    }
    case BbdOp::kSnapshot: {
      auto dropped = world_->snapshot_domain(req.u64a);
      if (!dropped.ok()) return BbdResponse::failure(req.id, dropped.error());
      BbdResponse res = BbdResponse::success(req.id);
      res.u64a = dropped.value();
      return res;
    }
    case BbdOp::kShutdown:
      return BbdResponse::success(req.id);
  }
  return BbdResponse::failure(
      req.id, Error{ErrorCode::kInvalidArgument, "unknown op",
                    std::to_string(static_cast<std::uint32_t>(req.op))});
}

}  // namespace e2e::net
