// Token-bucket policer/shaper.
//
// Tokens are bits; the bucket fills at `rate` bits/s up to `burst` bits.
// Used (a) per flow at the ingress edge router, configured from the flow's
// reservation, and (b) per EF aggregate at domain boundaries, configured
// from the SLA profile between peered domains.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/clock.hpp"

namespace e2e::net {

class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double rate_bits_per_s, double burst_bits, SimTime start = 0)
      : rate_(rate_bits_per_s),
        burst_(burst_bits),
        tokens_(burst_bits),
        last_(start) {}

  double rate() const { return rate_; }
  double burst() const { return burst_; }

  /// Refill to `now`, then consume `size_bits` if available. Returns true
  /// (conforming) or false (out of profile; no tokens are consumed).
  bool conforms(std::uint32_t size_bits, SimTime now) {
    refill(now);
    if (tokens_ >= static_cast<double>(size_bits)) {
      tokens_ -= static_cast<double>(size_bits);
      return true;
    }
    return false;
  }

  /// Current token level after refilling to `now`.
  double tokens(SimTime now) {
    refill(now);
    return tokens_;
  }

  /// Change the rate/burst in place (BB reconfigures edge routers when
  /// reservations or tunnels change); the fill level is clamped to the new
  /// burst.
  void reconfigure(double rate_bits_per_s, double burst_bits, SimTime now) {
    refill(now);
    rate_ = rate_bits_per_s;
    burst_ = burst_bits;
    tokens_ = std::min(tokens_, burst_);
  }

 private:
  void refill(SimTime now) {
    if (now <= last_) return;
    tokens_ = std::min(
        burst_, tokens_ + rate_ * to_seconds(now - last_));
    last_ = now;
  }

  double rate_ = 0;
  double burst_ = 0;
  double tokens_ = 0;
  SimTime last_ = 0;
};

}  // namespace e2e::net
