// Client side of the bbd daemon RPC (bbd_protocol.hpp).
//
// Owns one stream connection: connect() dials the daemon, runs the staged
// SecureChannel handshake (mutual auth against the shared deterministic
// ServiceIdentity), and every call() afterwards is one sealed
// request/response exchange.
//
// Two calling disciplines share the connection (docs/DAEMON.md
// "Pipelining"):
//   - call() is the original synchronous round trip — byte-identical to
//     the pre-pipelining client, which is what byte-identity with the
//     in-memory run requires;
//   - call_async()/wait() keep up to the negotiated window of sealed
//     requests in flight and match responses by request id, however the
//     daemon interleaves them. The window is negotiated in hello():
//     Options::pipeline_depth > 1 sets the kPipeline hello flag, and the
//     effective window is what the daemon grants (old daemons grant
//     nothing and the client stays serial).
// Each in-flight call carries its own deadline (stamped at send time,
// Options::call_timeout long). A timed-out call is abandoned: its id
// moves to a tombstone set, wait() returns kTimeout, and the late
// response — which must still be unsealed to keep the receive sequence
// chain intact — is discarded on arrival instead of being mis-matched to
// a newer call. Transport or seal-chain errors are sticky: they fail
// every outstanding and future call on this client.
//
// Not thread-safe: one thread drives one client. Fleets hold one client
// per thread (bench/load_daemon.cpp).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "common/result.hpp"
#include "net/bbd_protocol.hpp"
#include "net/bbd_service.hpp"
#include "net/stream_socket.hpp"
#include "sig/channel.hpp"
#include "sig/message.hpp"

namespace e2e::net {

class BbdClient {
 public:
  struct Options {
    Endpoint connect_to;
    std::uint64_t auth_seed = kDefaultAuthSeed;
    /// Wall-clock patience per response (the daemon computes in virtual
    /// time; generously above any real scheduling delay). Pipelined
    /// calls each get their own deadline, stamped when the request is
    /// written.
    std::chrono::milliseconds call_timeout{30000};
    /// Requested pipeline window. 1 (the default) keeps the client
    /// strictly serial and byte-identical to the pre-pipelining wire;
    /// > 1 makes hello() negotiate pipelining and allows that many
    /// call_async() calls in flight at once.
    std::uint64_t pipeline_depth = 1;
  };

  /// Dial and complete the handshake.
  static Result<BbdClient> connect(const Options& options);

  BbdClient(BbdClient&&) = default;
  BbdClient& operator=(BbdClient&&) = default;

  /// Handle to one in-flight pipelined request.
  struct Call {
    std::uint64_t id = 0;
  };

  /// Seal and write one request without waiting for its response. When
  /// the negotiated window is full, first pumps the socket until a slot
  /// frees (the oldest in-flight call completes or times out). The
  /// returned handle is redeemed exactly once with wait().
  Result<Call> call_async(BbdRequest request);

  /// Block until `call`'s response arrives (or its deadline passes),
  /// buffering any other responses that land first. Application-level
  /// failures (response.ok == false) are returned as this Result's
  /// error, exactly like call().
  Result<BbdResponse> wait(const Call& call);

  /// Pump until no calls are in flight; responses are buffered for their
  /// wait(). First sticky error wins.
  Status drain();

  /// Calls currently in flight (sent, not yet completed or abandoned).
  std::size_t in_flight() const { return pending_.size(); }

  /// Window granted by the daemon's hello response (1 until a pipelined
  /// hello() succeeds).
  std::uint64_t pipeline_window() const { return window_; }

  /// One sealed round trip. Assigns the request id; a response that does
  /// not echo it is a protocol error. An application-level failure
  /// (response.ok == false) is returned as this Result's error.
  Result<BbdResponse> call(BbdRequest request);

  // Convenience wrappers over call() — one per op the benches use.
  Status ping();
  Status hello(bool release_on_disconnect);
  Status configure(std::uint64_t domains, std::uint64_t seed = 0,
                   SimDuration inter_domain_latency = 0,
                   double domain_capacity = 0, double sla_rate = 0);
  Status set_latency(std::size_t i, std::size_t j, SimDuration latency);
  Status set_processing_delay(SimDuration delay);
  /// Returns the user's DN text.
  Result<std::string> make_user(const std::string& name, std::size_t home,
                                bool with_capability = true,
                                bool register_everywhere = false);

  struct RemoteOutcome {
    sig::RarReply reply;
    Bytes reply_bytes;  // the daemon's canonical encoding, verbatim
    SimDuration latency = 0;
    std::size_t messages = 0;
  };
  struct ReserveArgs {
    std::string user;
    double rate = 0;
    TimeInterval interval{0, seconds(600)};
    std::size_t src = 0;
    std::size_t dst_offset_from_end = 0;
    bool is_tunnel = false;
    SimTime at = 0;
    bool parallel = false;  // source-engine mode only
  };
  Result<RemoteOutcome> reserve(const ReserveArgs& args);
  Result<RemoteOutcome> source_reserve(const ReserveArgs& args);
  Result<RemoteOutcome> tunnel_reserve(const std::string& tunnel_id,
                                       const std::string& user_dn,
                                       double rate, TimeInterval interval,
                                       SimTime at);
  Status release(const std::string& engine, const Bytes& reply_bytes);
  Status tunnel_release(const std::string& tunnel_id,
                        const std::string& sub_id);

  struct Stats {
    std::size_t reservations = 0;
    double committed = 0;
  };
  Result<Stats> stats(SimTime at);
  /// field: "count" | "sum" (histogram), "counter", "gauge".
  Result<double> metric(const std::string& name, const std::string& labels,
                        const std::string& field);
  Result<std::size_t> snapshot_domain(std::size_t domain);
  Status shutdown_daemon();

 private:
  BbdClient(Options options, StreamSocket socket, sig::Session session)
      : options_(std::move(options)),
        socket_(std::move(socket)),
        session_(std::move(session)) {}

  /// Read + unseal + match ONE response frame, waiting until `deadline`.
  /// kTimeout leaves all state untouched (the caller decides whom to
  /// abandon); any other failure is recorded as the sticky error and
  /// fails every pending call.
  Status pump_one(std::chrono::steady_clock::time_point deadline);
  /// Mark the connection broken and fail every pending call with
  /// `error`.
  Status poison(const Error& error);

  Options options_;
  StreamSocket socket_;
  sig::Session session_;
  std::uint64_t next_id_ = 1;
  /// Negotiated in hello(); 1 = serial.
  std::uint64_t window_ = 1;
  /// In-flight call id -> its deadline. std::map: iteration order is id
  /// order, so begin() is always the oldest call.
  std::map<std::uint64_t, std::chrono::steady_clock::time_point> pending_;
  /// Responses (or terminal errors) that arrived before their wait().
  std::map<std::uint64_t, Result<BbdResponse>> completed_;
  /// Timed-out ids whose responses may still arrive; matched frames are
  /// discarded. Entries leave when the late response shows up or the
  /// connection dies.
  std::set<std::uint64_t> abandoned_;
  /// Sticky transport/protocol error; set once, fails everything after.
  std::optional<Error> broken_;
};

}  // namespace e2e::net
