// Client side of the bbd daemon RPC (bbd_protocol.hpp).
//
// Owns one stream connection: connect() dials the daemon, runs the staged
// SecureChannel handshake (mutual auth against the shared deterministic
// ServiceIdentity), and every call() afterwards is one sealed
// request/response round trip. Calls are synchronous — the benches and
// tests that use this client issue strictly ordered operation sequences,
// which is exactly what byte-identity with the in-memory run requires.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "common/result.hpp"
#include "net/bbd_protocol.hpp"
#include "net/bbd_service.hpp"
#include "net/stream_socket.hpp"
#include "sig/channel.hpp"
#include "sig/message.hpp"

namespace e2e::net {

class BbdClient {
 public:
  struct Options {
    Endpoint connect_to;
    std::uint64_t auth_seed = kDefaultAuthSeed;
    /// Wall-clock patience per response (the daemon computes in virtual
    /// time; generously above any real scheduling delay).
    std::chrono::milliseconds call_timeout{30000};
  };

  /// Dial and complete the handshake.
  static Result<BbdClient> connect(const Options& options);

  BbdClient(BbdClient&&) = default;
  BbdClient& operator=(BbdClient&&) = default;

  /// One sealed round trip. Assigns the request id; a response that does
  /// not echo it is a protocol error. An application-level failure
  /// (response.ok == false) is returned as this Result's error.
  Result<BbdResponse> call(BbdRequest request);

  // Convenience wrappers over call() — one per op the benches use.
  Status ping();
  Status hello(bool release_on_disconnect);
  Status configure(std::uint64_t domains, std::uint64_t seed = 0,
                   SimDuration inter_domain_latency = 0,
                   double domain_capacity = 0, double sla_rate = 0);
  Status set_latency(std::size_t i, std::size_t j, SimDuration latency);
  Status set_processing_delay(SimDuration delay);
  /// Returns the user's DN text.
  Result<std::string> make_user(const std::string& name, std::size_t home,
                                bool with_capability = true,
                                bool register_everywhere = false);

  struct RemoteOutcome {
    sig::RarReply reply;
    Bytes reply_bytes;  // the daemon's canonical encoding, verbatim
    SimDuration latency = 0;
    std::size_t messages = 0;
  };
  struct ReserveArgs {
    std::string user;
    double rate = 0;
    TimeInterval interval{0, seconds(600)};
    std::size_t src = 0;
    std::size_t dst_offset_from_end = 0;
    bool is_tunnel = false;
    SimTime at = 0;
    bool parallel = false;  // source-engine mode only
  };
  Result<RemoteOutcome> reserve(const ReserveArgs& args);
  Result<RemoteOutcome> source_reserve(const ReserveArgs& args);
  Result<RemoteOutcome> tunnel_reserve(const std::string& tunnel_id,
                                       const std::string& user_dn,
                                       double rate, TimeInterval interval,
                                       SimTime at);
  Status release(const std::string& engine, const Bytes& reply_bytes);
  Status tunnel_release(const std::string& tunnel_id,
                        const std::string& sub_id);

  struct Stats {
    std::size_t reservations = 0;
    double committed = 0;
  };
  Result<Stats> stats(SimTime at);
  /// field: "count" | "sum" (histogram), "counter", "gauge".
  Result<double> metric(const std::string& name, const std::string& labels,
                        const std::string& field);
  Result<std::size_t> snapshot_domain(std::size_t domain);
  Status shutdown_daemon();

 private:
  BbdClient(Options options, StreamSocket socket, sig::Session session)
      : options_(std::move(options)),
        socket_(std::move(socket)),
        session_(std::move(session)) {}

  Options options_;
  StreamSocket socket_;
  sig::Session session_;
  std::uint64_t next_id_ = 1;
};

}  // namespace e2e::net
