#include "net/topology.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace e2e::net {

DomainId Topology::add_domain(std::string name) {
  const DomainId id = static_cast<DomainId>(domains_.size());
  domains_.push_back(DomainInfo{id, std::move(name)});
  return id;
}

RouterId Topology::add_router(DomainId domain, std::string name,
                              bool is_edge) {
  if (domain >= domains_.size()) {
    throw std::out_of_range("Topology::add_router: unknown domain");
  }
  const RouterId id = static_cast<RouterId>(routers_.size());
  routers_.push_back(RouterInfo{id, domain, std::move(name), is_edge});
  outgoing_.emplace_back();
  return id;
}

LinkId Topology::add_link(RouterId from, RouterId to,
                          double capacity_bits_per_s, SimDuration latency,
                          std::size_t queue_limit_packets) {
  if (from >= routers_.size() || to >= routers_.size()) {
    throw std::out_of_range("Topology::add_link: unknown router");
  }
  if (capacity_bits_per_s <= 0) {
    throw std::invalid_argument("Topology::add_link: capacity must be > 0");
  }
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(LinkInfo{id, from, to, capacity_bits_per_s, latency,
                            queue_limit_packets});
  outgoing_[from].push_back(id);
  return id;
}

std::optional<DomainId> Topology::find_domain(const std::string& name) const {
  for (const auto& d : domains_) {
    if (d.name == name) return d.id;
  }
  return std::nullopt;
}

bool Topology::is_boundary_link(LinkId id) const {
  const LinkInfo& l = links_.at(id);
  return routers_[l.from].domain != routers_[l.to].domain;
}

Result<std::vector<LinkId>> Topology::shortest_path(RouterId from,
                                                    RouterId to) const {
  if (from >= routers_.size() || to >= routers_.size()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "shortest_path: unknown router");
  }
  if (from == to) return std::vector<LinkId>{};

  std::vector<LinkId> via(routers_.size(), static_cast<LinkId>(-1));
  std::vector<bool> seen(routers_.size(), false);
  std::deque<RouterId> frontier{from};
  seen[from] = true;
  while (!frontier.empty()) {
    const RouterId cur = frontier.front();
    frontier.pop_front();
    for (LinkId lid : outgoing_[cur]) {
      const RouterId next = links_[lid].to;
      if (seen[next]) continue;
      seen[next] = true;
      via[next] = lid;
      if (next == to) {
        std::vector<LinkId> path;
        RouterId walk = to;
        while (walk != from) {
          path.push_back(via[walk]);
          walk = links_[via[walk]].from;
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(next);
    }
  }
  return make_error(ErrorCode::kNoRoute,
                    "no route from " + routers_[from].name + " to " +
                        routers_[to].name);
}

std::vector<DomainId> Topology::domains_on_path(
    const std::vector<LinkId>& path, RouterId start) const {
  std::vector<DomainId> out;
  out.push_back(routers_.at(start).domain);
  for (LinkId lid : path) {
    const DomainId d = routers_[links_.at(lid).to].domain;
    if (out.back() != d) out.push_back(d);
  }
  return out;
}

}  // namespace e2e::net
