#include "net/bbd_protocol.hpp"

namespace e2e::net {

Bytes BbdRequest::encode() const {
  tlv::Writer writer;
  writer.open(bbd_tag::kRequest);
  writer.put_u32(bbd_tag::kOp, static_cast<std::uint32_t>(op));
  writer.put_u64(bbd_tag::kId, id);
  writer.put_u32(bbd_tag::kFlags, flags);
  writer.put_u64(bbd_tag::kU64A, u64a);
  writer.put_u64(bbd_tag::kU64B, u64b);
  writer.put_u64(bbd_tag::kU64C, u64c);
  writer.put_u64(bbd_tag::kU64D, u64d);
  writer.put_f64(bbd_tag::kF64A, f64a);
  writer.put_f64(bbd_tag::kF64B, f64b);
  writer.put_string(bbd_tag::kStrA, stra);
  writer.put_string(bbd_tag::kStrB, strb);
  writer.put_string(bbd_tag::kLabels, labels);
  writer.put_bytes(bbd_tag::kBytes, bytes);
  writer.close();
  return writer.take();
}

Result<BbdRequest> BbdRequest::decode(BytesView data) {
  tlv::Reader outer(data);
  auto nested = outer.read_nested(bbd_tag::kRequest);
  if (!nested.ok()) return nested.error();
  tlv::Reader& r = nested.value();
  BbdRequest req;
  auto op = r.read_u32(bbd_tag::kOp);
  if (!op.ok()) return op.error();
  req.op = static_cast<BbdOp>(op.value());
  auto id = r.read_u64(bbd_tag::kId);
  if (!id.ok()) return id.error();
  req.id = id.value();
  auto flags = r.read_u32(bbd_tag::kFlags);
  if (!flags.ok()) return flags.error();
  req.flags = flags.value();
  auto a = r.read_u64(bbd_tag::kU64A);
  if (!a.ok()) return a.error();
  req.u64a = a.value();
  auto b = r.read_u64(bbd_tag::kU64B);
  if (!b.ok()) return b.error();
  req.u64b = b.value();
  auto c = r.read_u64(bbd_tag::kU64C);
  if (!c.ok()) return c.error();
  req.u64c = c.value();
  auto d = r.read_u64(bbd_tag::kU64D);
  if (!d.ok()) return d.error();
  req.u64d = d.value();
  auto fa = r.read_f64(bbd_tag::kF64A);
  if (!fa.ok()) return fa.error();
  req.f64a = fa.value();
  auto fb = r.read_f64(bbd_tag::kF64B);
  if (!fb.ok()) return fb.error();
  req.f64b = fb.value();
  auto sa = r.read_string(bbd_tag::kStrA);
  if (!sa.ok()) return sa.error();
  req.stra = std::move(sa.value());
  auto sb = r.read_string(bbd_tag::kStrB);
  if (!sb.ok()) return sb.error();
  req.strb = std::move(sb.value());
  auto labels = r.read_string(bbd_tag::kLabels);
  if (!labels.ok()) return labels.error();
  req.labels = std::move(labels.value());
  auto bytes = r.read_bytes(bbd_tag::kBytes);
  if (!bytes.ok()) return bytes.error();
  req.bytes = std::move(bytes.value());
  if (!r.at_end()) {
    return make_error(ErrorCode::kBadMessage, "trailing data in bbd request");
  }
  return req;
}

Bytes BbdResponse::encode() const {
  tlv::Writer writer;
  writer.open(bbd_tag::kResponse);
  writer.put_u64(bbd_tag::kId, id);
  writer.put_bool(bbd_tag::kOk, ok);
  writer.put_u32(bbd_tag::kErrCode, static_cast<std::uint32_t>(error_code));
  writer.put_string(bbd_tag::kErrMsg, error_message);
  writer.put_string(bbd_tag::kErrOrigin, error_origin);
  writer.put_u64(bbd_tag::kU64A, u64a);
  writer.put_u64(bbd_tag::kU64B, u64b);
  writer.put_f64(bbd_tag::kF64A, f64a);
  writer.put_string(bbd_tag::kStrA, stra);
  writer.put_bytes(bbd_tag::kBytes, bytes);
  writer.close();
  return writer.take();
}

Result<BbdResponse> BbdResponse::decode(BytesView data) {
  tlv::Reader outer(data);
  auto nested = outer.read_nested(bbd_tag::kResponse);
  if (!nested.ok()) return nested.error();
  tlv::Reader& r = nested.value();
  BbdResponse res;
  auto id = r.read_u64(bbd_tag::kId);
  if (!id.ok()) return id.error();
  res.id = id.value();
  auto ok = r.read_bool(bbd_tag::kOk);
  if (!ok.ok()) return ok.error();
  res.ok = ok.value();
  auto code = r.read_u32(bbd_tag::kErrCode);
  if (!code.ok()) return code.error();
  res.error_code = static_cast<ErrorCode>(code.value());
  auto msg = r.read_string(bbd_tag::kErrMsg);
  if (!msg.ok()) return msg.error();
  res.error_message = std::move(msg.value());
  auto origin = r.read_string(bbd_tag::kErrOrigin);
  if (!origin.ok()) return origin.error();
  res.error_origin = std::move(origin.value());
  auto a = r.read_u64(bbd_tag::kU64A);
  if (!a.ok()) return a.error();
  res.u64a = a.value();
  auto b = r.read_u64(bbd_tag::kU64B);
  if (!b.ok()) return b.error();
  res.u64b = b.value();
  auto fa = r.read_f64(bbd_tag::kF64A);
  if (!fa.ok()) return fa.error();
  res.f64a = fa.value();
  auto sa = r.read_string(bbd_tag::kStrA);
  if (!sa.ok()) return sa.error();
  res.stra = std::move(sa.value());
  auto bytes = r.read_bytes(bbd_tag::kBytes);
  if (!bytes.ok()) return bytes.error();
  res.bytes = std::move(bytes.value());
  if (!r.at_end()) {
    return make_error(ErrorCode::kBadMessage, "trailing data in bbd response");
  }
  return res;
}

std::vector<std::pair<std::string, std::string>> parse_label_list(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> labels;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(pos, comma - pos);
    const std::size_t eq = item.find('=');
    if (eq != std::string::npos) {
      labels.emplace_back(item.substr(0, eq), item.substr(eq + 1));
    }
    pos = comma + 1;
  }
  return labels;
}

std::string render_label_list(
    const std::vector<std::pair<std::string, std::string>>& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out += ',';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

}  // namespace e2e::net
