#include "net/stream_socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/instruments.hpp"

namespace e2e::net {

namespace {

Error errno_error(ErrorCode code, const std::string& what) {
  return make_error(code, what + ": " + std::strerror(errno));
}

Status fill_sockaddr_in(const Endpoint& endpoint, sockaddr_in& addr) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    return make_error(ErrorCode::kInvalidArgument,
                      "not an IPv4 address: " + endpoint.host);
  }
  return Status::ok_status();
}

Status fill_sockaddr_un(const Endpoint& endpoint, sockaddr_un& addr) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (endpoint.path.size() >= sizeof(addr.sun_path)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "unix socket path too long: " + endpoint.path);
  }
  std::memcpy(addr.sun_path, endpoint.path.c_str(), endpoint.path.size());
  return Status::ok_status();
}

void count_stream_bytes(const char* dir, std::size_t n) {
  obs::MetricsRegistry::global()
      .counter(obs::kNetStreamBytesTotal, {{"dir", dir}})
      .increment(n);
}

void count_frame(const char* dir) {
  obs::MetricsRegistry::global()
      .counter(obs::kNetFramesTotal, {{"dir", dir}})
      .increment();
}

}  // namespace

Result<Endpoint> Endpoint::parse(const std::string& spec) {
  if (spec.rfind("unix:", 0) == 0) {
    Endpoint e;
    e.kind = Kind::kUnix;
    e.path = spec.substr(5);
    if (e.path.empty()) {
      return make_error(ErrorCode::kInvalidArgument,
                        "empty unix socket path: " + spec);
    }
    return e;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const auto colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      return make_error(ErrorCode::kInvalidArgument,
                        "expected tcp:HOST:PORT, got " + spec);
    }
    Endpoint e;
    e.kind = Kind::kTcp;
    e.host = rest.substr(0, colon);
    const std::string port_text = rest.substr(colon + 1);
    unsigned long port = 0;
    try {
      std::size_t used = 0;
      port = std::stoul(port_text, &used);
      if (used != port_text.size()) throw std::invalid_argument(port_text);
    } catch (const std::exception&) {
      return make_error(ErrorCode::kInvalidArgument,
                        "bad tcp port: " + port_text);
    }
    if (port > 65535) {
      return make_error(ErrorCode::kInvalidArgument,
                        "tcp port out of range: " + port_text);
    }
    e.port = static_cast<std::uint16_t>(port);
    return e;
  }
  return make_error(ErrorCode::kInvalidArgument,
                    "endpoint must start with tcp: or unix:, got " + spec);
}

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

StreamSocket::~StreamSocket() { close(); }

StreamSocket::StreamSocket(StreamSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      decoder_(std::move(other.decoder_)) {}

StreamSocket& StreamSocket::operator=(StreamSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    decoder_ = std::move(other.decoder_);
  }
  return *this;
}

void StreamSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void StreamSocket::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

Result<StreamSocket> StreamSocket::connect(const Endpoint& endpoint) {
  const int domain = endpoint.kind == Endpoint::Kind::kTcp ? AF_INET : AF_UNIX;
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) return errno_error(ErrorCode::kInternal, "socket()");
  int rc = -1;
  if (endpoint.kind == Endpoint::Kind::kTcp) {
    sockaddr_in addr{};
    auto filled = fill_sockaddr_in(endpoint, addr);
    if (!filled.ok()) {
      ::close(fd);
      return filled.error();
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } else {
    sockaddr_un addr{};
    auto filled = fill_sockaddr_un(endpoint, addr);
    if (!filled.ok()) {
      ::close(fd);
      return filled.error();
    }
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  }
  if (rc != 0) {
    const Error e =
        errno_error(ErrorCode::kUnavailable,
                    "connect(" + endpoint.to_string() + ")");
    ::close(fd);
    return e;
  }
  return StreamSocket(fd);
}

Status StreamSocket::send_raw(BytesView bytes) {
  if (fd_ < 0) {
    return make_error(ErrorCode::kInvalidArgument, "socket is closed");
  }
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error(ErrorCode::kUnavailable, "send()");
    }
    sent += static_cast<std::size_t>(n);
  }
  count_stream_bytes("tx", bytes.size());
  return Status::ok_status();
}

Status StreamSocket::send_frame(BytesView payload) {
  if (payload.size() > kMaxFramePayload) {
    return make_error(ErrorCode::kInvalidArgument,
                      "payload exceeds frame cap",
                      std::to_string(payload.size()));
  }
  auto sent = send_raw(encode_frame(payload));
  if (sent.ok()) count_frame("tx");
  return sent;
}

Result<Bytes> StreamSocket::recv_frame(std::chrono::milliseconds deadline) {
  if (fd_ < 0) {
    return make_error(ErrorCode::kInvalidArgument, "socket is closed");
  }
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    if (auto payload = decoder_.next()) {
      count_frame("rx");
      return std::move(*payload);
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    const auto remaining = deadline - elapsed;
    if (remaining <= std::chrono::milliseconds::zero()) {
      return make_error(ErrorCode::kTimeout,
                        "no frame within " + std::to_string(deadline.count()) +
                            "ms");
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return errno_error(ErrorCode::kInternal, "poll()");
    }
    if (ready == 0) {
      return make_error(ErrorCode::kTimeout,
                        "no frame within " + std::to_string(deadline.count()) +
                            "ms");
    }
    std::uint8_t chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error(ErrorCode::kUnavailable, "recv()");
    }
    if (n == 0) {
      return make_error(ErrorCode::kUnavailable,
                        decoder_.mid_frame()
                            ? "peer disconnected mid-message"
                            : "peer disconnected");
    }
    count_stream_bytes("rx", static_cast<std::size_t>(n));
    auto fed = decoder_.feed(
        BytesView(chunk, static_cast<std::size_t>(n)));
    if (!fed.ok()) return fed.error();
  }
}

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      endpoint_(std::move(other.endpoint_)) {}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    endpoint_ = std::move(other.endpoint_);
  }
  return *this;
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (endpoint_.kind == Endpoint::Kind::kUnix) {
      ::unlink(endpoint_.path.c_str());
    }
  }
}

Result<Listener> Listener::listen(const Endpoint& endpoint, int backlog) {
  const int domain = endpoint.kind == Endpoint::Kind::kTcp ? AF_INET : AF_UNIX;
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) return errno_error(ErrorCode::kInternal, "socket()");
  Listener listener;
  listener.fd_ = fd;
  listener.endpoint_ = endpoint;
  if (endpoint.kind == Endpoint::Kind::kTcp) {
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    auto filled = fill_sockaddr_in(endpoint, addr);
    if (!filled.ok()) return filled.error();
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      return errno_error(ErrorCode::kUnavailable,
                         "bind(" + endpoint.to_string() + ")");
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      listener.endpoint_.port = ntohs(addr.sin_port);
    }
  } else {
    ::unlink(endpoint.path.c_str());  // stale socket from a crashed daemon
    sockaddr_un addr{};
    auto filled = fill_sockaddr_un(endpoint, addr);
    if (!filled.ok()) return filled.error();
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      return errno_error(ErrorCode::kUnavailable,
                         "bind(" + endpoint.to_string() + ")");
    }
  }
  if (::listen(fd, backlog) != 0) {
    return errno_error(ErrorCode::kUnavailable,
                       "listen(" + endpoint.to_string() + ")");
  }
  return listener;
}

Result<StreamSocket> Listener::accept() {
  if (fd_ < 0) {
    return make_error(ErrorCode::kInvalidArgument, "listener is closed");
  }
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return StreamSocket(fd);
    if (errno == EINTR) continue;
    return errno_error(ErrorCode::kUnavailable, "accept()");
  }
}

}  // namespace e2e::net
