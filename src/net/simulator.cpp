#include "net/simulator.hpp"

#include <algorithm>
#include <deque>

#include "common/logging.hpp"
#include "obs/instruments.hpp"

namespace e2e::net {

Simulator::Simulator(Topology topology, std::uint64_t seed)
    : topo_(std::move(topology)), rng_(seed) {
  links_.resize(topo_.link_count());
  auto& registry = obs::MetricsRegistry::global();
  packets_emitted_ = &registry.counter(obs::kNetPacketsEmittedTotal);
  packets_delivered_ = &registry.counter(obs::kNetPacketsDeliveredTotal);
  packets_dropped_policer_ =
      &registry.counter(obs::kNetPacketsDroppedTotal, {{"reason", "policer"}});
  packets_dropped_queue_ =
      &registry.counter(obs::kNetPacketsDroppedTotal, {{"reason", "queue"}});
  packets_downgraded_ = &registry.counter(obs::kNetPacketsDowngradedTotal);
  packet_delay_us_ = &registry.histogram(obs::kNetPacketDelayUs);
}

Result<FlowId> Simulator::add_flow(const FlowDescription& desc) {
  auto path = topo_.shortest_path(desc.source, desc.destination);
  if (!path) return path.error();
  if (path->empty()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "flow source equals destination");
  }
  if (desc.pattern.rate_bits_per_s <= 0 || desc.pattern.packet_bits == 0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "flow needs positive rate and packet size");
  }
  const FlowId id = static_cast<FlowId>(flows_.size());
  flows_.push_back(FlowState{desc, std::move(*path), FlowStats{}, true});
  events_.schedule_at(desc.start, [this, id] { emit_packet(id); });
  return id;
}

void Simulator::set_flow_policer(LinkId link, FlowId flow,
                                 const TokenBucket& bucket,
                                 sla::ExcessTreatment treatment) {
  links_.at(link).flow_policers[flow] = PolicerEntry{bucket, treatment};
}

void Simulator::clear_flow_policer(LinkId link, FlowId flow) {
  links_.at(link).flow_policers.erase(flow);
}

void Simulator::set_aggregate_policer(LinkId link, const TokenBucket& bucket,
                                      sla::ExcessTreatment treatment) {
  links_.at(link).aggregate_policer = PolicerEntry{bucket, treatment};
}

void Simulator::clear_aggregate_policer(LinkId link) {
  links_.at(link).aggregate_policer.reset();
}

SimDuration Simulator::emission_gap(const TrafficPattern& p) {
  const double gap_us =
      static_cast<double>(p.packet_bits) / p.rate_bits_per_s * 1e6;
  switch (p.kind) {
    case TrafficPattern::Kind::kCbr:
      return static_cast<SimDuration>(gap_us);
    case TrafficPattern::Kind::kPoisson:
      return static_cast<SimDuration>(rng_.next_exponential(gap_us));
    case TrafficPattern::Kind::kOnOff: {
      // CBR while on; with probability gap/mean_on the burst ends and an
      // exponentially distributed idle period follows (burst lengths are
      // then approximately exponential with mean `mean_on`).
      double total = gap_us;
      const double p_end =
          p.mean_on > 0 ? gap_us / static_cast<double>(p.mean_on) : 0.0;
      if (rng_.next_bool(std::min(1.0, p_end))) {
        total += rng_.next_exponential(static_cast<double>(p.mean_off));
      }
      return static_cast<SimDuration>(total);
    }
  }
  return static_cast<SimDuration>(gap_us);
}

void Simulator::emit_packet(FlowId id) {
  FlowState& flow = flows_[id];
  const SimTime now = events_.now();
  if (flow.desc.stop != 0 && now >= flow.desc.stop) return;

  Packet pkt;
  pkt.id = next_packet_id_++;
  pkt.flow = id;
  pkt.size_bits = flow.desc.pattern.packet_bits;
  pkt.cls = TrafficClass::kBestEffort;  // edge policing may promote to EF
  pkt.created = now;
  flow.stats.emitted_packets++;
  flow.stats.emitted_bits += pkt.size_bits;
  packets_emitted_->increment();

  enter_link(pkt, id, 0);
  events_.schedule_in(emission_gap(flow.desc.pattern),
                      [this, id] { emit_packet(id); });
}

void Simulator::enter_link(Packet pkt, FlowId flow, std::size_t hop) {
  FlowState& fs = flows_[flow];
  const LinkId link = fs.path[hop];
  LinkState& ls = links_[link];
  const SimTime now = events_.now();

  // Per-flow edge policing: mark conforming reserved traffic EF.
  if (fs.desc.wants_premium) {
    const auto it = ls.flow_policers.find(flow);
    if (it != ls.flow_policers.end()) {
      if (it->second.bucket.conforms(pkt.size_bits, now)) {
        pkt.cls = TrafficClass::kExpedited;
      } else if (it->second.treatment == sla::ExcessTreatment::kDrop) {
        fs.stats.dropped_policer_packets++;
        packets_dropped_policer_->increment();
        return;
      } else {
        pkt.cls = TrafficClass::kBestEffort;
        pkt.downgraded = true;
        fs.stats.downgraded_packets++;
        packets_downgraded_->increment();
      }
    }
  }

  // Aggregate policing of the EF class (SLA boundary enforcement) — blind
  // to individual flows.
  if (pkt.cls == TrafficClass::kExpedited && ls.aggregate_policer) {
    if (!ls.aggregate_policer->bucket.conforms(pkt.size_bits, now)) {
      if (ls.aggregate_policer->treatment == sla::ExcessTreatment::kDrop) {
        fs.stats.dropped_policer_packets++;
        packets_dropped_policer_->increment();
        return;
      }
      pkt.cls = TrafficClass::kBestEffort;
      pkt.downgraded = true;
      fs.stats.downgraded_packets++;
      packets_downgraded_->increment();
    }
  }

  auto& queue = pkt.cls == TrafficClass::kExpedited ? ls.ef_queue
                                                    : ls.be_queue;
  if (queue.size() >= topo_.link(link).queue_limit_packets) {
    fs.stats.dropped_queue_packets++;
    packets_dropped_queue_->increment();
    return;
  }
  queue.push_back(QueuedPacket{pkt, hop});
  if (!ls.busy) serve_link(link);
}

void Simulator::serve_link(LinkId link) {
  LinkState& ls = links_[link];
  std::deque<QueuedPacket>* queue = nullptr;
  if (!ls.ef_queue.empty()) {
    queue = &ls.ef_queue;
  } else if (!ls.be_queue.empty()) {
    queue = &ls.be_queue;
  } else {
    ls.busy = false;
    return;
  }
  ls.busy = true;
  const Packet pkt = queue->front().pkt;
  const std::size_t hop = queue->front().hop;
  queue->pop_front();

  const LinkInfo& info = topo_.link(link);
  const SimDuration tx = static_cast<SimDuration>(
      static_cast<double>(pkt.size_bits) / info.capacity_bits_per_s * 1e6);
  ls.stats.tx_packets++;
  ls.stats.tx_bits += pkt.size_bits;
  ls.stats.busy_time += tx;

  // Departure: the link becomes free and serves the next packet.
  events_.schedule_in(tx, [this, link] { serve_link(link); });
  // Arrival at the far end after propagation.
  events_.schedule_in(tx + info.latency, [this, pkt, hop] {
    FlowState& fs = flows_[pkt.flow];
    if (hop + 1 < fs.path.size()) {
      enter_link(pkt, pkt.flow, hop + 1);
    } else {
      deliver(pkt, pkt.flow);
    }
  });
}

void Simulator::deliver(const Packet& pkt, FlowId flow) {
  FlowStats& st = flows_[flow].stats;
  st.delivered_packets++;
  st.delivered_bits += pkt.size_bits;
  if (pkt.cls == TrafficClass::kExpedited) {
    st.delivered_premium_bits += pkt.size_bits;
  }
  const SimDuration delay = events_.now() - pkt.created;
  st.total_delay += delay;
  packets_delivered_->increment();
  packet_delay_us_->observe(static_cast<double>(delay));
}

void Simulator::run_until(SimTime t) { events_.run_until(t); }

}  // namespace e2e::net
