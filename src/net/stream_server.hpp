// Non-blocking event-loop server for length-framed stream connections.
//
// This is the daemon's IO core (tools/bbd): it owns the listening sockets
// (any mix of TCP and UNIX-domain), accepts connections, reassembles
// length-prefixed frames out of arbitrarily torn reads, and writes replies
// through bounded per-connection queues. The loop multiplexes with epoll
// where available and falls back to poll() — set Options::force_poll (or
// E2E_FORCE_POLL=1) to exercise the fallback on any platform.
//
// Contract with the application (bbd_service.hpp):
//  - callbacks run on the loop thread, one at a time, never concurrently;
//  - send()/close_after_flush() may only be called from the loop thread
//    (i.e. from inside a callback or a post()ed task). This is enforced:
//    while run() is live, calling them from any other thread aborts the
//    process — the check is always on, not assert()-gated, because every
//    CI preset builds RelWithDebInfo (NDEBUG);
//  - stop()/shutdown_gracefully()/post() are the thread-safe entry points
//    (they wake the loop through a pipe). post(fn) runs fn on the loop
//    thread before the next poll — it is how worker threads hand
//    completed responses back to the loop for send();
//  - a frame passed to send() is either fully written or the connection is
//    closed; there is no partial-message state an application can observe.
//
// Backpressure: writes that cannot complete inline queue for EPOLLOUT.
// The queue is bounded (Options::max_write_queue_bytes); a peer that stops
// reading until the bound is hit is a slow consumer and its connection is
// closed — a daemon must shed such clients, not buffer without limit.
//
// Shutdown: shutdown_gracefully() stops accepting, lets every connection
// drain its pending writes — and, when Options::drain_gate is set, waits
// until the gate reports each connection free of in-flight application
// work — then closes them and returns from run(). stop() closes
// everything immediately.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "net/stream_framing.hpp"
#include "net/stream_socket.hpp"

namespace e2e::net {

/// OS-facing readiness multiplexer: epoll on Linux, poll() elsewhere (and
/// on demand, for coverage of the fallback path).
class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool hangup = false;
  };

  virtual ~Poller() = default;
  virtual Status add(int fd, bool want_write) = 0;
  virtual Status modify(int fd, bool want_write) = 0;
  virtual void remove(int fd) = 0;
  /// Wait up to timeout_ms (-1 = indefinitely) and report ready fds.
  virtual Result<std::vector<Event>> wait(int timeout_ms) = 0;

  virtual const char* name() const = 0;

  /// epoll when available unless forced to poll.
  static std::unique_ptr<Poller> create(bool force_poll);
};

class StreamServer {
 public:
  using ConnId = std::uint64_t;

  struct Options {
    std::vector<Endpoint> listen_on;
    /// Close connections silent for this long; zero disables the sweep.
    std::chrono::milliseconds idle_timeout{0};
    /// Slow-consumer bound on queued unwritten bytes per connection.
    std::size_t max_write_queue_bytes = 4u << 20;
    bool force_poll = false;
    /// Raw byte-stream mode (the admin plane's HTTP listener): no frame
    /// decoding — on_data delivers bytes as they arrive, send_raw()
    /// writes without a length prefix. A raw server also skips the
    /// net-plane gauges and frame counters (kNetConnsActive,
    /// kNetWriteQueueBytes, kNetFramesTotal, kNetConnsAcceptedTotal) so
    /// two servers in one process never fight over shared series; byte
    /// counters still accumulate (counters merge safely).
    bool raw_stream = false;
    /// Graceful-drain gate: when set, a draining loop keeps a connection
    /// open (and keeps running) until the gate returns true for it — the
    /// application reports whether the connection still has in-flight
    /// requests on worker threads whose responses have not been queued
    /// yet. Re-evaluated every loop iteration; post()ing a completion
    /// wakes the loop, so the drain converges as workers finish. Called
    /// on the loop thread only.
    std::function<bool(ConnId)> drain_gate;
  };

  struct Callbacks {
    /// A connection was accepted via the given listening endpoint.
    std::function<void(ConnId, const Endpoint& via)> on_open;
    /// One complete frame arrived (framed mode only).
    std::function<void(ConnId, Bytes frame)> on_frame;
    /// A chunk of bytes arrived (raw_stream mode only).
    std::function<void(ConnId, BytesView data)> on_data;
    /// The connection is gone (peer close, error, idle timeout, shed).
    /// `reason` is ok for an orderly peer close.
    std::function<void(ConnId, const Status& reason)> on_close;
  };

  /// Point-in-time view of one live connection, for /statz. Counts come
  /// from relaxed atomics the loop thread updates — individually exact,
  /// mutually unordered.
  struct ConnectionStats {
    ConnId id = 0;
    std::string transport;        // "tcp" | "unix"
    std::uint64_t bytes_rx = 0;   // stream bytes received
    std::uint64_t bytes_tx = 0;   // stream bytes written to the socket
    std::uint64_t frames_rx = 0;  // frames decoded (0 in raw mode)
    std::uint64_t frames_tx = 0;  // frames queued (0 in raw mode)
    std::uint64_t queued_bytes = 0;  // unwritten bytes in flight
  };

  StreamServer(Options options, Callbacks callbacks);
  ~StreamServer();
  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  /// Bind and listen on every configured endpoint.
  Status start();

  /// Bound addresses (ephemeral TCP ports resolved).
  std::vector<Endpoint> bound_endpoints() const;

  /// Run the event loop until stop() or graceful-shutdown completion.
  void run();

  /// Thread-safe: close everything and return from run() now.
  void stop();

  /// Thread-safe: stop accepting, drain pending writes (and wait out
  /// Options::drain_gate), then return from run().
  void shutdown_gracefully();

  /// Thread-safe: run `task` on the loop thread before the next poll.
  /// This is the only way a foreign thread may reach send()/
  /// close_after_flush(). Tasks still queued when run() exits are
  /// discarded without running (their connections are gone anyway).
  void post(std::function<void()> task);

  /// Queue one frame (loop thread only). Closes the connection and
  /// returns kUnavailable when the write queue bound is exceeded.
  Status send(ConnId id, BytesView payload);

  /// Queue raw bytes with no length prefix (loop thread only; raw_stream
  /// servers). Same backpressure contract as send().
  Status send_raw(ConnId id, BytesView payload);

  /// Close once pending writes drain (loop thread only).
  void close_after_flush(ConnId id);

  std::size_t connection_count() const { return connections_.size(); }

  /// Snapshot of every live connection, sorted by id. Thread-safe (this
  /// is the one introspection entry point foreign threads may call while
  /// the loop runs).
  std::vector<ConnectionStats> connection_stats() const;

  const char* poller_name() const;

 private:
  /// Live counters shared between the loop thread (writer) and
  /// connection_stats() (reader). The map entry is guarded by
  /// stats_mutex_; the counts themselves are lock-free atomics so the
  /// hot read/write paths never take that mutex.
  struct ConnCounters {
    std::string transport;
    std::atomic<std::uint64_t> bytes_rx{0};
    std::atomic<std::uint64_t> bytes_tx{0};
    std::atomic<std::uint64_t> frames_rx{0};
    std::atomic<std::uint64_t> frames_tx{0};
    std::atomic<std::uint64_t> queued_bytes{0};
  };

  struct Connection {
    int fd = -1;
    Endpoint via;
    FrameDecoder decoder;
    std::deque<Bytes> write_queue;
    std::size_t queued_bytes = 0;
    std::size_t front_offset = 0;
    std::chrono::steady_clock::time_point last_activity;
    bool closing_after_flush = false;
    bool want_write = false;
    std::shared_ptr<ConnCounters> stats;
  };

  void accept_ready(int listener_fd);
  void read_ready(ConnId id);
  /// Run every task handed over via post() since the last iteration.
  void run_posted_tasks();
  /// Close drained connections; flag the rest to close after flush. Only
  /// touches connections Options::drain_gate (when set) reports idle.
  void sweep_draining();
  /// Abort unless called on the loop thread while run() is live.
  void require_loop_thread(const char* api) const;
  /// Write as much queued data as the socket takes; registers EPOLLOUT
  /// interest on a partial write. Returns false when the connection died.
  bool flush_writes(ConnId id);
  /// Shared enqueue path for send()/send_raw(): bound check, inline
  /// flush, backpressure accounting.
  Status enqueue_bytes(ConnId id, Bytes wire_bytes);
  void close_connection(ConnId id, const Status& reason);
  void sweep_idle();
  int next_timeout_ms() const;
  void drain_wake_pipe();
  /// Republish the total-unwritten-bytes gauge (framed servers only).
  void publish_write_queue_gauge();

  Options options_;
  Callbacks callbacks_;
  std::unique_ptr<Poller> poller_;
  std::vector<Listener> listeners_;
  std::map<int, std::size_t> listener_by_fd_;
  std::map<ConnId, Connection> connections_;
  std::map<int, ConnId> conn_by_fd_;
  ConnId next_conn_id_ = 1;
  std::size_t total_queued_bytes_ = 0;  // across all connections
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> drain_requested_{false};
  bool draining_ = false;

  /// Loop-thread identity for require_loop_thread(). loop_live_ flips
  /// true/false at run() entry/exit; loop_thread_ is written before the
  /// flag is released so a reader that observes loop_live_ sees the id.
  std::atomic<bool> loop_live_{false};
  std::atomic<std::thread::id> loop_thread_{};

  std::mutex post_mutex_;
  std::deque<std::function<void()>> posted_;

  mutable std::mutex stats_mutex_;
  std::map<ConnId, std::shared_ptr<ConnCounters>> stats_;
};

}  // namespace e2e::net
