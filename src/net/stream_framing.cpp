#include "net/stream_framing.hpp"

#include "obs/instruments.hpp"

namespace e2e::net {

Bytes encode_frame(BytesView payload) {
  Bytes frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  const auto length = static_cast<std::uint32_t>(payload.size());
  frame.push_back(static_cast<std::uint8_t>(length >> 24));
  frame.push_back(static_cast<std::uint8_t>(length >> 16));
  frame.push_back(static_cast<std::uint8_t>(length >> 8));
  frame.push_back(static_cast<std::uint8_t>(length));
  append(frame, payload);
  return frame;
}

Status FrameDecoder::feed(BytesView chunk) {
  if (!poison_.ok()) return poison_;
  append(buffer_, chunk);
  std::size_t pos = 0;
  while (buffer_.size() - pos >= kFrameHeaderBytes) {
    const std::size_t length = (std::size_t{buffer_[pos]} << 24) |
                               (std::size_t{buffer_[pos + 1]} << 16) |
                               (std::size_t{buffer_[pos + 2]} << 8) |
                               std::size_t{buffer_[pos + 3]};
    if (length > kMaxFramePayload) {
      obs::MetricsRegistry::global()
          .counter(obs::kNetFramingErrorsTotal)
          .increment();
      poison_ = make_error(ErrorCode::kBadMessage,
                           "frame length " + std::to_string(length) +
                               " exceeds cap " +
                               std::to_string(kMaxFramePayload));
      buffer_.clear();
      return poison_;
    }
    if (buffer_.size() - pos - kFrameHeaderBytes < length) break;
    const auto begin = buffer_.begin() +
                       static_cast<std::ptrdiff_t>(pos + kFrameHeaderBytes);
    ready_.emplace_back(begin, begin + static_cast<std::ptrdiff_t>(length));
    ++frames_decoded_;
    pos += kFrameHeaderBytes + length;
  }
  if (pos > 0) {
    buffer_.erase(buffer_.begin(), buffer_.begin() +
                                       static_cast<std::ptrdiff_t>(pos));
  }
  return Status::ok_status();
}

std::optional<Bytes> FrameDecoder::next() {
  if (ready_.empty()) return std::nullopt;
  Bytes payload = std::move(ready_.front());
  ready_.pop_front();
  return payload;
}

}  // namespace e2e::net
