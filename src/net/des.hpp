// Discrete-event simulation core.
//
// A binary-heap event queue over virtual time. Events scheduled at the same
// timestamp run in insertion order (stable), which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.hpp"

namespace e2e::net {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute virtual time `at` (>= now; earlier times are
  /// clamped to now).
  void schedule_at(SimTime at, Handler fn) {
    if (at < now_) at = now_;
    heap_.push(Event{at, seq_++, std::move(fn)});
  }
  void schedule_in(SimDuration delay, Handler fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Run events until the queue is empty or virtual time would exceed
  /// `until`. Returns the number of events executed.
  std::size_t run_until(SimTime until) {
    std::size_t executed = 0;
    while (!heap_.empty() && heap_.top().at <= until) {
      // Copy out before pop: the handler may schedule new events.
      Event ev = heap_.top();
      heap_.pop();
      now_ = ev.at;
      ev.fn();
      ++executed;
    }
    if (now_ < until) now_ = until;
    return executed;
  }

  /// Drain everything (use only when sources stop generating).
  std::size_t run_all() {
    std::size_t executed = 0;
    while (!heap_.empty()) {
      Event ev = heap_.top();
      heap_.pop();
      now_ = ev.at;
      ev.fn();
      ++executed;
    }
    return executed;
  }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace e2e::net
