// Wire protocol of the bbd broker daemon.
//
// The daemon hosts one deterministic ChainWorld (the paper's chain of
// administrative domains with all their key material, SLAs and signalling
// engines); client processes drive scenarios against it through this RPC
// surface. The split keeps the protocol state — RNG streams, certificate
// bytes, RAR signatures — in exactly one process, which is what makes a
// multi-process run byte-identical to the in-memory one: the daemon
// executes the same operation sequence against the same seeded world, and
// ships the resulting RarReply bytes back verbatim.
//
// Transport stack, bottom up:
//   1. length-framed byte stream        (net/stream_framing.hpp)
//   2. SecureChannel staged handshake   (sig/channel.hpp: ClientHello /
//      ServerHello / Finished as the first three frames)
//   3. sealed records                   (sig::Session::seal, wire form
//      channel_tag::kRecord) carrying one Request or Response each.
//
// Requests and responses are flat TLV containers. Every field is encoded
// on every message whatever the op — a few dozen fixed bytes of overhead
// buys a single encode/decode path with no per-op schema to drift.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/result.hpp"
#include "common/tlv.hpp"

namespace e2e::net {

namespace bbd_tag {
inline constexpr tlv::Tag kRequest = 0xE2A0;   // container
inline constexpr tlv::Tag kResponse = 0xE2A1;  // container
inline constexpr tlv::Tag kOp = 0xE2A2;        // u32
inline constexpr tlv::Tag kId = 0xE2A3;        // u64
inline constexpr tlv::Tag kFlags = 0xE2A4;     // u32 (request bools, bit-packed)
inline constexpr tlv::Tag kU64A = 0xE2A5;      // u64 general slots
inline constexpr tlv::Tag kU64B = 0xE2A6;
inline constexpr tlv::Tag kU64C = 0xE2A7;
inline constexpr tlv::Tag kU64D = 0xE2A8;
inline constexpr tlv::Tag kF64A = 0xE2A9;      // f64 general slots
inline constexpr tlv::Tag kF64B = 0xE2AA;
inline constexpr tlv::Tag kStrA = 0xE2AB;      // string general slots
inline constexpr tlv::Tag kStrB = 0xE2AC;
inline constexpr tlv::Tag kLabels = 0xE2AD;    // string ("k=v,k=v")
inline constexpr tlv::Tag kBytes = 0xE2AE;     // bytes (reply payloads)
inline constexpr tlv::Tag kOk = 0xE2AF;        // bool
inline constexpr tlv::Tag kErrCode = 0xE2B0;   // u32 (ErrorCode)
inline constexpr tlv::Tag kErrMsg = 0xE2B1;    // string
inline constexpr tlv::Tag kErrOrigin = 0xE2B2; // string
}  // namespace bbd_tag

/// kHello request flag bits (BbdRequest::flags).
namespace hello_flag {
/// Release grants made over this connection when it drops — the
/// orphan-release contract.
inline constexpr std::uint32_t kReleaseOnDisconnect = 1u << 0;
/// Client requests response pipelining: it wants to keep request
/// u64a > 1 sealed calls in flight on this connection and will match
/// responses by id, not arrival order. The daemon answers with the
/// window it will honor in response u64a (0 on daemons predating the
/// feature — TLV encodes every field always, so an old daemon's hello
/// response already carried u64a=0 and stays byte-identical). A client
/// that does not set this bit gets the original strictly-serial
/// contract, byte for byte.
inline constexpr std::uint32_t kPipeline = 1u << 1;
}  // namespace hello_flag

/// Largest pipeline window the daemon will advertise in a kHello
/// response; the effective window is min(requested, this).
inline constexpr std::uint64_t kMaxPipelineWindow = 64;

enum class BbdOp : std::uint32_t {
  kPing = 1,
  /// Set per-connection options (flags bit 0: release grants made over
  /// this connection when it drops — the orphan-release contract;
  /// flags bit 1: request pipelining, window wanted in u64a — see
  /// hello_flag above). Response u64a = granted pipeline window.
  kHello = 2,
  /// (Re)build the daemon's world: u64a=domains, u64b=seed (0 keeps the
  /// config default), u64c=inter-domain latency (SimDuration), f64a=domain
  /// capacity, f64b=SLA rate. Destroys the previous world.
  kConfigure = 3,
  /// u64a=i, u64b=j, u64c=one-way latency between domains i and j.
  kSetLatency = 4,
  /// u64a=per-hop processing delay.
  kSetProcessingDelay = 5,
  /// stra=name, u64a=home domain index, flags bit0=with_capability,
  /// bit1=register_everywhere.
  kMakeUser = 6,
  /// Hop-by-hop end-to-end reservation. stra=user name (from kMakeUser),
  /// f64a=rate, u64a=interval start, u64b=interval end, u64c=src index,
  /// u64d=destination offset from end, flags bit0=is_tunnel, f64b=at.
  /// Response: bytes=RarReply::encode(), u64a=latency, u64b=messages.
  kReserve = 7,
  /// Source-domain reservation; fields as kReserve, flags bit1=parallel.
  kSourceReserve = 8,
  /// stra=tunnel id, strb=user DN, f64a=rate, u64a/u64b=interval,
  /// f64b=at. Response as kReserve.
  kTunnelReserve = 9,
  /// Release a granted end-to-end reply. stra=engine ("hopbyhop" or
  /// "source"), bytes=the granted RarReply::encode().
  kRelease = 10,
  /// stra=tunnel id, strb=sub-reservation id.
  kTunnelRelease = 11,
  /// Response: u64a=total reservations across brokers, f64a=total
  /// committed bandwidth at virtual time f64b (passed in request f64b).
  kStats = 12,
  /// Query the daemon's metrics registry. stra=metric name,
  /// labels="k=v,k=v", strb=field: "count" | "sum" | "value".
  /// Response: f64a=the requested number.
  kMetricQuery = 13,
  /// Snapshot + WAL-truncate domain u64a (durability runs only).
  kSnapshot = 14,
  /// Ask the daemon to shut down gracefully after replying.
  kShutdown = 15,
};

struct BbdRequest {
  BbdOp op = BbdOp::kPing;
  std::uint64_t id = 0;
  std::uint32_t flags = 0;
  std::uint64_t u64a = 0, u64b = 0, u64c = 0, u64d = 0;
  double f64a = 0, f64b = 0;
  std::string stra, strb;
  std::string labels;
  Bytes bytes;

  Bytes encode() const;
  static Result<BbdRequest> decode(BytesView data);
};

struct BbdResponse {
  std::uint64_t id = 0;
  bool ok = false;
  ErrorCode error_code = ErrorCode::kInternal;
  std::string error_message;
  std::string error_origin;
  std::uint64_t u64a = 0, u64b = 0;
  double f64a = 0;
  std::string stra;
  Bytes bytes;

  Bytes encode() const;
  static Result<BbdResponse> decode(BytesView data);

  static BbdResponse success(std::uint64_t id) {
    BbdResponse r;
    r.id = id;
    r.ok = true;
    return r;
  }
  static BbdResponse failure(std::uint64_t id, const Error& error) {
    BbdResponse r;
    r.id = id;
    r.ok = false;
    r.error_code = error.code;
    r.error_message = error.message;
    r.error_origin = error.origin;
    return r;
  }
  Error to_error() const {
    return Error{error_code, error_message, error_origin};
  }
};

/// Parse / render the "k=v,k=v" label spelling of kMetricQuery.
std::vector<std::pair<std::string, std::string>> parse_label_list(
    const std::string& text);
std::string render_label_list(
    const std::vector<std::pair<std::string, std::string>>& labels);

}  // namespace e2e::net
