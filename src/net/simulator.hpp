// Packet-level DiffServ simulator.
//
// Implements exactly the DiffServ semantics the paper's Fig. 4 argument
// rests on:
//  - the first (edge) router recognizes packets per flow and marks
//    conforming reserved traffic EF (per-flow token-bucket policers,
//    configured by the bandwidth broker from reservations);
//  - every other policing point sees only *aggregates*: boundary links
//    police the whole EF aggregate against the SLA profile, blind to which
//    flow the excess belongs to ("Domain C polices traffic based on traffic
//    aggregates, not on individual users");
//  - links serve EF with strict priority over best-effort, drop-tail queues
//    per class.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/des.hpp"
#include "net/packet.hpp"
#include "net/token_bucket.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sla/sls.hpp"

namespace e2e::net {

/// How a traffic source emits packets.
struct TrafficPattern {
  enum class Kind { kCbr, kPoisson, kOnOff };
  Kind kind = Kind::kCbr;
  double rate_bits_per_s = 0;     // mean rate (on-rate for on-off)
  std::uint32_t packet_bits = 12000;  // 1500 bytes
  // kOnOff only: mean burst/idle durations.
  SimDuration mean_on = milliseconds(100);
  SimDuration mean_off = milliseconds(100);

  static TrafficPattern cbr(double rate_bits_per_s,
                            std::uint32_t packet_bits = 12000) {
    return {Kind::kCbr, rate_bits_per_s, packet_bits, 0, 0};
  }
  static TrafficPattern poisson(double rate_bits_per_s,
                                std::uint32_t packet_bits = 12000) {
    return {Kind::kPoisson, rate_bits_per_s, packet_bits, 0, 0};
  }
  static TrafficPattern on_off(double on_rate_bits_per_s, SimDuration mean_on,
                               SimDuration mean_off,
                               std::uint32_t packet_bits = 12000) {
    return {Kind::kOnOff, on_rate_bits_per_s, packet_bits, mean_on, mean_off};
  }
};

struct FlowDescription {
  std::string name;
  RouterId source = 0;
  RouterId destination = 0;
  /// True if the flow requests premium (EF) treatment at the edge.
  bool wants_premium = false;
  TrafficPattern pattern;
  SimTime start = 0;
  SimTime stop = 0;  // 0 = run until simulation end
};

struct FlowStats {
  std::uint64_t emitted_packets = 0;
  std::uint64_t emitted_bits = 0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t delivered_bits = 0;
  /// Bits delivered still carrying the EF mark end-to-end.
  std::uint64_t delivered_premium_bits = 0;
  std::uint64_t dropped_policer_packets = 0;
  std::uint64_t dropped_queue_packets = 0;
  std::uint64_t downgraded_packets = 0;
  SimDuration total_delay = 0;  // sum over delivered packets

  double goodput_bits_per_s(SimDuration window) const {
    return window > 0 ? static_cast<double>(delivered_bits) /
                            to_seconds(window)
                      : 0.0;
  }
  double premium_goodput_bits_per_s(SimDuration window) const {
    return window > 0 ? static_cast<double>(delivered_premium_bits) /
                            to_seconds(window)
                      : 0.0;
  }
  double mean_delay_us() const {
    return delivered_packets > 0
               ? static_cast<double>(total_delay) /
                     static_cast<double>(delivered_packets)
               : 0.0;
  }
};

class Simulator {
 public:
  explicit Simulator(Topology topology, std::uint64_t seed = 1);

  const Topology& topology() const { return topo_; }
  EventQueue& events() { return events_; }
  SimTime now() const { return events_.now(); }

  /// Register a flow; routing uses the fewest-hops path. Returns the id
  /// used for stats and policer configuration.
  Result<FlowId> add_flow(const FlowDescription& desc);

  /// --- Policer configuration (written by the bandwidth brokers) ---

  /// Per-flow edge policer on `link` (normally the flow's first link):
  /// conforming packets are marked EF, excess gets `treatment`.
  void set_flow_policer(LinkId link, FlowId flow, const TokenBucket& bucket,
                        sla::ExcessTreatment treatment);
  void clear_flow_policer(LinkId link, FlowId flow);

  /// Aggregate EF policer on `link` (normally boundary links): the whole EF
  /// aggregate shares one bucket, blind to flows.
  void set_aggregate_policer(LinkId link, const TokenBucket& bucket,
                             sla::ExcessTreatment treatment);
  void clear_aggregate_policer(LinkId link);

  /// Advance virtual time, executing all traffic events.
  void run_until(SimTime t);

  const FlowStats& stats(FlowId flow) const { return flows_.at(flow).stats; }
  const std::string& flow_name(FlowId flow) const {
    return flows_.at(flow).desc.name;
  }
  std::size_t flow_count() const { return flows_.size(); }

  /// Per-link transmission accounting.
  struct LinkStats {
    std::uint64_t tx_packets = 0;
    std::uint64_t tx_bits = 0;
    SimDuration busy_time = 0;

    double utilization(SimDuration window) const {
      return window > 0 ? static_cast<double>(busy_time) /
                              static_cast<double>(window)
                        : 0.0;
    }
  };
  const LinkStats& link_stats(LinkId link) const {
    return links_.at(link).stats;
  }

 private:
  struct PolicerEntry {
    TokenBucket bucket;
    sla::ExcessTreatment treatment = sla::ExcessTreatment::kDrop;
  };

  /// A packet in flight, together with its position on the flow's path.
  struct QueuedPacket {
    Packet pkt;
    std::size_t hop = 0;
  };

  struct LinkState {
    std::deque<QueuedPacket> ef_queue;
    std::deque<QueuedPacket> be_queue;
    bool busy = false;
    std::map<FlowId, PolicerEntry> flow_policers;
    std::optional<PolicerEntry> aggregate_policer;
    LinkStats stats;
  };

  struct FlowState {
    FlowDescription desc;
    std::vector<LinkId> path;
    FlowStats stats;
    bool on = true;  // for on-off sources
  };

  void schedule_next_emission(FlowId id);
  void emit_packet(FlowId id);
  /// Packet arrives at the entry of path[hop]; polices, enqueues, kicks the
  /// link if idle.
  void enter_link(Packet pkt, FlowId flow, std::size_t hop);
  void serve_link(LinkId link);
  void deliver(const Packet& pkt, FlowId flow);

  SimDuration emission_gap(const TrafficPattern& p);

  Topology topo_;
  EventQueue events_;
  Rng rng_;
  std::vector<FlowState> flows_;
  std::vector<LinkState> links_;
  std::uint64_t next_packet_id_ = 1;

  // Global-registry instruments, resolved once in the constructor; the
  // per-packet hot path increments through these cached references
  // (guaranteed stable for the registry's lifetime).
  obs::Counter* packets_emitted_;
  obs::Counter* packets_delivered_;
  obs::Counter* packets_dropped_policer_;
  obs::Counter* packets_dropped_queue_;
  obs::Counter* packets_downgraded_;
  obs::Histogram* packet_delay_us_;
};

}  // namespace e2e::net
