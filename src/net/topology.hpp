// Multi-domain network topology.
//
// Domains contain routers; unidirectional links connect routers within and
// across domains. A link whose endpoints sit in different domains is a
// *boundary* link — the place where SLA aggregate policing applies.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/result.hpp"

namespace e2e::net {

using DomainId = std::uint32_t;
using RouterId = std::uint32_t;
using LinkId = std::uint32_t;

struct DomainInfo {
  DomainId id = 0;
  std::string name;
};

struct RouterInfo {
  RouterId id = 0;
  DomainId domain = 0;
  std::string name;
  /// Edge routers classify per flow; core routers only see aggregates.
  bool is_edge = false;
};

struct LinkInfo {
  LinkId id = 0;
  RouterId from = 0;
  RouterId to = 0;
  double capacity_bits_per_s = 0;
  SimDuration latency = 0;
  /// Per-class queue limit in packets (drop-tail beyond this).
  std::size_t queue_limit_packets = 64;
};

class Topology {
 public:
  DomainId add_domain(std::string name);
  RouterId add_router(DomainId domain, std::string name, bool is_edge);
  LinkId add_link(RouterId from, RouterId to, double capacity_bits_per_s,
                  SimDuration latency, std::size_t queue_limit_packets = 64);

  const DomainInfo& domain(DomainId id) const { return domains_.at(id); }
  const RouterInfo& router(RouterId id) const { return routers_.at(id); }
  const LinkInfo& link(LinkId id) const { return links_.at(id); }
  std::size_t domain_count() const { return domains_.size(); }
  std::size_t router_count() const { return routers_.size(); }
  std::size_t link_count() const { return links_.size(); }

  std::optional<DomainId> find_domain(const std::string& name) const;

  /// True if the link crosses an administrative boundary.
  bool is_boundary_link(LinkId id) const;

  /// Links leaving `router`.
  const std::vector<LinkId>& outgoing(RouterId router) const {
    return outgoing_.at(router);
  }

  /// Fewest-hops path (BFS over links). kNoRoute if unreachable.
  Result<std::vector<LinkId>> shortest_path(RouterId from, RouterId to) const;

  /// Ordered list of distinct domains traversed by a link path, starting
  /// with the domain of the path's first router.
  std::vector<DomainId> domains_on_path(const std::vector<LinkId>& path,
                                        RouterId start) const;

 private:
  std::vector<DomainInfo> domains_;
  std::vector<RouterInfo> routers_;
  std::vector<LinkInfo> links_;
  std::vector<std::vector<LinkId>> outgoing_;  // per router
};

}  // namespace e2e::net
