#include "net/bbd_client.hpp"

#include <algorithm>
#include <utility>

namespace e2e::net {

Result<BbdClient> BbdClient::connect(const Options& options) {
  auto socket = StreamSocket::connect(options.connect_to);
  if (!socket.ok()) return socket.error();
  const ServiceIdentity identity = make_service_identity(options.auth_seed);
  // Client nonce entropy; deliberately a different stream from the
  // daemon's so the two sides never draw identical nonces.
  Rng rng(options.auth_seed ^ 0x6262642d636c6e74ull);
  sig::HandshakeInitiator initiator(identity.client_endpoint(), 0, rng);
  if (auto sent = socket.value().send_frame(initiator.client_hello());
      !sent.ok()) {
    return sent.error();
  }
  auto server_hello = socket.value().recv_frame(options.call_timeout);
  if (!server_hello.ok()) return server_hello.error();
  auto finished = initiator.on_server_hello(server_hello.value());
  if (!finished.ok()) return finished.error();
  if (auto sent = socket.value().send_frame(finished.value()); !sent.ok()) {
    return sent.error();
  }
  return BbdClient(options, std::move(socket.value()),
                   std::move(initiator.session()));
}

Status BbdClient::poison(const Error& error) {
  broken_ = error;
  // Every in-flight call fails with the same terminal error: once the
  // seal chain or the socket is gone, no later frame can be trusted.
  for (const auto& [id, deadline] : pending_) {
    completed_.emplace(id, Result<BbdResponse>(error));
  }
  pending_.clear();
  abandoned_.clear();
  return Status(error);
}

Status BbdClient::pump_one(std::chrono::steady_clock::time_point deadline) {
  const auto now = std::chrono::steady_clock::now();
  const auto budget =
      deadline > now
          ? std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                  now)
          : std::chrono::milliseconds(0);
  auto frame = socket_.recv_frame(budget);
  if (!frame.ok()) {
    if (frame.error().code == ErrorCode::kTimeout) return frame.error();
    return poison(frame.error());
  }
  auto reply_record = sig::decode_record(frame.value());
  if (!reply_record.ok()) return poison(reply_record.error());
  // Open even when the id turns out to be abandoned: the receive
  // sequence chain covers every frame in arrival order.
  auto payload = session_.open(reply_record.value());
  if (!payload.ok()) return poison(payload.error());
  auto response = BbdResponse::decode(payload.value());
  if (!response.ok()) return poison(response.error());
  const std::uint64_t id = response.value().id;
  if (const auto it = pending_.find(id); it != pending_.end()) {
    pending_.erase(it);
    completed_.emplace(id, std::move(response));
    return Status::ok_status();
  }
  if (abandoned_.erase(id) > 0) {
    // The late response to a timed-out call: discard, never mis-match.
    return Status::ok_status();
  }
  return poison(make_error(ErrorCode::kBadMessage,
                           "response id does not match request",
                           std::to_string(id)));
}

Result<BbdClient::Call> BbdClient::call_async(BbdRequest request) {
  if (broken_.has_value()) return *broken_;
  // A full window blocks on the OLDEST call's own deadline; when it
  // expires the slot is reclaimed by abandoning that call (its wait()
  // will report kTimeout from completed_).
  while (pending_.size() >= std::max<std::uint64_t>(window_, 1)) {
    const auto oldest = pending_.begin();
    const auto deadline = oldest->second;
    const Status pumped = pump_one(deadline);
    if (pumped.ok()) continue;
    if (pumped.error().code != ErrorCode::kTimeout) return pumped.error();
    if (std::chrono::steady_clock::now() < deadline) continue;
    const std::uint64_t stale = oldest->first;
    pending_.erase(stale);
    abandoned_.insert(stale);
    completed_.emplace(
        stale,
        Result<BbdResponse>(make_error(ErrorCode::kTimeout,
                                       "pipelined call timed out",
                                       std::to_string(stale))));
  }
  request.id = next_id_++;
  const sig::Record record = session_.seal(request.encode());
  if (auto sent = socket_.send_frame(sig::encode_record(record));
      !sent.ok()) {
    return poison(sent.error()).error();
  }
  pending_.emplace(request.id,
                   std::chrono::steady_clock::now() + options_.call_timeout);
  return Call{request.id};
}

Result<BbdResponse> BbdClient::wait(const Call& call) {
  while (true) {
    if (const auto done = completed_.find(call.id);
        done != completed_.end()) {
      Result<BbdResponse> response = std::move(done->second);
      completed_.erase(done);
      if (!response.ok()) return response;
      if (!response.value().ok) return response.value().to_error();
      return response;
    }
    const auto it = pending_.find(call.id);
    if (it == pending_.end()) {
      if (broken_.has_value()) return *broken_;
      return make_error(ErrorCode::kInvalidArgument,
                        "wait() on an unknown or already-waited call",
                        std::to_string(call.id));
    }
    const auto deadline = it->second;
    const Status pumped = pump_one(deadline);
    if (pumped.ok()) continue;
    if (pumped.error().code != ErrorCode::kTimeout) return pumped.error();
    if (std::chrono::steady_clock::now() < deadline) continue;
    // This call's own deadline passed: abandon it so a late response
    // cannot be mis-matched to a newer id.
    pending_.erase(call.id);
    abandoned_.insert(call.id);
    return make_error(ErrorCode::kTimeout, "pipelined call timed out",
                      std::to_string(call.id));
  }
}

Status BbdClient::drain() {
  while (!pending_.empty()) {
    const auto oldest = pending_.begin();
    const auto deadline = oldest->second;
    const Status pumped = pump_one(deadline);
    if (pumped.ok()) continue;
    if (pumped.error().code != ErrorCode::kTimeout) return pumped;
    if (std::chrono::steady_clock::now() < deadline) continue;
    const std::uint64_t stale = oldest->first;
    pending_.erase(stale);
    abandoned_.insert(stale);
    completed_.emplace(
        stale,
        Result<BbdResponse>(make_error(ErrorCode::kTimeout,
                                       "pipelined call timed out",
                                       std::to_string(stale))));
  }
  return broken_.has_value() ? Status(*broken_) : Status::ok_status();
}

Result<BbdResponse> BbdClient::call(BbdRequest request) {
  // call_async + wait: with an empty pipe this is exactly the original
  // serial round trip — same bytes, same blocking behavior.
  auto handle = call_async(std::move(request));
  if (!handle.ok()) return handle.error();
  return wait(handle.value());
}

Status BbdClient::ping() {
  BbdRequest req;
  req.op = BbdOp::kPing;
  auto res = call(std::move(req));
  return res.ok() ? Status::ok_status() : Status(res.error());
}

Status BbdClient::hello(bool release_on_disconnect) {
  const bool want_pipeline = options_.pipeline_depth > 1;
  BbdRequest req;
  req.op = BbdOp::kHello;
  req.flags =
      (release_on_disconnect ? hello_flag::kReleaseOnDisconnect : 0u) |
      (want_pipeline ? hello_flag::kPipeline : 0u);
  if (want_pipeline) req.u64a = options_.pipeline_depth;
  auto res = call(std::move(req));
  if (!res.ok()) return Status(res.error());
  if (want_pipeline) {
    // The effective window is what the daemon granted; an old daemon
    // echoes 0 and this client stays serial.
    window_ = std::max<std::uint64_t>(
        1, std::min(options_.pipeline_depth, res.value().u64a));
  }
  return Status::ok_status();
}

Status BbdClient::configure(std::uint64_t domains, std::uint64_t seed,
                            SimDuration inter_domain_latency,
                            double domain_capacity, double sla_rate) {
  BbdRequest req;
  req.op = BbdOp::kConfigure;
  req.u64a = domains;
  req.u64b = seed;
  req.u64c = static_cast<std::uint64_t>(inter_domain_latency);
  req.f64a = domain_capacity;
  req.f64b = sla_rate;
  auto res = call(std::move(req));
  return res.ok() ? Status::ok_status() : Status(res.error());
}

Status BbdClient::set_latency(std::size_t i, std::size_t j,
                              SimDuration latency) {
  BbdRequest req;
  req.op = BbdOp::kSetLatency;
  req.u64a = i;
  req.u64b = j;
  req.u64c = static_cast<std::uint64_t>(latency);
  auto res = call(std::move(req));
  return res.ok() ? Status::ok_status() : Status(res.error());
}

Status BbdClient::set_processing_delay(SimDuration delay) {
  BbdRequest req;
  req.op = BbdOp::kSetProcessingDelay;
  req.u64a = static_cast<std::uint64_t>(delay);
  auto res = call(std::move(req));
  return res.ok() ? Status::ok_status() : Status(res.error());
}

Result<std::string> BbdClient::make_user(const std::string& name,
                                         std::size_t home,
                                         bool with_capability,
                                         bool register_everywhere) {
  BbdRequest req;
  req.op = BbdOp::kMakeUser;
  req.stra = name;
  req.u64a = home;
  req.flags = (with_capability ? 1u : 0u) | (register_everywhere ? 2u : 0u);
  auto res = call(std::move(req));
  if (!res.ok()) return res.error();
  return res.value().stra;
}

namespace {

BbdRequest reserve_request(BbdOp op, const BbdClient::ReserveArgs& args) {
  BbdRequest req;
  req.op = op;
  req.stra = args.user;
  req.f64a = args.rate;
  req.u64a = static_cast<std::uint64_t>(args.interval.start);
  req.u64b = static_cast<std::uint64_t>(args.interval.end);
  req.u64c = args.src;
  req.u64d = args.dst_offset_from_end;
  req.flags = (args.is_tunnel ? 1u : 0u) | (args.parallel ? 2u : 0u);
  req.f64b = static_cast<double>(args.at);
  return req;
}

Result<BbdClient::RemoteOutcome> to_outcome(Result<BbdResponse> res) {
  if (!res.ok()) return res.error();
  auto reply = sig::RarReply::decode(res.value().bytes);
  if (!reply.ok()) return reply.error();
  BbdClient::RemoteOutcome outcome;
  outcome.reply = std::move(reply.value());
  outcome.reply_bytes = std::move(res.value().bytes);
  outcome.latency = static_cast<SimDuration>(res.value().u64a);
  outcome.messages = res.value().u64b;
  return outcome;
}

}  // namespace

Result<BbdClient::RemoteOutcome> BbdClient::reserve(const ReserveArgs& args) {
  return to_outcome(call(reserve_request(BbdOp::kReserve, args)));
}

Result<BbdClient::RemoteOutcome> BbdClient::source_reserve(
    const ReserveArgs& args) {
  return to_outcome(call(reserve_request(BbdOp::kSourceReserve, args)));
}

Result<BbdClient::RemoteOutcome> BbdClient::tunnel_reserve(
    const std::string& tunnel_id, const std::string& user_dn, double rate,
    TimeInterval interval, SimTime at) {
  BbdRequest req;
  req.op = BbdOp::kTunnelReserve;
  req.stra = tunnel_id;
  req.strb = user_dn;
  req.f64a = rate;
  req.u64a = static_cast<std::uint64_t>(interval.start);
  req.u64b = static_cast<std::uint64_t>(interval.end);
  req.f64b = static_cast<double>(at);
  return to_outcome(call(std::move(req)));
}

Status BbdClient::release(const std::string& engine,
                          const Bytes& reply_bytes) {
  BbdRequest req;
  req.op = BbdOp::kRelease;
  req.stra = engine;
  req.bytes = reply_bytes;
  auto res = call(std::move(req));
  return res.ok() ? Status::ok_status() : Status(res.error());
}

Status BbdClient::tunnel_release(const std::string& tunnel_id,
                                 const std::string& sub_id) {
  BbdRequest req;
  req.op = BbdOp::kTunnelRelease;
  req.stra = tunnel_id;
  req.strb = sub_id;
  auto res = call(std::move(req));
  return res.ok() ? Status::ok_status() : Status(res.error());
}

Result<BbdClient::Stats> BbdClient::stats(SimTime at) {
  BbdRequest req;
  req.op = BbdOp::kStats;
  req.f64b = static_cast<double>(at);
  auto res = call(std::move(req));
  if (!res.ok()) return res.error();
  Stats stats;
  stats.reservations = res.value().u64a;
  stats.committed = res.value().f64a;
  return stats;
}

Result<double> BbdClient::metric(const std::string& name,
                                 const std::string& labels,
                                 const std::string& field) {
  BbdRequest req;
  req.op = BbdOp::kMetricQuery;
  req.stra = name;
  req.labels = labels;
  req.strb = field;
  auto res = call(std::move(req));
  if (!res.ok()) return res.error();
  return res.value().f64a;
}

Result<std::size_t> BbdClient::snapshot_domain(std::size_t domain) {
  BbdRequest req;
  req.op = BbdOp::kSnapshot;
  req.u64a = domain;
  auto res = call(std::move(req));
  if (!res.ok()) return res.error();
  return static_cast<std::size_t>(res.value().u64a);
}

Status BbdClient::shutdown_daemon() {
  BbdRequest req;
  req.op = BbdOp::kShutdown;
  auto res = call(std::move(req));
  return res.ok() ? Status::ok_status() : Status(res.error());
}

}  // namespace e2e::net
