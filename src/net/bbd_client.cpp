#include "net/bbd_client.hpp"

#include <utility>

namespace e2e::net {

Result<BbdClient> BbdClient::connect(const Options& options) {
  auto socket = StreamSocket::connect(options.connect_to);
  if (!socket.ok()) return socket.error();
  const ServiceIdentity identity = make_service_identity(options.auth_seed);
  // Client nonce entropy; deliberately a different stream from the
  // daemon's so the two sides never draw identical nonces.
  Rng rng(options.auth_seed ^ 0x6262642d636c6e74ull);
  sig::HandshakeInitiator initiator(identity.client_endpoint(), 0, rng);
  if (auto sent = socket.value().send_frame(initiator.client_hello());
      !sent.ok()) {
    return sent.error();
  }
  auto server_hello = socket.value().recv_frame(options.call_timeout);
  if (!server_hello.ok()) return server_hello.error();
  auto finished = initiator.on_server_hello(server_hello.value());
  if (!finished.ok()) return finished.error();
  if (auto sent = socket.value().send_frame(finished.value()); !sent.ok()) {
    return sent.error();
  }
  return BbdClient(options, std::move(socket.value()),
                   std::move(initiator.session()));
}

Result<BbdResponse> BbdClient::call(BbdRequest request) {
  request.id = next_id_++;
  const sig::Record record = session_.seal(request.encode());
  if (auto sent = socket_.send_frame(sig::encode_record(record));
      !sent.ok()) {
    return sent.error();
  }
  auto frame = socket_.recv_frame(options_.call_timeout);
  if (!frame.ok()) return frame.error();
  auto reply_record = sig::decode_record(frame.value());
  if (!reply_record.ok()) return reply_record.error();
  auto payload = session_.open(reply_record.value());
  if (!payload.ok()) return payload.error();
  auto response = BbdResponse::decode(payload.value());
  if (!response.ok()) return response.error();
  if (response.value().id != request.id) {
    return make_error(ErrorCode::kBadMessage,
                      "response id does not match request",
                      std::to_string(response.value().id));
  }
  if (!response.value().ok) return response.value().to_error();
  return response;
}

Status BbdClient::ping() {
  BbdRequest req;
  req.op = BbdOp::kPing;
  auto res = call(std::move(req));
  return res.ok() ? Status::ok_status() : Status(res.error());
}

Status BbdClient::hello(bool release_on_disconnect) {
  BbdRequest req;
  req.op = BbdOp::kHello;
  req.flags = release_on_disconnect ? 1u : 0u;
  auto res = call(std::move(req));
  return res.ok() ? Status::ok_status() : Status(res.error());
}

Status BbdClient::configure(std::uint64_t domains, std::uint64_t seed,
                            SimDuration inter_domain_latency,
                            double domain_capacity, double sla_rate) {
  BbdRequest req;
  req.op = BbdOp::kConfigure;
  req.u64a = domains;
  req.u64b = seed;
  req.u64c = static_cast<std::uint64_t>(inter_domain_latency);
  req.f64a = domain_capacity;
  req.f64b = sla_rate;
  auto res = call(std::move(req));
  return res.ok() ? Status::ok_status() : Status(res.error());
}

Status BbdClient::set_latency(std::size_t i, std::size_t j,
                              SimDuration latency) {
  BbdRequest req;
  req.op = BbdOp::kSetLatency;
  req.u64a = i;
  req.u64b = j;
  req.u64c = static_cast<std::uint64_t>(latency);
  auto res = call(std::move(req));
  return res.ok() ? Status::ok_status() : Status(res.error());
}

Status BbdClient::set_processing_delay(SimDuration delay) {
  BbdRequest req;
  req.op = BbdOp::kSetProcessingDelay;
  req.u64a = static_cast<std::uint64_t>(delay);
  auto res = call(std::move(req));
  return res.ok() ? Status::ok_status() : Status(res.error());
}

Result<std::string> BbdClient::make_user(const std::string& name,
                                         std::size_t home,
                                         bool with_capability,
                                         bool register_everywhere) {
  BbdRequest req;
  req.op = BbdOp::kMakeUser;
  req.stra = name;
  req.u64a = home;
  req.flags = (with_capability ? 1u : 0u) | (register_everywhere ? 2u : 0u);
  auto res = call(std::move(req));
  if (!res.ok()) return res.error();
  return res.value().stra;
}

namespace {

BbdRequest reserve_request(BbdOp op, const BbdClient::ReserveArgs& args) {
  BbdRequest req;
  req.op = op;
  req.stra = args.user;
  req.f64a = args.rate;
  req.u64a = static_cast<std::uint64_t>(args.interval.start);
  req.u64b = static_cast<std::uint64_t>(args.interval.end);
  req.u64c = args.src;
  req.u64d = args.dst_offset_from_end;
  req.flags = (args.is_tunnel ? 1u : 0u) | (args.parallel ? 2u : 0u);
  req.f64b = static_cast<double>(args.at);
  return req;
}

Result<BbdClient::RemoteOutcome> to_outcome(Result<BbdResponse> res) {
  if (!res.ok()) return res.error();
  auto reply = sig::RarReply::decode(res.value().bytes);
  if (!reply.ok()) return reply.error();
  BbdClient::RemoteOutcome outcome;
  outcome.reply = std::move(reply.value());
  outcome.reply_bytes = std::move(res.value().bytes);
  outcome.latency = static_cast<SimDuration>(res.value().u64a);
  outcome.messages = res.value().u64b;
  return outcome;
}

}  // namespace

Result<BbdClient::RemoteOutcome> BbdClient::reserve(const ReserveArgs& args) {
  return to_outcome(call(reserve_request(BbdOp::kReserve, args)));
}

Result<BbdClient::RemoteOutcome> BbdClient::source_reserve(
    const ReserveArgs& args) {
  return to_outcome(call(reserve_request(BbdOp::kSourceReserve, args)));
}

Result<BbdClient::RemoteOutcome> BbdClient::tunnel_reserve(
    const std::string& tunnel_id, const std::string& user_dn, double rate,
    TimeInterval interval, SimTime at) {
  BbdRequest req;
  req.op = BbdOp::kTunnelReserve;
  req.stra = tunnel_id;
  req.strb = user_dn;
  req.f64a = rate;
  req.u64a = static_cast<std::uint64_t>(interval.start);
  req.u64b = static_cast<std::uint64_t>(interval.end);
  req.f64b = static_cast<double>(at);
  return to_outcome(call(std::move(req)));
}

Status BbdClient::release(const std::string& engine,
                          const Bytes& reply_bytes) {
  BbdRequest req;
  req.op = BbdOp::kRelease;
  req.stra = engine;
  req.bytes = reply_bytes;
  auto res = call(std::move(req));
  return res.ok() ? Status::ok_status() : Status(res.error());
}

Status BbdClient::tunnel_release(const std::string& tunnel_id,
                                 const std::string& sub_id) {
  BbdRequest req;
  req.op = BbdOp::kTunnelRelease;
  req.stra = tunnel_id;
  req.strb = sub_id;
  auto res = call(std::move(req));
  return res.ok() ? Status::ok_status() : Status(res.error());
}

Result<BbdClient::Stats> BbdClient::stats(SimTime at) {
  BbdRequest req;
  req.op = BbdOp::kStats;
  req.f64b = static_cast<double>(at);
  auto res = call(std::move(req));
  if (!res.ok()) return res.error();
  Stats stats;
  stats.reservations = res.value().u64a;
  stats.committed = res.value().f64a;
  return stats;
}

Result<double> BbdClient::metric(const std::string& name,
                                 const std::string& labels,
                                 const std::string& field) {
  BbdRequest req;
  req.op = BbdOp::kMetricQuery;
  req.stra = name;
  req.labels = labels;
  req.strb = field;
  auto res = call(std::move(req));
  if (!res.ok()) return res.error();
  return res.value().f64a;
}

Result<std::size_t> BbdClient::snapshot_domain(std::size_t domain) {
  BbdRequest req;
  req.op = BbdOp::kSnapshot;
  req.u64a = domain;
  auto res = call(std::move(req));
  if (!res.ok()) return res.error();
  return static_cast<std::size_t>(res.value().u64a);
}

Status BbdClient::shutdown_daemon() {
  BbdRequest req;
  req.op = BbdOp::kShutdown;
  auto res = call(std::move(req));
  return res.ok() ? Status::ok_status() : Status(res.error());
}

}  // namespace e2e::net
