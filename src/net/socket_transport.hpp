// sig::Transport over real sockets.
//
// The in-memory Fabric models the wide-area control plane; SocketTransport
// replaces the model with actual byte streams so the same engine and test
// code can run across OS processes. The topology is a hub: a SocketHub
// (an event-loop StreamServer on its own thread, or inside the bbd
// daemon's process) routes envelopes between named parties, each of which
// holds one framed stream connection to the hub. Parties register with a
// Hello envelope; messages addressed to a party that has not registered
// yet are buffered at the hub and flushed on registration — mirroring the
// Fabric's inbox semantics, where a message waits for its receiver.
//
// The modeled surface degenerates honestly: one_way() and
// processing_delay() are zero (latency over sockets is real wall-clock
// time, not a model), and transmit() reports kDelivered once the bytes
// are written — the socket path has no fault injector.
//
// Conformance between the two implementations is pinned by
// tests/net_transport_conformance_test.cpp, which runs one assertion set
// against both.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/tlv.hpp"
#include "net/stream_server.hpp"
#include "net/stream_socket.hpp"
#include "sig/transport.hpp"

namespace e2e::net {

// TLV tags of the hub routing envelope.
namespace hub_tag {
inline constexpr tlv::Tag kHello = 0xE290;     // container {kParty}
inline constexpr tlv::Tag kMessage = 0xE291;   // container
inline constexpr tlv::Tag kParty = 0xE292;     // string
inline constexpr tlv::Tag kFrom = 0xE293;      // string
inline constexpr tlv::Tag kTo = 0xE294;        // string
inline constexpr tlv::Tag kPayload = 0xE295;   // bytes
inline constexpr tlv::Tag kTrace = 0xE296;     // bytes (trace envelope)
}  // namespace hub_tag

/// The router: accepts party connections and forwards message envelopes.
class SocketHub {
 public:
  /// Bind `listen` (tcp:...:0 picks a free port) and start the loop
  /// thread.
  static Result<std::unique_ptr<SocketHub>> start(const Endpoint& listen);
  ~SocketHub();
  SocketHub(const SocketHub&) = delete;
  SocketHub& operator=(const SocketHub&) = delete;

  /// The bound address parties connect to.
  const Endpoint& endpoint() const { return endpoint_; }

  void stop();

 private:
  SocketHub() = default;
  void on_frame(StreamServer::ConnId id, Bytes frame);
  void on_close(StreamServer::ConnId id);

  std::unique_ptr<StreamServer> server_;
  std::thread loop_;
  Endpoint endpoint_;
  // Loop-thread state (callbacks are serialized by the event loop).
  std::map<std::string, StreamServer::ConnId> party_conns_;
  std::map<StreamServer::ConnId, std::string> conn_parties_;
  std::map<std::string, std::vector<Bytes>> undelivered_;
};

/// Client-side transport: one lazy framed connection per named party.
class SocketTransport : public sig::Transport {
 public:
  explicit SocketTransport(Endpoint hub) : hub_(std::move(hub)) {}

  /// Zero: socket latency is wall-clock, not part of the virtual model.
  SimDuration one_way(const std::string&, const std::string&) const override {
    return 0;
  }
  SimDuration processing_delay() const override { return 0; }

  void record_message(const std::string& from, const std::string& to,
                      std::size_t bytes) override;

  sig::Delivery transmit(
      const std::string& from, const std::string& to, BytesView payload,
      const obs::TraceContext* trace_context = nullptr) override;

  Status send(const std::string& from, const std::string& to,
              BytesView payload,
              const obs::TraceContext* trace_context = nullptr) override;

  Result<sig::InboundMessage> receive(const std::string& self,
                                      std::chrono::milliseconds wait) override;

  Stats total() const override;
  void reset_counters() override;

 private:
  /// Connection for `name`, registered with the hub on first use. Caller
  /// must hold mutex_.
  Result<StreamSocket*> party_locked(const std::string& name);

  Endpoint hub_;
  mutable std::mutex mutex_;
  std::map<std::string, StreamSocket> parties_;
  Stats total_;
};

/// Encode one routed message envelope (shared with the daemon's service).
Bytes encode_hub_message(const std::string& from, const std::string& to,
                         BytesView payload,
                         const obs::TraceContext* trace_context);

struct HubMessage {
  std::string from;
  std::string to;
  Bytes payload;
  std::optional<obs::TraceContext> trace_context;
};

/// Decode either envelope kind. A Hello yields an empty `payload` with
/// `from` = the registering party and `to` empty.
Result<HubMessage> decode_hub_frame(BytesView frame, bool& is_hello);

}  // namespace e2e::net
