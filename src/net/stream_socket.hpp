// Blocking stream sockets: endpoint parsing, listen/connect, framed IO.
//
// This is the client-facing half of the stream layer: the daemon's event
// loop (stream_server.hpp) never blocks, but clients — the bbd driver, the
// soak test's worker processes, the benchmarks — want plain call/return
// semantics. StreamSocket wraps a connected fd with send_frame/recv_frame
// that handle the realities of byte streams: short writes are retried
// until the whole frame is out, torn reads are accumulated through a
// FrameDecoder until a full payload exists, and recv deadlines are
// enforced with poll() so a silent peer surfaces as kTimeout instead of a
// hang.
//
// Endpoints are spelled as strings so every tool and test shares one
// parser:   tcp:HOST:PORT    (e.g. tcp:127.0.0.1:7700, port 0 = ephemeral)
//           unix:/PATH       (filesystem UNIX-domain socket)
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "net/stream_framing.hpp"

namespace e2e::net {

struct Endpoint {
  enum class Kind { kTcp, kUnix };
  Kind kind = Kind::kTcp;
  std::string host;         // tcp only
  std::uint16_t port = 0;   // tcp only; 0 asks the kernel for a free port
  std::string path;         // unix only

  /// Parse "tcp:HOST:PORT" or "unix:/PATH".
  static Result<Endpoint> parse(const std::string& spec);
  std::string to_string() const;

  const char* transport_label() const {
    return kind == Kind::kTcp ? "tcp" : "unix";
  }
};

/// A connected stream socket (client side, or handed out by Listener).
/// Move-only; the destructor closes the fd.
class StreamSocket {
 public:
  StreamSocket() = default;
  explicit StreamSocket(int fd) : fd_(fd) {}
  ~StreamSocket();
  StreamSocket(StreamSocket&& other) noexcept;
  StreamSocket& operator=(StreamSocket&& other) noexcept;
  StreamSocket(const StreamSocket&) = delete;
  StreamSocket& operator=(const StreamSocket&) = delete;

  /// Connect to `endpoint` (blocking). kUnavailable on refusal.
  static Result<StreamSocket> connect(const Endpoint& endpoint);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Write one complete frame, retrying short writes until done.
  /// kInvalidArgument over the frame cap; kUnavailable when the peer hung
  /// up mid-write.
  Status send_frame(BytesView payload);

  /// Read the next complete frame, accumulating torn reads. kTimeout when
  /// `deadline` passes first, kUnavailable on EOF/reset (with mid-frame
  /// detail when the peer tore a message in half), kBadMessage on a
  /// framing error.
  Result<Bytes> recv_frame(std::chrono::milliseconds deadline);

  /// Send raw bytes as-is (tests feeding deliberately broken streams).
  Status send_raw(BytesView bytes);

  /// Half-close the write side so the peer reads EOF while our read side
  /// stays open (graceful-shutdown tests).
  void shutdown_write();

  void close();

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

/// A listening socket. Move-only; closes (and unlinks, for UNIX paths) on
/// destruction.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Bind + listen. For tcp:...:0 the chosen port is reflected in
  /// local_endpoint(). An existing UNIX socket path is unlinked first
  /// (stale socket from a crashed daemon).
  static Result<Listener> listen(const Endpoint& endpoint, int backlog = 64);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// The bound address, with the kernel-assigned port filled in.
  const Endpoint& local_endpoint() const { return endpoint_; }

  /// Accept one connection (blocking).
  Result<StreamSocket> accept();

  void close();

 private:
  int fd_ = -1;
  Endpoint endpoint_;
};

}  // namespace e2e::net
