// Packets and per-hop behaviour classes.
#pragma once

#include <cstdint>

#include "common/clock.hpp"

namespace e2e::net {

using FlowId = std::uint32_t;

/// DiffServ per-hop-behaviour class. The paper's mechanism only needs the
/// premium (EF) aggregate and best-effort; packets are marked EF by the
/// first (edge) router and treated as an aggregate everywhere else.
enum class TrafficClass : std::uint8_t {
  kExpedited = 0,  // EF — reserved/premium aggregate
  kBestEffort = 1,
};

constexpr const char* to_string(TrafficClass c) {
  return c == TrafficClass::kExpedited ? "EF" : "BE";
}

struct Packet {
  std::uint64_t id = 0;
  FlowId flow = 0;
  std::uint32_t size_bits = 0;
  TrafficClass cls = TrafficClass::kBestEffort;
  SimTime created = 0;
  /// Set when an edge policer downgrades an out-of-profile EF packet.
  bool downgraded = false;
};

}  // namespace e2e::net
