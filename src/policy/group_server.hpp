// Group server — validates assertions about group membership.
//
// Paper §5: "the policy might say 'approved if group server P validates the
// user as a physicist'; if the user's request includes the assertion 'I am
// a physicist', then the policy server verifies that assertion by
// contacting that group server, passing the user's supplied identity
// certificate."
#pragma once

#include <atomic>
#include <map>
#include <set>
#include <string>

#include "crypto/dn.hpp"

namespace e2e::policy {

class GroupServer {
 public:
  explicit GroupServer(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void add_member(const std::string& group, const crypto::DistinguishedName& member) {
    groups_[group].insert(member.to_string());
  }
  void remove_member(const std::string& group,
                     const crypto::DistinguishedName& member) {
    const auto it = groups_.find(group);
    if (it != groups_.end()) it->second.erase(member.to_string());
  }

  /// Validate the assertion "`member` belongs to `group`". `lookups()`
  /// counts server contacts for the benchmarks. Safe to call from
  /// concurrent readers (membership mutation is setup-time only).
  bool validate(const std::string& group,
                const crypto::DistinguishedName& member) const {
    lookups_.fetch_add(1, std::memory_order_relaxed);
    const auto it = groups_.find(group);
    return it != groups_.end() && it->second.contains(member.to_string());
  }

  std::size_t lookups() const {
    return lookups_.load(std::memory_order_relaxed);
  }
  std::size_t group_count() const { return groups_.size(); }

 private:
  std::string name_;
  std::map<std::string, std::set<std::string>> groups_;
  mutable std::atomic<std::size_t> lookups_{0};
};

}  // namespace e2e::policy
