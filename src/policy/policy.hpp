// Compiled policy: parse once, evaluate per request.
#pragma once

#include <memory>
#include <string>

#include "common/result.hpp"
#include "policy/evaluator.hpp"
#include "policy/parser.hpp"

namespace e2e::policy {

class Policy {
 public:
  Policy() = default;

  /// Compile a policy file. The source text is retained for diagnostics.
  static Result<Policy> compile(std::string source);

  bool valid() const { return program_ != nullptr; }
  const std::string& source() const { return source_; }

  /// Evaluate against a context. NoDecision maps to the `default_decision`
  /// (closed-world DENY by default).
  Result<Evaluation> evaluate(const EvalContext& ctx) const;
  Result<Decision> decide(const EvalContext& ctx,
                          Decision default_decision = Decision::kDeny) const;

 private:
  std::string source_;
  std::shared_ptr<const Program> program_;
};

}  // namespace e2e::policy
