// Community Authorization Server (CAS).
//
// Paper §6.5 / Fig. 7: during "grid-login" the user receives from the CAS a
// capability certificate that "simply contains all capabilities of the
// ESnet group in the X509v3 extension field. The certificate itself lists a
// public proxy key, the DN of the user ... and the CAS, as well as the
// signature of the CAS. In addition to the capability certificate, the user
// owns the private key corresponding to the public proxy key."
#pragma once

#include <string>
#include <vector>

#include "crypto/ca.hpp"
#include "crypto/x509.hpp"

namespace e2e::policy {

class CommunityAuthorizationServer {
 public:
  /// `community` names the community whose capabilities this server grants
  /// (e.g. "ESnet").
  CommunityAuthorizationServer(std::string community, Rng& rng,
                               TimeInterval validity, unsigned key_bits = 512)
      : community_(std::move(community)),
        ca_(crypto::DistinguishedName::make("CAS", community_), rng, validity,
            key_bits) {}

  const std::string& community() const { return community_; }
  const crypto::DistinguishedName& dn() const { return ca_.name(); }
  const crypto::Certificate& root_certificate() const {
    return ca_.root_certificate();
  }
  const crypto::PublicKey& public_key() const { return ca_.public_key(); }

  /// Grid-login: bind the user's *proxy* public key to a capability
  /// certificate carrying the community's capabilities.
  crypto::Certificate grid_login(const crypto::DistinguishedName& user,
                                 const crypto::PublicKey& proxy_key,
                                 TimeInterval validity,
                                 std::vector<std::string> capabilities = {}) {
    std::string cap_list;
    if (capabilities.empty()) {
      cap_list = "Capabilities of " + community_;
    } else {
      for (const auto& c : capabilities) {
        if (!cap_list.empty()) cap_list += ",";
        cap_list += c;
      }
    }
    return ca_.issue(user, proxy_key, validity,
                     {crypto::Extension{crypto::kExtCapabilityFlag,
                                        /*critical=*/false, ""},
                      crypto::Extension{crypto::kExtCapabilities,
                                        /*critical=*/false, cap_list},
                      crypto::Extension{crypto::kExtCommunity,
                                        /*critical=*/false, community_}});
  }

  void revoke(std::uint64_t serial) { ca_.revoke(serial); }
  bool is_revoked(std::uint64_t serial) const { return ca_.is_revoked(serial); }

 private:
  std::string community_;
  crypto::CertificateAuthority ca_;
};

}  // namespace e2e::policy
