// Evaluator for parsed policy programs.
//
// Semantics (matching the paper's example policies):
// - Statements run in order; the first executed Return decides.
// - Falling off the end yields Decision::kNoDecision; brokers treat that as
//   DENY (closed world) unless configured otherwise.
// - Built-in identifiers: Time (microseconds since virtual midnight),
//   Avail_BW (bits/s), Group (special: "Group = X" tests membership of X),
//   Capability (special: used via Issued_by(Capability) = Community).
// - Unknown bare identifiers evaluate to their own name as a string, so
//   "User = Alice" compares the User attribute against "Alice".
// - Built-in predicate: Issued_by(Capability) -> issuer community of a held
//   capability; with several capabilities, the comparison "Issued_by(...) =
//   X" is true if ANY validated capability was issued by X.
#pragma once

#include "common/result.hpp"
#include "policy/ast.hpp"
#include "policy/context.hpp"

namespace e2e::policy {

struct Evaluation {
  Decision decision = Decision::kNoDecision;
  /// Line of the Return that fired (0 when no decision).
  int decided_at_line = 0;
};

/// Evaluate `program` against `ctx`. Returns an error only for *evaluation*
/// failures (type confusion, unknown predicate) — policy denials are a
/// Decision, not an error.
Result<Evaluation> evaluate(const Program& program, const EvalContext& ctx);

}  // namespace e2e::policy
