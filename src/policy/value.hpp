// Typed values for the policy language.
//
// The propagation protocol is "independent of policy syntax" (paper §4); the
// engine built here implements the example syntax of Figures 1 and 6 (the
// syntax the domains in the paper's scenario agreed on). Values are what
// policy expressions produce: booleans, numbers (bandwidth in bits/s,
// time-of-day in microseconds), and strings.
#pragma once

#include <string>
#include <variant>

#include "common/result.hpp"

namespace e2e::policy {

class Value {
 public:
  Value() = default;
  explicit Value(bool b) : v_(b) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  bool as_bool() const;      // throws std::logic_error on type mismatch
  double as_number() const;  // throws std::logic_error on type mismatch
  const std::string& as_string() const;

  /// Truthiness used by `if`: bool -> itself; null -> false; number -> != 0;
  /// string -> non-empty.
  bool truthy() const;

  /// Equality as the policy language defines it: same-type comparison;
  /// null equals nothing (including null).
  bool equals(const Value& o) const;

  std::string to_text() const;

 private:
  std::variant<std::monostate, bool, double, std::string> v_;
};

}  // namespace e2e::policy
