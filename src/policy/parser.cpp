#include "policy/parser.hpp"

namespace e2e::policy {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> parse_program() {
    Program prog;
    while (!check(TokenKind::kEnd)) {
      auto stmt = parse_stmt();
      if (!stmt) return stmt.error();
      prog.statements.push_back(std::move(*stmt));
    }
    return prog;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  const Token& advance() { return tokens_[pos_++]; }
  bool check(TokenKind k) const { return peek().kind == k; }
  bool match(TokenKind k) {
    if (!check(k)) return false;
    ++pos_;
    return true;
  }

  Error err(const std::string& msg) const {
    return make_error(ErrorCode::kInvalidArgument,
                      "policy line " + std::to_string(peek().line) + ": " +
                          msg + " (got " + token_kind_name(peek().kind) + ")");
  }

  Result<StmtPtr> parse_stmt() {
    if (check(TokenKind::kIf)) return parse_if();
    if (check(TokenKind::kReturn)) return parse_return();
    return err("expected If or Return");
  }

  Result<StmtPtr> parse_return() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kReturn;
    stmt->line = peek().line;
    advance();  // Return
    if (match(TokenKind::kGrant)) {
      stmt->decision = Decision::kGrant;
    } else if (match(TokenKind::kDeny)) {
      stmt->decision = Decision::kDeny;
    } else {
      return err("expected GRANT or DENY");
    }
    return StmtPtr(std::move(stmt));
  }

  Result<StmtPtr> parse_if() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kIf;
    stmt->line = peek().line;
    advance();  // If
    auto cond = parse_expr();
    if (!cond) return cond.error();
    stmt->condition = std::move(*cond);

    auto then_block = parse_block();
    if (!then_block) return then_block.error();
    stmt->then_block = std::move(*then_block);

    if (match(TokenKind::kElse)) {
      if (check(TokenKind::kIf)) {
        auto nested = parse_if();
        if (!nested) return nested.error();
        stmt->else_block.push_back(std::move(*nested));
      } else {
        auto else_block = parse_block();
        if (!else_block) return else_block.error();
        stmt->else_block = std::move(*else_block);
      }
    }
    return StmtPtr(std::move(stmt));
  }

  Result<std::vector<StmtPtr>> parse_block() {
    std::vector<StmtPtr> block;
    if (match(TokenKind::kLBrace)) {
      while (!check(TokenKind::kRBrace)) {
        if (check(TokenKind::kEnd)) return err("unterminated block");
        auto stmt = parse_stmt();
        if (!stmt) return stmt.error();
        block.push_back(std::move(*stmt));
      }
      advance();  // }
      return block;
    }
    // Single-statement block.
    auto stmt = parse_stmt();
    if (!stmt) return stmt.error();
    block.push_back(std::move(*stmt));
    return block;
  }

  Result<ExprPtr> parse_expr() { return parse_or(); }

  Result<ExprPtr> parse_or() {
    auto lhs = parse_and();
    if (!lhs) return lhs;
    while (check(TokenKind::kOr)) {
      const int line = peek().line;
      advance();
      auto rhs = parse_and();
      if (!rhs) return rhs;
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->binary_op = BinaryOp::kOr;
      node->lhs = std::move(*lhs);
      node->rhs = std::move(*rhs);
      node->line = line;
      lhs = ExprPtr(std::move(node));
    }
    return lhs;
  }

  Result<ExprPtr> parse_and() {
    auto lhs = parse_not();
    if (!lhs) return lhs;
    while (check(TokenKind::kAnd)) {
      const int line = peek().line;
      advance();
      auto rhs = parse_not();
      if (!rhs) return rhs;
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->binary_op = BinaryOp::kAnd;
      node->lhs = std::move(*lhs);
      node->rhs = std::move(*rhs);
      node->line = line;
      lhs = ExprPtr(std::move(node));
    }
    return lhs;
  }

  Result<ExprPtr> parse_not() {
    if (check(TokenKind::kNot)) {
      const int line = peek().line;
      advance();
      auto operand = parse_not();
      if (!operand) return operand;
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kUnary;
      node->unary_op = UnaryOp::kNot;
      node->lhs = std::move(*operand);
      node->line = line;
      return ExprPtr(std::move(node));
    }
    return parse_comparison();
  }

  Result<ExprPtr> parse_comparison() {
    auto lhs = parse_primary();
    if (!lhs) return lhs;
    BinaryOp op;
    switch (peek().kind) {
      case TokenKind::kEq: op = BinaryOp::kEq; break;
      case TokenKind::kNe: op = BinaryOp::kNe; break;
      case TokenKind::kLt: op = BinaryOp::kLt; break;
      case TokenKind::kLe: op = BinaryOp::kLe; break;
      case TokenKind::kGt: op = BinaryOp::kGt; break;
      case TokenKind::kGe: op = BinaryOp::kGe; break;
      default:
        return lhs;  // bare primary (e.g. a predicate call)
    }
    const int line = peek().line;
    advance();
    auto rhs = parse_primary();
    if (!rhs) return rhs;
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kBinary;
    node->binary_op = op;
    node->lhs = std::move(*lhs);
    node->rhs = std::move(*rhs);
    node->line = line;
    return ExprPtr(std::move(node));
  }

  Result<ExprPtr> parse_primary() {
    const Token& tok = peek();
    if (tok.kind == TokenKind::kNumber || tok.kind == TokenKind::kTimeOfDay) {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kLiteral;
      node->literal = Value(tok.number);
      node->line = tok.line;
      advance();
      return ExprPtr(std::move(node));
    }
    if (tok.kind == TokenKind::kString) {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kLiteral;
      node->literal = Value(tok.text);
      node->line = tok.line;
      advance();
      return ExprPtr(std::move(node));
    }
    if (tok.kind == TokenKind::kLParen) {
      advance();
      auto inner = parse_expr();
      if (!inner) return inner;
      if (!match(TokenKind::kRParen)) return err("expected ')'");
      return inner;
    }
    if (tok.kind == TokenKind::kIdent) {
      auto node = std::make_unique<Expr>();
      node->name = tok.text;
      node->line = tok.line;
      advance();
      if (match(TokenKind::kLParen)) {
        node->kind = Expr::Kind::kCall;
        if (!check(TokenKind::kRParen)) {
          for (;;) {
            auto arg = parse_expr();
            if (!arg) return arg;
            node->args.push_back(std::move(*arg));
            if (!match(TokenKind::kComma)) break;
          }
        }
        if (!match(TokenKind::kRParen)) return err("expected ')' after args");
      } else {
        node->kind = Expr::Kind::kIdent;
      }
      return ExprPtr(std::move(node));
    }
    return err("expected expression");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Program> parse(std::string_view source) {
  auto tokens = lex(source);
  if (!tokens) return tokens.error();
  Parser p(std::move(*tokens));
  return p.parse_program();
}

}  // namespace e2e::policy
