// Policy server — the entity that "encapsulates a BB's admission control
// procedures" (paper §5). When a request comes in, the BB forwards it here;
// the server executes local policy and passes back a result ("yes" or "no")
// and a *modified request*: domain-wide information to add, such as groups
// the end-domain requires, cost offers, traffic-engineering parameters for
// downstream domains, or excess-traffic treatment derived from the SLA
// (paper §6.1, step 2).
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "policy/policy.hpp"

namespace e2e::policy {

/// An attribute-value pair attached to the outgoing request. The propagation
/// protocol treats these as opaque signed payload (paper §4: "simple
/// attribute-value pairs which might be signed by the assigning entity").
struct Augmentation {
  std::string name;
  std::string value;

  bool operator==(const Augmentation&) const = default;
};

struct PolicyReply {
  Decision decision = Decision::kDeny;
  std::string reason;                      // human-readable, for denials
  std::vector<Augmentation> augmentations; // added only on GRANT
};

class PolicyServer {
 public:
  PolicyServer(std::string domain, Policy policy)
      : domain_(std::move(domain)), policy_(std::move(policy)) {}

  const std::string& domain() const { return domain_; }

  /// Unconditional augmentation attached to every granted request
  /// (e.g. traffic-engineering parameters of this domain).
  void add_static_augmentation(Augmentation a) {
    static_augmentations_.push_back(std::move(a));
  }

  /// Conditional augmentation: `rule` may inspect the context and append
  /// attributes (e.g. cost offers that depend on the requested bandwidth).
  using AugmentationRule =
      std::function<void(const EvalContext&, std::vector<Augmentation>&)>;
  void add_augmentation_rule(AugmentationRule rule) {
    rules_.push_back(std::move(rule));
  }

  /// Execute local policy. Evaluation failures are conservative denials.
  PolicyReply decide(const EvalContext& ctx) const;

 private:
  std::string domain_;
  Policy policy_;
  std::vector<Augmentation> static_augmentations_;
  std::vector<AugmentationRule> rules_;
};

}  // namespace e2e::policy
