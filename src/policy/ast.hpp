// AST for the policy language.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "policy/value.hpp"

namespace e2e::policy {

enum class BinaryOp { kEq, kNe, kLt, kLe, kGt, kGe, kAnd, kOr };
enum class UnaryOp { kNot };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind { kLiteral, kIdent, kCall, kBinary, kUnary };
  Kind kind = Kind::kLiteral;

  // kLiteral
  Value literal;
  // kIdent / kCall
  std::string name;
  std::vector<ExprPtr> args;  // kCall
  // kBinary / kUnary
  BinaryOp binary_op = BinaryOp::kEq;
  UnaryOp unary_op = UnaryOp::kNot;
  ExprPtr lhs;
  ExprPtr rhs;

  int line = 0;
};

enum class Decision { kGrant, kDeny, kNoDecision };

constexpr const char* to_string(Decision d) {
  switch (d) {
    case Decision::kGrant: return "GRANT";
    case Decision::kDeny: return "DENY";
    case Decision::kNoDecision: return "NO-DECISION";
  }
  return "?";
}

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind { kIf, kReturn };
  Kind kind = Kind::kReturn;

  // kIf
  ExprPtr condition;
  std::vector<StmtPtr> then_block;
  std::vector<StmtPtr> else_block;  // may hold a single nested kIf (else-if)

  // kReturn
  Decision decision = Decision::kDeny;

  int line = 0;
};

/// A parsed policy file: an ordered list of statements.
struct Program {
  std::vector<StmtPtr> statements;
};

}  // namespace e2e::policy
