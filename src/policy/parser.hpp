// Recursive-descent parser for the policy language.
//
// Grammar (keywords case-insensitive):
//   program   := stmt*
//   stmt      := if_stmt | return_stmt
//   if_stmt   := "If" expr block ("Else" (if_stmt | block))?
//   block     := "{" stmt* "}" | stmt          (single statement allowed)
//   return    := "Return" ("GRANT" | "DENY")
//   expr      := and_expr ("or" and_expr)*
//   and_expr  := not_expr ("and" not_expr)*
//   not_expr  := "not" not_expr | comparison
//   comparison:= primary (cmp_op primary)?
//   primary   := literal | ident | ident "(" expr ("," expr)* ")" | "(" expr ")"
//
// A bare identifier that the evaluation context does not define evaluates to
// its own name as a string — this lets policies read exactly like the
// paper's "If User = Alice" without quoting.
#pragma once

#include "common/result.hpp"
#include "policy/ast.hpp"
#include "policy/lexer.hpp"

namespace e2e::policy {

Result<Program> parse(std::string_view source);

}  // namespace e2e::policy
