// Lexer for the policy-file language of Figures 1 and 6.
//
// Recognized forms, mirroring the paper's examples:
//   If User = Alice { Return GRANT }
//   If Time > 8am and Time < 5pm { If BW <= 10Mb/s { Return GRANT } }
//   Else if Issued_by(Capability) = ESnet { ... }
//   Return DENY
//
// Bandwidth literals carry their unit (10Mb/s -> 10e6 bits/s); time-of-day
// literals (8am, 5pm, 17:30) become microseconds since midnight. Keywords
// are case-insensitive; identifiers keep their case.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace e2e::policy {

enum class TokenKind {
  kIf,
  kElse,
  kReturn,
  kGrant,
  kDeny,
  kAnd,
  kOr,
  kNot,
  kIdent,
  kNumber,   // value in `number` (bandwidth already scaled to bits/s)
  kTimeOfDay,// value in `number` (microseconds since midnight)
  kString,   // text in `text`
  kEq,       // =  or ==
  kNe,       // !=
  kLe,
  kGe,
  kLt,
  kGt,
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    // identifier or string payload
  double number = 0;   // numeric payload
  int line = 0;        // 1-based, for error messages
};

const char* token_kind_name(TokenKind k);

/// Tokenize the whole input. `#` starts a comment to end of line.
Result<std::vector<Token>> lex(std::string_view source);

}  // namespace e2e::policy
