#include "policy/policy_server.hpp"

#include "common/logging.hpp"
#include "obs/audit.hpp"
#include "obs/instruments.hpp"

namespace e2e::policy {

PolicyReply PolicyServer::decide(const EvalContext& ctx) const {
  auto& registry = obs::MetricsRegistry::global();
  auto count_decision = [&](const char* decision) {
    registry
        .counter(obs::kPolicyDecisionsTotal,
                 {{"decision", decision}, {"domain", domain_}})
        .increment();
  };
  // Every evaluation is audited: the decision, the policy line that
  // produced it (0 = no rule fired), and a denial reason when there is one.
  auto audit_policy = [&](const char* decision, int rule_line,
                          const std::string& reason) {
    std::vector<std::pair<std::string, std::string>> fields;
    fields.emplace_back("decision", decision);
    fields.emplace_back("rule_line", std::to_string(rule_line));
    if (!reason.empty()) fields.emplace_back("reason", reason);
    obs::AuditLog::global().append(domain_, obs::audit_kind::kPolicy,
                                   std::move(fields));
  };
  PolicyReply reply;
  auto ev = policy_.evaluate(ctx);
  if (!ev.ok()) {
    reply.decision = Decision::kDeny;
    reply.reason = "policy evaluation failed: " + ev.error().to_text();
    log::warn("policy[" + domain_ + "]") << reply.reason;
    registry
        .counter(obs::kPolicyEvalFailuresTotal, {{"domain", domain_}})
        .increment();
    count_decision("deny");
    audit_policy("deny", 0, reply.reason);
    return reply;
  }
  reply.decision = ev->decision == Decision::kNoDecision ? Decision::kDeny
                                                         : ev->decision;
  if (ev->decision == Decision::kNoDecision) {
    reply.reason = "no policy rule matched (closed-world default deny)";
  } else if (reply.decision == Decision::kDeny) {
    reply.reason =
        "denied by policy rule at line " + std::to_string(ev->decided_at_line);
  }
  if (reply.decision == Decision::kGrant) {
    reply.augmentations = static_augmentations_;
    for (const auto& rule : rules_) {
      rule(ctx, reply.augmentations);
    }
  }
  count_decision(reply.decision == Decision::kGrant ? "grant" : "deny");
  audit_policy(reply.decision == Decision::kGrant ? "grant" : "deny",
               ev->decided_at_line, reply.reason);
  log::info("policy[" + domain_ + "]")
      << "decision=" << to_string(reply.decision)
      << (reply.reason.empty() ? "" : " reason=" + reply.reason);
  return reply;
}

}  // namespace e2e::policy
