#include "policy/policy_server.hpp"

#include "common/logging.hpp"
#include "obs/instruments.hpp"

namespace e2e::policy {

PolicyReply PolicyServer::decide(const EvalContext& ctx) const {
  auto& registry = obs::MetricsRegistry::global();
  auto count_decision = [&](const char* decision) {
    registry
        .counter(obs::kPolicyDecisionsTotal,
                 {{"decision", decision}, {"domain", domain_}})
        .increment();
  };
  PolicyReply reply;
  auto ev = policy_.evaluate(ctx);
  if (!ev.ok()) {
    reply.decision = Decision::kDeny;
    reply.reason = "policy evaluation failed: " + ev.error().to_text();
    log::warn("policy[" + domain_ + "]") << reply.reason;
    registry
        .counter(obs::kPolicyEvalFailuresTotal, {{"domain", domain_}})
        .increment();
    count_decision("deny");
    return reply;
  }
  reply.decision = ev->decision == Decision::kNoDecision ? Decision::kDeny
                                                         : ev->decision;
  if (ev->decision == Decision::kNoDecision) {
    reply.reason = "no policy rule matched (closed-world default deny)";
  } else if (reply.decision == Decision::kDeny) {
    reply.reason =
        "denied by policy rule at line " + std::to_string(ev->decided_at_line);
  }
  if (reply.decision == Decision::kGrant) {
    reply.augmentations = static_augmentations_;
    for (const auto& rule : rules_) {
      rule(ctx, reply.augmentations);
    }
  }
  count_decision(reply.decision == Decision::kGrant ? "grant" : "deny");
  log::info("policy[" + domain_ + "]")
      << "decision=" << to_string(reply.decision)
      << (reply.reason.empty() ? "" : " reason=" + reply.reason);
  return reply;
}

}  // namespace e2e::policy
