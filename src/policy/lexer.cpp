#include "policy/lexer.hpp"

#include <cctype>
#include <cmath>

#include "common/clock.hpp"

namespace e2e::policy {

const char* token_kind_name(TokenKind k) {
  switch (k) {
    case TokenKind::kIf: return "If";
    case TokenKind::kElse: return "Else";
    case TokenKind::kReturn: return "Return";
    case TokenKind::kGrant: return "GRANT";
    case TokenKind::kDeny: return "DENY";
    case TokenKind::kAnd: return "and";
    case TokenKind::kOr: return "or";
    case TokenKind::kNot: return "not";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kTimeOfDay: return "time-of-day";
    case TokenKind::kString: return "string";
    case TokenKind::kEq: return "=";
    case TokenKind::kNe: return "!=";
    case TokenKind::kLe: return "<=";
    case TokenKind::kGe: return ">=";
    case TokenKind::kLt: return "<";
    case TokenKind::kGt: return ">";
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kLBrace: return "{";
    case TokenKind::kRBrace: return "}";
    case TokenKind::kComma: return ",";
    case TokenKind::kEnd: return "end-of-input";
  }
  return "?";
}

namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

Error lex_error(int line, std::string msg) {
  return make_error(ErrorCode::kInvalidArgument,
                    "policy line " + std::to_string(line) + ": " + std::move(msg));
}

/// Scale factor for a bandwidth unit suffix. Decimal (SI) multiples of
/// bits/s; an upper-case B (bytes) multiplies by 8. Returns 0 if unknown.
double unit_scale(std::string_view unit) {
  if (unit.empty()) return 1.0;
  // Strip the "/s" or "ps" suffix if present.
  std::string u(unit);
  if (u.size() >= 2 && (u.substr(u.size() - 2) == "/s")) {
    u = u.substr(0, u.size() - 2);
  } else if (u.size() >= 2 && lower(u).substr(u.size() - 2) == "ps") {
    u = u.substr(0, u.size() - 2);
  }
  if (u.empty()) return 0.0;
  double byte_factor = 1.0;
  const char last = u.back();
  if (last == 'B') {
    byte_factor = 8.0;  // bytes -> bits
    u.pop_back();
  } else if (last == 'b') {
    u.pop_back();
  }
  if (u.empty()) return byte_factor;
  const std::string prefix = lower(u);
  if (prefix == "k") return 1e3 * byte_factor;
  if (prefix == "m") return 1e6 * byte_factor;
  if (prefix == "g") return 1e9 * byte_factor;
  if (prefix == "t") return 1e12 * byte_factor;
  return 0.0;
}

}  // namespace

Result<std::vector<Token>> lex(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1;

  auto push = [&](TokenKind kind, std::string text = {}, double number = 0) {
    out.push_back(Token{kind, std::move(text), number, line});
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (c == '(') { push(TokenKind::kLParen); ++i; continue; }
    if (c == ')') { push(TokenKind::kRParen); ++i; continue; }
    if (c == '{') { push(TokenKind::kLBrace); ++i; continue; }
    if (c == '}') { push(TokenKind::kRBrace); ++i; continue; }
    if (c == ',') { push(TokenKind::kComma); ++i; continue; }
    if (c == '=') {
      ++i;
      if (i < src.size() && src[i] == '=') ++i;
      push(TokenKind::kEq);
      continue;
    }
    if (c == '!') {
      if (i + 1 < src.size() && src[i + 1] == '=') {
        push(TokenKind::kNe);
        i += 2;
        continue;
      }
      return lex_error(line, "unexpected '!'");
    }
    if (c == '<') {
      ++i;
      if (i < src.size() && src[i] == '=') {
        push(TokenKind::kLe);
        ++i;
      } else {
        push(TokenKind::kLt);
      }
      continue;
    }
    if (c == '>') {
      ++i;
      if (i < src.size() && src[i] == '=') {
        push(TokenKind::kGe);
        ++i;
      } else {
        push(TokenKind::kGt);
      }
      continue;
    }
    if (c == '"') {
      ++i;
      std::string text;
      while (i < src.size() && src[i] != '"') {
        if (src[i] == '\n') return lex_error(line, "unterminated string");
        text.push_back(src[i]);
        ++i;
      }
      if (i >= src.size()) return lex_error(line, "unterminated string");
      ++i;  // closing quote
      push(TokenKind::kString, std::move(text));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // Number, possibly: bandwidth unit (10Mb/s), am/pm (8am), HH:MM (17:30).
      std::size_t start = i;
      while (i < src.size() &&
             (std::isdigit(static_cast<unsigned char>(src[i])) ||
              src[i] == '.')) {
        ++i;
      }
      const double base = std::stod(std::string(src.substr(start, i - start)));
      // HH:MM time?
      if (i < src.size() && src[i] == ':' && i + 1 < src.size() &&
          std::isdigit(static_cast<unsigned char>(src[i + 1]))) {
        ++i;
        std::size_t mstart = i;
        while (i < src.size() && std::isdigit(static_cast<unsigned char>(src[i]))) {
          ++i;
        }
        const double mins = std::stod(std::string(src.substr(mstart, i - mstart)));
        if (base >= 24 || mins >= 60) return lex_error(line, "bad HH:MM time");
        push(TokenKind::kTimeOfDay, {},
             static_cast<double>(hours(static_cast<std::int64_t>(base))) +
                 static_cast<double>(minutes(static_cast<std::int64_t>(mins))));
        continue;
      }
      // Suffix letters?
      std::size_t sstart = i;
      while (i < src.size() &&
             (std::isalpha(static_cast<unsigned char>(src[i])) ||
              src[i] == '/')) {
        ++i;
      }
      const std::string suffix(src.substr(sstart, i - sstart));
      if (suffix.empty()) {
        push(TokenKind::kNumber, {}, base);
        continue;
      }
      const std::string ls = lower(suffix);
      if (ls == "am" || ls == "pm") {
        double h = base;
        if (h == 12) h = 0;  // 12am == midnight, 12pm handled below
        if (ls == "pm") h += 12;
        if (h >= 24) return lex_error(line, "bad am/pm hour");
        push(TokenKind::kTimeOfDay, {}, h * 3.6e9);  // hours -> microseconds
        continue;
      }
      const double scale = unit_scale(suffix);
      if (scale == 0.0) {
        return lex_error(line, "unknown unit suffix '" + suffix + "'");
      }
      push(TokenKind::kNumber, {}, base * scale);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[i])) ||
              src[i] == '_')) {
        ++i;
      }
      const std::string word(src.substr(start, i - start));
      const std::string lw = lower(word);
      if (lw == "if") push(TokenKind::kIf);
      else if (lw == "else") push(TokenKind::kElse);
      else if (lw == "return") push(TokenKind::kReturn);
      else if (lw == "grant") push(TokenKind::kGrant);
      else if (lw == "deny") push(TokenKind::kDeny);
      else if (lw == "and") push(TokenKind::kAnd);
      else if (lw == "or") push(TokenKind::kOr);
      else if (lw == "not") push(TokenKind::kNot);
      else push(TokenKind::kIdent, word);
      continue;
    }
    return lex_error(line, std::string("unexpected character '") + c + "'");
  }
  push(TokenKind::kEnd);
  return out;
}

}  // namespace e2e::policy
