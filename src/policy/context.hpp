// Evaluation context: everything a bandwidth broker's policy engine may
// consider when deciding a request (paper §4): request parameters,
// authentication information, authorization information (validated group
// assertions, capability certificates) and SLA information.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "policy/value.hpp"

namespace e2e::policy {

/// A capability the request carries, already authenticity-checked by the
/// caller (the signalling layer verifies the certificate chain; the policy
/// engine only consumes the validated attributes).
struct ValidatedCapability {
  std::string issuer_community;            // e.g. "ESnet"
  std::vector<std::string> capabilities;   // e.g. {"Capabilities of ESnet"}
};

class EvalContext {
 public:
  /// Request parameters and identity attributes: "User", "BW" (bits/s),
  /// "Source", "Destination", "Cost", ...
  void set(std::string name, Value value) {
    attributes_[std::move(name)] = std::move(value);
  }
  /// Bandwidth convenience (bits/s).
  void set_bandwidth(double bits_per_s) { set("BW", Value(bits_per_s)); }
  void set_user(std::string user) { set("User", Value(std::move(user))); }

  /// Virtual time of the decision (drives "Time > 8am" conditions).
  void set_time(SimTime t) { time_ = t; }
  SimTime time() const { return time_; }

  /// Currently available bandwidth, exposed as Avail_BW (paper Fig. 6).
  void set_available_bandwidth(double bits_per_s) {
    avail_bw_ = bits_per_s;
  }
  double available_bandwidth() const { return avail_bw_; }

  /// Validated group memberships (e.g. via a group server).
  void add_group(std::string group) { groups_.insert(std::move(group)); }
  bool in_group(const std::string& group) const {
    return groups_.contains(group);
  }
  const std::set<std::string>& groups() const { return groups_; }

  void add_capability(ValidatedCapability cap) {
    capabilities_.push_back(std::move(cap));
  }
  const std::vector<ValidatedCapability>& capabilities() const {
    return capabilities_;
  }
  bool has_capability_issued_by(const std::string& community) const {
    for (const auto& c : capabilities_) {
      if (c.issuer_community == community) return true;
    }
    return false;
  }

  /// External predicates, e.g. HasValidCPUResv(RAR) delegating to GARA, or
  /// Accredited_Physicist(requestor) delegating to a group server.
  using Predicate = std::function<Value(std::span<const Value>)>;
  void register_predicate(std::string name, Predicate fn) {
    predicates_[std::move(name)] = std::move(fn);
  }
  const Predicate* find_predicate(const std::string& name) const {
    const auto it = predicates_.find(name);
    return it == predicates_.end() ? nullptr : &it->second;
  }

  /// Attribute lookup; null Value if absent.
  Value get(const std::string& name) const {
    const auto it = attributes_.find(name);
    return it == attributes_.end() ? Value() : it->second;
  }
  bool has(const std::string& name) const {
    return attributes_.contains(name);
  }
  const std::map<std::string, Value>& attributes() const {
    return attributes_;
  }

 private:
  std::map<std::string, Value> attributes_;
  std::set<std::string> groups_;
  std::vector<ValidatedCapability> capabilities_;
  std::map<std::string, Predicate> predicates_;
  SimTime time_ = 0;
  double avail_bw_ = 0;
};

}  // namespace e2e::policy
