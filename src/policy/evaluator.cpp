#include "policy/evaluator.hpp"

namespace e2e::policy {

namespace {

Error eval_error(int line, std::string msg) {
  return make_error(ErrorCode::kInvalidArgument,
                    "policy eval line " + std::to_string(line) + ": " +
                        std::move(msg));
}

double time_of_day_us(SimTime t) {
  const std::int64_t day = hours(24);
  std::int64_t rem = t % day;
  if (rem < 0) rem += day;
  return static_cast<double>(rem);
}

class Evaluator {
 public:
  explicit Evaluator(const EvalContext& ctx) : ctx_(ctx) {}

  Result<Evaluation> run(const Program& program) {
    Evaluation out;
    auto status = run_block(program.statements, out);
    if (!status.ok()) return status.error();
    return out;
  }

 private:
  /// Executes statements until a Return fires; returns an error status only
  /// on evaluation failure. `out.decision` != kNoDecision signals the stop.
  Status run_block(const std::vector<StmtPtr>& block, Evaluation& out) {
    for (const auto& stmt : block) {
      if (stmt->kind == Stmt::Kind::kReturn) {
        out.decision = stmt->decision;
        out.decided_at_line = stmt->line;
        return Status::ok_status();
      }
      // If statement.
      auto cond = eval_expr(*stmt->condition);
      if (!cond) return cond.error();
      const auto& branch = cond->truthy() ? stmt->then_block
                                          : stmt->else_block;
      auto status = run_block(branch, out);
      if (!status.ok()) return status;
      if (out.decision != Decision::kNoDecision) return Status::ok_status();
    }
    return Status::ok_status();
  }

  Result<Value> eval_expr(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kLiteral:
        return e.literal;
      case Expr::Kind::kIdent:
        return eval_ident(e);
      case Expr::Kind::kCall:
        return eval_call(e);
      case Expr::Kind::kUnary: {
        auto operand = eval_expr(*e.lhs);
        if (!operand) return operand;
        return Value(!operand->truthy());
      }
      case Expr::Kind::kBinary:
        return eval_binary(e);
    }
    return eval_error(e.line, "corrupt expression");
  }

  Result<Value> eval_ident(const Expr& e) {
    if (e.name == "Time") return Value(time_of_day_us(ctx_.time()));
    if (e.name == "Avail_BW") return Value(ctx_.available_bandwidth());
    if (ctx_.has(e.name)) return ctx_.get(e.name);
    // Paper-style bare words ("Alice", "Network") are string literals.
    return Value(e.name);
  }

  Result<Value> eval_call(const Expr& e) {
    if (const auto* pred = ctx_.find_predicate(e.name)) {
      std::vector<Value> args;
      args.reserve(e.args.size());
      for (const auto& arg : e.args) {
        auto v = eval_expr(*arg);
        if (!v) return v;
        args.push_back(std::move(*v));
      }
      return (*pred)(args);
    }
    if (e.name == "Issued_by") {
      // Only meaningful inside a comparison (handled in eval_binary); a bare
      // Issued_by(Capability) is truthy iff any capability is held.
      return Value(!ctx_.capabilities().empty());
    }
    return eval_error(e.line, "unknown predicate '" + e.name + "'");
  }

  /// "Group = X" membership test (paper Fig. 6, BB-B policy).
  bool is_group_test(const Expr& e) const {
    return (e.binary_op == BinaryOp::kEq || e.binary_op == BinaryOp::kNe) &&
           e.lhs->kind == Expr::Kind::kIdent && e.lhs->name == "Group" &&
           !ctx_.has("Group");
  }

  /// "Issued_by(Capability) = Community" capability-issuer test.
  bool is_issuer_test(const Expr& e) const {
    return (e.binary_op == BinaryOp::kEq || e.binary_op == BinaryOp::kNe) &&
           e.lhs->kind == Expr::Kind::kCall && e.lhs->name == "Issued_by" &&
           ctx_.find_predicate("Issued_by") == nullptr;
  }

  Result<Value> eval_binary(const Expr& e) {
    if (e.binary_op == BinaryOp::kAnd || e.binary_op == BinaryOp::kOr) {
      auto lhs = eval_expr(*e.lhs);
      if (!lhs) return lhs;
      const bool l = lhs->truthy();
      if (e.binary_op == BinaryOp::kAnd && !l) return Value(false);
      if (e.binary_op == BinaryOp::kOr && l) return Value(true);
      auto rhs = eval_expr(*e.rhs);
      if (!rhs) return rhs;
      return Value(rhs->truthy());
    }

    if (is_group_test(e)) {
      auto rhs = eval_expr(*e.rhs);
      if (!rhs) return rhs;
      if (!rhs->is_string()) {
        return eval_error(e.line, "Group comparison needs a group name");
      }
      const bool member = ctx_.in_group(rhs->as_string());
      return Value(e.binary_op == BinaryOp::kEq ? member : !member);
    }

    if (is_issuer_test(e)) {
      auto rhs = eval_expr(*e.rhs);
      if (!rhs) return rhs;
      if (!rhs->is_string()) {
        return eval_error(e.line, "Issued_by comparison needs a community");
      }
      const bool held = ctx_.has_capability_issued_by(rhs->as_string());
      return Value(e.binary_op == BinaryOp::kEq ? held : !held);
    }

    auto lhs = eval_expr(*e.lhs);
    if (!lhs) return lhs;
    auto rhs = eval_expr(*e.rhs);
    if (!rhs) return rhs;

    switch (e.binary_op) {
      case BinaryOp::kEq:
        return Value(lhs->equals(*rhs));
      case BinaryOp::kNe:
        // Null-safe: if either side is null, != is true only when exactly
        // one side is null.
        if (lhs->is_null() || rhs->is_null()) {
          return Value(lhs->is_null() != rhs->is_null());
        }
        return Value(!lhs->equals(*rhs));
      default:
        break;
    }

    if (!lhs->is_number() || !rhs->is_number()) {
      return eval_error(e.line, "ordered comparison needs numbers, got " +
                                    lhs->to_text() + " and " + rhs->to_text());
    }
    const double l = lhs->as_number();
    const double r = rhs->as_number();
    switch (e.binary_op) {
      case BinaryOp::kLt: return Value(l < r);
      case BinaryOp::kLe: return Value(l <= r);
      case BinaryOp::kGt: return Value(l > r);
      case BinaryOp::kGe: return Value(l >= r);
      default: break;
    }
    return eval_error(e.line, "corrupt binary operator");
  }

  const EvalContext& ctx_;
};

}  // namespace

Result<Evaluation> evaluate(const Program& program, const EvalContext& ctx) {
  Evaluator ev(ctx);
  return ev.run(program);
}

}  // namespace e2e::policy
