#include "policy/policy.hpp"

namespace e2e::policy {

Result<Policy> Policy::compile(std::string source) {
  auto program = parse(source);
  if (!program) return program.error();
  Policy p;
  p.source_ = std::move(source);
  p.program_ = std::make_shared<const Program>(std::move(*program));
  return p;
}

Result<Evaluation> Policy::evaluate(const EvalContext& ctx) const {
  if (!program_) {
    return make_error(ErrorCode::kInternal, "evaluating empty policy");
  }
  return e2e::policy::evaluate(*program_, ctx);
}

Result<Decision> Policy::decide(const EvalContext& ctx,
                                Decision default_decision) const {
  auto ev = evaluate(ctx);
  if (!ev) return ev.error();
  if (ev->decision == Decision::kNoDecision) return default_decision;
  return ev->decision;
}

}  // namespace e2e::policy
