// Traditional access control lists, "expressed in terms of the identities
// of individuals who are allowed to use resources" (paper §5, third policy
// style).
#pragma once

#include <map>
#include <set>
#include <string>

#include "crypto/dn.hpp"

namespace e2e::policy {

class AccessControlList {
 public:
  enum class Mode { kAllowList, kDenyList };

  explicit AccessControlList(Mode mode = Mode::kAllowList) : mode_(mode) {}

  void add(const std::string& resource, const crypto::DistinguishedName& dn) {
    entries_[resource].insert(dn.to_string());
  }
  void remove(const std::string& resource,
              const crypto::DistinguishedName& dn) {
    const auto it = entries_.find(resource);
    if (it != entries_.end()) it->second.erase(dn.to_string());
  }

  /// Allow-list mode: permitted iff listed. Deny-list mode: permitted iff
  /// NOT listed.
  bool permits(const std::string& resource,
               const crypto::DistinguishedName& dn) const {
    const auto it = entries_.find(resource);
    const bool listed =
        it != entries_.end() && it->second.contains(dn.to_string());
    return mode_ == Mode::kAllowList ? listed : !listed;
  }

  std::size_t size(const std::string& resource) const {
    const auto it = entries_.find(resource);
    return it == entries_.end() ? 0 : it->second.size();
  }

 private:
  Mode mode_;
  std::map<std::string, std::set<std::string>> entries_;
};

}  // namespace e2e::policy
