#include "policy/value.hpp"

#include <cmath>
#include <stdexcept>

namespace e2e::policy {

bool Value::as_bool() const {
  if (!is_bool()) throw std::logic_error("Value: not a bool: " + to_text());
  return std::get<bool>(v_);
}

double Value::as_number() const {
  if (!is_number()) {
    throw std::logic_error("Value: not a number: " + to_text());
  }
  return std::get<double>(v_);
}

const std::string& Value::as_string() const {
  if (!is_string()) {
    throw std::logic_error("Value: not a string: " + to_text());
  }
  return std::get<std::string>(v_);
}

bool Value::truthy() const {
  if (is_null()) return false;
  if (is_bool()) return std::get<bool>(v_);
  if (is_number()) return std::get<double>(v_) != 0.0;
  return !std::get<std::string>(v_).empty();
}

bool Value::equals(const Value& o) const {
  if (is_null() || o.is_null()) return false;
  if (is_bool() && o.is_bool()) return std::get<bool>(v_) == std::get<bool>(o.v_);
  if (is_number() && o.is_number()) {
    return std::get<double>(v_) == std::get<double>(o.v_);
  }
  if (is_string() && o.is_string()) {
    return std::get<std::string>(v_) == std::get<std::string>(o.v_);
  }
  return false;
}

std::string Value::to_text() const {
  if (is_null()) return "null";
  if (is_bool()) return std::get<bool>(v_) ? "true" : "false";
  if (is_number()) {
    const double d = std::get<double>(v_);
    if (d == std::floor(d) && std::abs(d) < 1e15) {
      return std::to_string(static_cast<long long>(d));
    }
    return std::to_string(d);
  }
  return "\"" + std::get<std::string>(v_) + "\"";
}

}  // namespace e2e::policy
