#include "acct/billing.hpp"

namespace e2e::acct {

std::vector<BillingRecord> BillingLedger::bill_reservation(
    const std::vector<std::string>& domain_path, const std::string& user,
    const bb::ResSpec& spec, const std::string& reservation_id) {
  std::vector<BillingRecord> out;
  if (domain_path.empty()) return out;
  const double mbit_seconds = spec.rate_bits_per_s / 1e6 *
                              to_seconds(spec.interval.length());

  // The user pays the source domain.
  {
    BillingRecord r;
    r.payer = user;
    r.payee = domain_path.front();
    r.mbit_seconds = mbit_seconds;
    r.amount = mbit_seconds * prices_(user, domain_path.front());
    r.reservation_id = reservation_id;
    out.push_back(r);
  }
  // Each transit/destination domain bills its upstream neighbour under the
  // SLA between them.
  for (std::size_t i = 0; i + 1 < domain_path.size(); ++i) {
    BillingRecord r;
    r.payer = domain_path[i];
    r.payee = domain_path[i + 1];
    r.mbit_seconds = mbit_seconds;
    r.amount = mbit_seconds * prices_(domain_path[i], domain_path[i + 1]);
    r.reservation_id = reservation_id;
    out.push_back(r);
  }
  records_.insert(records_.end(), out.begin(), out.end());
  return out;
}

double BillingLedger::balance(const std::string& party) const {
  double total = 0;
  for (const auto& r : records_) {
    if (r.payee == party) total += r.amount;
    if (r.payer == party) total -= r.amount;
  }
  return total;
}

double BillingLedger::total_user_payments() const {
  // A payer that never appears as payee is an end user.
  double total = 0;
  for (const auto& r : records_) {
    bool payer_is_domain = false;
    for (const auto& other : records_) {
      if (other.payee == r.payer) {
        payer_is_domain = true;
        break;
      }
    }
    if (!payer_is_domain) total += r.amount;
  }
  return total;
}

}  // namespace e2e::acct
