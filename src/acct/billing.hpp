// Transitive billing along the SLA chain.
//
// Paper §6.4: "Whenever a domain actually bills the requesting entity for
// the use of the network service, SLAs are already used to set up a
// transitive billing relation in multi-domain networks. When network
// traffic enters domain C through domain B, it is billed using the
// agreement between B and C. B as a transient domain, however, would also
// bill traffic originating from a different domain using the related SLA.
// Finally, the source domain would bill the traffic against the
// originator."
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bb/reservation.hpp"
#include "common/result.hpp"

namespace e2e::acct {

struct BillingRecord {
  std::string payer;   // upstream domain, or the user for the first record
  std::string payee;   // downstream domain providing the service
  /// Megabit-seconds of premium service billed.
  double mbit_seconds = 0;
  double amount = 0;
  std::string reservation_id;
};

class BillingLedger {
 public:
  /// Price per megabit-second charged by `payee` to `payer` — normally the
  /// SLA's price between the two domains.
  using PriceLookup =
      std::function<double(const std::string& payer, const std::string& payee)>;

  explicit BillingLedger(PriceLookup prices) : prices_(std::move(prices)) {}

  /// Generate the transitive billing records for one granted end-to-end
  /// reservation across `domain_path` (source first): each domain bills
  /// its upstream neighbour; the source domain bills the user.
  std::vector<BillingRecord> bill_reservation(
      const std::vector<std::string>& domain_path, const std::string& user,
      const bb::ResSpec& spec, const std::string& reservation_id);

  const std::vector<BillingRecord>& records() const { return records_; }

  /// Net balance of one party: what it receives minus what it pays.
  double balance(const std::string& party) const;

  /// Total money entering the system (paid by end users). In a transitive
  /// scheme every inter-domain payment is both an income and an expense, so
  /// the sum of all balances equals user payments.
  double total_user_payments() const;

  void clear() { records_.clear(); }

 private:
  PriceLookup prices_;
  std::vector<BillingRecord> records_;
};

}  // namespace e2e::acct
