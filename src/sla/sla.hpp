// Service Level Agreement between two peered domains.
//
// Paper §2: "Whenever the network reservation end-points are in different
// domains, a specific contract between peered domains comes into place,
// used by BBs as input for their admission control procedures."
// Paper §6: "While SLAs are used to regulate the services between two
// domains, we extend this agreement by adding information to facilitate the
// trust relationship between two peered BBs. This information includes the
// certificates of the peered BBs as well as the certificate of the issuing
// certificate authority, all used during the SSL handshake."
// The SLA also carries the billing rate used by the transitive billing
// scheme of §6.4.
#pragma once

#include <optional>
#include <string>

#include "crypto/x509.hpp"
#include "sla/sls.hpp"

namespace e2e::sla {

struct ServiceLevelAgreement {
  /// Upstream domain (traffic source side of this contract).
  std::string from_domain;
  /// Downstream domain (traffic sink side).
  std::string to_domain;

  /// Aggregate premium-traffic profile the downstream domain accepts from
  /// the upstream domain.
  ServiceLevelSpec profile;

  /// Trust material exchanged with the contract: peer BB certificate and
  /// the CA that issued it (used to authenticate the signalling channel).
  std::optional<crypto::Certificate> peer_bb_certificate;
  std::optional<crypto::Certificate> peer_ca_certificate;

  /// Price per megabit-second of premium traffic, billed by the downstream
  /// domain to the upstream domain (transitive billing, paper §6.4).
  double price_per_mbit_s = 0.0;

  /// Contract validity window.
  TimeInterval validity{0, 0};

  bool covers(SimTime t) const { return validity.contains(t); }

  /// Does a requested premium rate fit the remaining profile headroom given
  /// `already_committed` bits/s of existing reservations?
  bool admits(double request_bits_per_s, double already_committed) const {
    return already_committed + request_bits_per_s <=
           profile.rate_bits_per_s + 1e-9;
  }
};

}  // namespace e2e::sla
