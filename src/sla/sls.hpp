// Service Level Specification (SLS).
//
// "Service Level Specifications (SLS) are used to describe the appropriate
// QoS parameters that an SLA demands. End-to-end guarantees can then be
// built by a chain of SLSs." (paper §2). The fields follow the QoS
// parameters the paper cites from the IFIP/IEEE IM 2001 framework:
// traffic profile, treatment of excess traffic, delay class, reliability.
#pragma once

#include <string>

#include "common/clock.hpp"

namespace e2e::sla {

/// What a policer does with out-of-profile premium traffic.
enum class ExcessTreatment : std::uint8_t {
  kDrop = 0,       // discard the extra traffic
  kDowngrade = 1,  // remark to best-effort ("downgrade", paper Fig. 4)
};

constexpr const char* to_string(ExcessTreatment t) {
  return t == ExcessTreatment::kDrop ? "drop" : "downgrade";
}

struct ServiceLevelSpec {
  /// Committed premium rate in bits/s.
  double rate_bits_per_s = 0;
  /// Token-bucket burst allowance in bits.
  double burst_bits = 0;
  /// Treatment of traffic exceeding the profile.
  ExcessTreatment excess = ExcessTreatment::kDrop;
  /// Upper bound on per-domain queueing delay the service targets (a delay
  /// class, not a hard guarantee in this simulator).
  SimDuration delay_bound = 0;
  /// Expected availability of the service, as a fraction (0.999 = "three
  /// nines"). Informational; propagated for downstream decisions.
  double reliability = 0.999;

  bool operator==(const ServiceLevelSpec&) const = default;

  std::string to_text() const {
    return std::to_string(rate_bits_per_s / 1e6) + " Mb/s, burst " +
           std::to_string(burst_bits / 1e3) + " kb, excess=" +
           to_string(excess);
  }
};

}  // namespace e2e::sla
