// Hop-by-hop inter-BB signalling engine (the paper's Approach 2 and core
// contribution, §3/§6).
//
// "Alice only contacts BB_A, which then propagates the reservation request
// to BB_B only if the reservation was accepted by BB_A. Similarly, BB_B
// contacts BB_C. With this solution, each BB only needs to know about its
// neighboring BBs, and all BBs are always contacted."
//
// Per hop the engine performs the §6.1/§6.2 steps: verify the received RAR
// (transitive trust over the nested signatures), consult the policy server,
// run admission control against the SLA with the upstream peer, delegate
// the capability chain to the next broker (§6.5), append and sign a new
// RAR layer, and forward over the mutually authenticated channel. Denials
// propagate back upstream with their origin; approvals commit hop state and
// (for tunnel requests) establish the direct source<->end signalling
// channel.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bb/bandwidth_broker.hpp"
#include "common/thread_pool.hpp"
#include "crypto/sha256.hpp"
#include "obs/trace.hpp"
#include "policy/group_server.hpp"
#include "sig/channel.hpp"
#include "sig/message.hpp"
#include "sig/retry.hpp"
#include "sig/transport.hpp"
#include "sig/trust.hpp"

namespace e2e::sig {

struct DomainOptions {
  policy::GroupServer* group_server = nullptr;
  /// Groups this domain's policy may reference; membership is validated
  /// against the group server per request.
  std::vector<std::string> relevant_groups;
  /// Resolver for HasValidCPUResv(RAR); bound to GARA by the deployment.
  std::function<bool(const std::string&)> cpu_reservation_checker;
  TrustPolicy trust_policy;
  /// One-way latency between a local user and this domain's BB.
  SimDuration user_link_latency = milliseconds(1);
};

/// What a user holds after grid-login (paper Fig. 7): an identity
/// certificate plus, optionally, a CAS capability certificate and the
/// matching private proxy key.
struct UserCredentials {
  crypto::Certificate identity_certificate;
  crypto::PrivateKey identity_key;
  std::optional<crypto::Certificate> capability_certificate;
  std::optional<crypto::PrivateKey> proxy_key;
};

class HopByHopEngine {
 public:
  HopByHopEngine(Transport& fabric, Rng& rng) : fabric_(&fabric), rng_(&rng) {}

  /// Register a domain's broker with the engine.
  void add_domain(bb::BandwidthBroker& broker, DomainOptions options = {});

  /// Establish the mutually authenticated channel between two peered
  /// domains (part of SLA setup; paper §6). Must be called after both SLAs
  /// installed the peer CA certificates.
  Status connect_peers(const std::string& a, const std::string& b, SimTime at);

  /// Make `domain` trust capability certificates issued by `community`'s
  /// CAS (key distribution for communities is out of band).
  void trust_community(const std::string& domain, const std::string& community,
                       const crypto::PublicKey& cas_key);

  /// Revocation oracle for a community's CAS-issued capability
  /// certificates (CRL stand-in): `revoked(serial)` is consulted for the
  /// root capability certificate during chain validation.
  void set_community_revocation_check(
      const std::string& domain, const std::string& community,
      std::function<bool(std::uint64_t serial)> revoked);

  /// The source-domain BB knows its local users directly (paper §6.1).
  void register_local_user(const std::string& domain,
                           const crypto::Certificate& user_cert);

  /// Bind the HasValidCPUResv(RAR) predicate of a domain to a resolver
  /// (GARA attaches its compute manager here; Fig. 5/6 coupling).
  void set_cpu_reservation_checker(const std::string& domain,
                                   std::function<bool(const std::string&)> fn);

  /// Replace a domain's trust policy after setup (failure-injection tests
  /// tighten max_introduction_depth per hop).
  void set_trust_policy(const std::string& domain, const TrustPolicy& policy);

  /// Retry budget and backoff for every inter-BB exchange (shared by the
  /// hop-by-hop path and the tunnel per-flow path).
  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  /// Drop every per-node request-id reply cache (and the tunnels'
  /// per-flow equivalents). Models cache expiry between scenario runs so
  /// long-lived soak worlds don't serve stale replies for recycled
  /// request ids.
  void forget_completed_requests();

  /// Build the user's signed request (RAR_U): res_spec + DN of the source
  /// BB + the CAS capability certificate + the user's delegation of it to
  /// the source BB (signed with the private proxy key, restricted
  /// "valid for RAR").
  Result<RarMessage> build_user_request(const UserCredentials& user,
                                        const bb::ResSpec& spec,
                                        SimTime at) const;

  struct Outcome {
    RarReply reply;
    /// Modeled end-to-end signalling latency (request submission to final
    /// answer back at the user).
    SimDuration latency = 0;
    std::size_t domains_contacted = 0;
    std::size_t messages = 0;
    /// Wire size of the RAR as received by the destination (grows per hop).
    std::size_t final_wire_bytes = 0;
    /// Request id keying this reservation's spans in the attached
    /// TraceRecorder (empty when none is attached).
    std::string trace_id;
  };

  /// Attach a thread pool used to verify the independent signature layers
  /// of capability chains concurrently (see verify_capability_chain).
  /// Pass nullptr to go back to serial verification. The pool must outlive
  /// the engine's use; results are identical either way.
  void set_verify_pool(ThreadPool* pool) { verify_pool_ = pool; }

  /// Attach a thread pool used to run the two endpoint evaluations of a
  /// batched tunnel allocation concurrently (reserve_in_tunnel_batch).
  /// Pass nullptr to go back to sequential evaluation. The pool must
  /// outlive the engine's use; grants are identical either way.
  void set_admission_pool(ThreadPool* pool) { admission_pool_ = pool; }

  /// Attach a trace recorder: every reserve() then produces a per-request
  /// trace tree (root reservation span, one hop span per broker, step spans
  /// for verify/policy/admission/sign_and_forward) against virtual time.
  /// Pass nullptr to detach. The recorder must outlive the engine's use.
  void set_trace_recorder(obs::TraceRecorder* recorder) {
    tracer_ = recorder;
  }

  /// Attach `domain`'s own recorder. Its spans mirror the engine-wide
  /// recorder's, but cross-domain linkage travels only in the unsigned
  /// transport envelope: downstream hops carry a `remote.parent`
  /// attribute instead of a local parent id, and
  /// obs::SpanCollector::ingest() stitches the per-domain exports back
  /// into one end-to-end tree. Pass nullptr to detach.
  void set_domain_trace_recorder(const std::string& domain,
                                 obs::TraceRecorder* recorder);

  /// Process a user request end to end. The request enters at the source
  /// BB named in its user layer.
  Result<Outcome> reserve(const RarMessage& user_msg, SimTime at);

  /// Release every per-domain reservation of a granted request.
  Status release_end_to_end(const RarReply& reply);

  /// Allocate a per-flow slice inside an established tunnel: only the two
  /// end domains are contacted, over the direct channel created at tunnel
  /// establishment (paper §1/§6.4).
  Result<Outcome> reserve_in_tunnel(const std::string& tunnel_id,
                                    const std::string& user_dn, double rate,
                                    TimeInterval interval, SimTime at);
  Status release_in_tunnel(const std::string& tunnel_id,
                           const std::string& sub_id);

  /// One per-flow request inside a batched tunnel allocation.
  struct TunnelFlowRequest {
    std::string user_dn;
    double rate = 0;
    TimeInterval interval;
  };

  /// Per-flow replies of a batched tunnel allocation, in input order.
  struct TunnelBatchOutcome {
    std::vector<RarReply> replies;
    std::size_t granted = 0;
    /// Modeled end-to-end latency of the whole batch (one wire exchange).
    SimDuration latency = 0;
    std::size_t messages = 0;
  };

  /// Batched tunnel sub-reservations: one wire exchange carries the whole
  /// vector to the destination endpoint, then BOTH end domains evaluate
  /// the full batch against their tunnel pools in one lock acquisition
  /// each (ascending interval.start order; see Tunnel::allocate_batch).
  /// A flow is granted iff both endpoints admit it — one-sided admissions
  /// are rolled back, so the two tunnel halves never diverge. With an
  /// admission pool attached (set_admission_pool) the two endpoint batch
  /// evaluations run concurrently; grants are identical either way because
  /// the endpoints evaluate independent pools. If the exchange exhausts
  /// the retry budget (or the reply leg is lost) nothing is committed and
  /// every flow is denied with kTimeout.
  Result<TunnelBatchOutcome> reserve_in_tunnel_batch(
      const std::string& tunnel_id,
      const std::vector<TunnelFlowRequest>& flows, SimTime at);

  /// Scenario observer: called at each BB with the request as that broker
  /// verified it (drives the Fig. 7 walkthrough).
  using Observer =
      std::function<void(const std::string& domain, const VerifiedRar&)>;
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  /// Established-tunnel inspection (for tests and benches).
  struct TunnelInfo {
    std::string id;
    std::string source_domain;
    std::string destination_domain;
    std::string user_dn;
    double aggregate_rate = 0;
    std::size_t active_flows = 0;
  };
  std::optional<TunnelInfo> tunnel_info(const std::string& id) const;

 private:
  struct Node {
    bb::BandwidthBroker* broker = nullptr;
    DomainOptions options;
    std::map<std::string, Session> sessions;  // peer domain -> channel half
    std::map<std::string, crypto::PublicKey> trusted_cas;  // community -> key
    std::map<std::string, std::function<bool(std::uint64_t)>>
        cas_revocation;  // community -> revocation oracle
    std::map<std::string, crypto::Certificate> local_users;  // DN -> cert
    /// Idempotency cache: replies already produced here, keyed by the
    /// SHA-256 of the request's wire bytes. A retransmitted RAR is answered
    /// from the cache instead of re-admitted.
    std::map<crypto::Digest, RarReply> completed_requests;
    /// This domain's own trace recorder (nullptr = no local recording).
    obs::TraceRecorder* recorder = nullptr;
  };

  struct TunnelRecord {
    std::string id;
    std::string source_domain;
    std::string destination_domain;
    std::string user_dn;
    bb::TunnelId source_handle;
    bb::TunnelId destination_handle;
    Session source_session;       // direct channel, source side
    Session destination_session;  // direct channel, destination side
    std::uint64_t next_sub = 1;
    /// Per-flow idempotency: sub-allocations the destination already
    /// granted, so a retransmitted tunnel-alloc doesn't double-debit.
    std::set<std::string> completed_subs;
  };

  Node* find_node(const std::string& domain);
  const Node* find_node(const std::string& domain) const;
  Node* node_by_dn(const std::string& dn_text);

  /// Tracing state threaded through the recursive hop processing.
  struct TraceCtx {
    std::string trace_id;
    /// Root reservation span all hop spans parent under (0 = tracing off).
    obs::SpanId root = 0;
    /// Virtual time the RAR arrives at the current hop.
    SimTime arrival = 0;
    /// Wire trace context as received at this hop (invalid = no per-domain
    /// recording upstream). Downstream hops parent their local spans under
    /// wire.remote_parent_ref(); the engine re-sends it with hop_count+1.
    obs::TraceContext wire;
    /// Local parent for this hop's domain-recorder span: the source
    /// domain's own root (source hop only — downstream domains link
    /// remotely through `wire`).
    obs::SpanId local_parent = 0;
  };

  /// Recursive per-hop processing; returns the reply travelling upstream.
  RarReply process(const std::string& domain, const RarMessage& msg,
                   const std::string& from_domain, SimTime at,
                   Outcome& outcome, const TraceCtx& trace);

  /// Graceful degradation: the upstream hop gave up on `domain`. If that
  /// node already granted the request (reply cached under `digest`),
  /// release every handle the cached grant carries — modeling the
  /// downstream chain expiring a grant whose confirmation never came.
  void release_orphaned(const std::string& domain,
                        const crypto::Digest& digest);

  /// Validate the capability chain carried by a verified RAR at `node`;
  /// returns the validated capabilities usable by the policy engine (empty
  /// if no chain or no trusted CAS for the community).
  std::vector<policy::ValidatedCapability> validate_capabilities(
      Node& node, const VerifiedRar& vr, SimTime at) const;

  ChannelEndpoint endpoint_for(const Node& node,
                               const crypto::Certificate* pinned = nullptr) const;

  Transport* fabric_;
  Rng* rng_;
  RetryPolicy retry_policy_;
  std::map<std::string, Node> nodes_;
  std::map<std::string, TunnelRecord> tunnels_;
  std::uint64_t next_tunnel_ = 1;
  std::uint64_t next_request_ = 1;
  Observer observer_;
  obs::TraceRecorder* tracer_ = nullptr;
  ThreadPool* verify_pool_ = nullptr;
  ThreadPool* admission_pool_ = nullptr;
};

}  // namespace e2e::sig
