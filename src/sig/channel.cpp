#include "sig/channel.hpp"

#include "common/tlv.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "obs/audit.hpp"
#include "obs/instruments.hpp"
#include "obs/trace.hpp"

namespace e2e::sig {

Record Session::seal(BytesView payload) {
  obs::MetricsRegistry::global()
      .counter(obs::kSigChannelRecordsTotal, {{"op", "seal"}})
      .increment();
  Record rec;
  rec.sequence = next_send_seq_++;
  rec.payload.assign(payload.begin(), payload.end());
  Bytes mac_input;
  tlv::put_be64(mac_input, rec.sequence);
  append(mac_input, payload);
  const crypto::Digest d = crypto::hmac_sha256(send_key_, mac_input);
  rec.mac = crypto::digest_bytes(d);
  return rec;
}

Result<Bytes> Session::open(const Record& record) {
  auto& registry = obs::MetricsRegistry::global();
  registry.counter(obs::kSigChannelRecordsTotal, {{"op", "open"}})
      .increment();
  Bytes mac_input;
  tlv::put_be64(mac_input, record.sequence);
  append(mac_input, record.payload);
  const crypto::Digest d = crypto::hmac_sha256(recv_key_, mac_input);
  if (!equal_ct(record.mac, crypto::digest_bytes(d))) {
    registry.counter(obs::kSigChannelAuthFailuresTotal).increment();
    return make_error(ErrorCode::kAuthenticationFailed,
                      "record MAC verification failed");
  }
  if (record.sequence < expected_recv_seq_) {
    registry.counter(obs::kSigChannelAuthFailuresTotal).increment();
    return make_error(ErrorCode::kAuthenticationFailed,
                      "record replay detected (seq " +
                          std::to_string(record.sequence) + ")");
  }
  expected_recv_seq_ = record.sequence + 1;
  return record.payload;
}

namespace {

/// One side validates the other: certificate chains to a local anchor, is
/// time-valid, and the peer proved possession of the matching private key
/// by signing the handshake transcript.
Status validate_peer(const ChannelEndpoint& self,
                     const crypto::Certificate& peer_cert,
                     BytesView transcript, BytesView proof, SimTime at) {
  const bool pinned =
      self.pinned_peer.has_value() && *self.pinned_peer == peer_cert &&
      peer_cert.valid_at(at);
  if (!pinned) {
    if (self.trust_store == nullptr) {
      return make_error(ErrorCode::kInternal, "endpoint has no trust store");
    }
    auto chain = self.trust_store->verify_chain(peer_cert, {}, at);
    if (!chain.ok()) {
      return make_error(ErrorCode::kAuthenticationFailed,
                        "peer certificate rejected: " +
                            chain.error().to_text());
    }
  }
  if (!crypto::verify(peer_cert.subject_public_key(), transcript, proof)) {
    return make_error(ErrorCode::kAuthenticationFailed,
                      "peer failed proof of key possession");
  }
  return Status::ok_status();
}

}  // namespace

Result<SessionPair> handshake(const ChannelEndpoint& initiator,
                              const ChannelEndpoint& responder, SimTime at,
                              Rng& rng) {
  auto& registry = obs::MetricsRegistry::global();
  auto count_handshake = [&registry](const char* result) {
    registry
        .counter(obs::kSigChannelHandshakesTotal, {{"result", result}})
        .increment();
  };
  // Audit the mutual authentication — but only when a span is active:
  // world-setup handshakes (SLA peering before any RAR exists) would
  // otherwise flood the log with records that join to no trace.
  auto audit_peer_auth = [&](const char* result, const std::string& reason) {
    if (!obs::current_span_ref().valid()) return;
    std::vector<std::pair<std::string, std::string>> fields;
    fields.emplace_back("result", result);
    fields.emplace_back("initiator",
                        initiator.certificate.subject().to_string());
    fields.emplace_back("responder",
                        responder.certificate.subject().to_string());
    if (!reason.empty()) fields.emplace_back("reason", reason);
    obs::AuditLog::global().append(
        initiator.certificate.subject().to_string(),
        obs::audit_kind::kPeerAuth, std::move(fields));
  };
  // Hello nonces.
  Bytes nonce_i(32), nonce_r(32);
  for (auto& b : nonce_i) b = static_cast<std::uint8_t>(rng.next_u64());
  for (auto& b : nonce_r) b = static_cast<std::uint8_t>(rng.next_u64());

  // Transcript covers both certificates and both nonces.
  Bytes transcript;
  append(transcript, initiator.certificate.encode());
  append(transcript, responder.certificate.encode());
  append(transcript, nonce_i);
  append(transcript, nonce_r);

  const Bytes proof_i = crypto::sign(initiator.private_key, transcript);
  const Bytes proof_r = crypto::sign(responder.private_key, transcript);

  auto check_r =
      validate_peer(initiator, responder.certificate, transcript, proof_r, at);
  if (!check_r.ok()) {
    count_handshake("fail");
    audit_peer_auth("fail", check_r.error().message);
    return check_r.error();
  }
  auto check_i =
      validate_peer(responder, initiator.certificate, transcript, proof_i, at);
  if (!check_i.ok()) {
    count_handshake("fail");
    audit_peer_auth("fail", check_i.error().message);
    return check_i.error();
  }

  // Both proofs are public in this exchange; the session secret mixes them
  // with the nonces. (A real deployment would run a key exchange here; the
  // simulation only needs both ends to agree on keys — see DESIGN.md.)
  Bytes secret_input;
  append(secret_input, proof_i);
  append(secret_input, proof_r);
  append(secret_input, transcript);
  const Bytes secret = crypto::digest_bytes(crypto::sha256(secret_input));

  Bytes i_to_r = crypto::derive_key(secret, "initiator->responder", 32);
  Bytes r_to_i = crypto::derive_key(secret, "responder->initiator", 32);

  SessionPair pair;
  pair.initiator = Session(responder.certificate, i_to_r, r_to_i);
  pair.responder = Session(initiator.certificate, r_to_i, i_to_r);
  count_handshake("ok");
  audit_peer_auth("ok", "");
  return pair;
}

}  // namespace e2e::sig
