#include "sig/channel.hpp"

#include "common/tlv.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "obs/audit.hpp"
#include "obs/instruments.hpp"
#include "obs/trace.hpp"

namespace e2e::sig {

Record Session::seal(BytesView payload) {
  obs::MetricsRegistry::global()
      .counter(obs::kSigChannelRecordsTotal, {{"op", "seal"}})
      .increment();
  Record rec;
  rec.sequence = next_send_seq_++;
  rec.payload.assign(payload.begin(), payload.end());
  Bytes mac_input;
  tlv::put_be64(mac_input, rec.sequence);
  append(mac_input, payload);
  const crypto::Digest d = crypto::hmac_sha256(send_key_, mac_input);
  rec.mac = crypto::digest_bytes(d);
  return rec;
}

Result<Bytes> Session::open(const Record& record) {
  auto& registry = obs::MetricsRegistry::global();
  registry.counter(obs::kSigChannelRecordsTotal, {{"op", "open"}})
      .increment();
  Bytes mac_input;
  tlv::put_be64(mac_input, record.sequence);
  append(mac_input, record.payload);
  const crypto::Digest d = crypto::hmac_sha256(recv_key_, mac_input);
  if (!equal_ct(record.mac, crypto::digest_bytes(d))) {
    registry.counter(obs::kSigChannelAuthFailuresTotal).increment();
    return make_error(ErrorCode::kAuthenticationFailed,
                      "record MAC verification failed");
  }
  if (record.sequence < expected_recv_seq_) {
    registry.counter(obs::kSigChannelAuthFailuresTotal).increment();
    return make_error(ErrorCode::kAuthenticationFailed,
                      "record replay detected (seq " +
                          std::to_string(record.sequence) + ")");
  }
  expected_recv_seq_ = record.sequence + 1;
  return record.payload;
}

namespace {

/// One side validates the other: certificate chains to a local anchor, is
/// time-valid, and the peer proved possession of the matching private key
/// by signing the handshake transcript.
Status validate_peer(const ChannelEndpoint& self,
                     const crypto::Certificate& peer_cert,
                     BytesView transcript, BytesView proof, SimTime at) {
  const bool pinned =
      self.pinned_peer.has_value() && *self.pinned_peer == peer_cert &&
      peer_cert.valid_at(at);
  if (!pinned) {
    if (self.trust_store == nullptr) {
      return make_error(ErrorCode::kInternal, "endpoint has no trust store");
    }
    auto chain = self.trust_store->verify_chain(peer_cert, {}, at);
    if (!chain.ok()) {
      return make_error(ErrorCode::kAuthenticationFailed,
                        "peer certificate rejected: " +
                            chain.error().to_text());
    }
  }
  if (!crypto::verify(peer_cert.subject_public_key(), transcript, proof)) {
    return make_error(ErrorCode::kAuthenticationFailed,
                      "peer failed proof of key possession");
  }
  return Status::ok_status();
}

}  // namespace

Result<SessionPair> handshake(const ChannelEndpoint& initiator,
                              const ChannelEndpoint& responder, SimTime at,
                              Rng& rng) {
  auto& registry = obs::MetricsRegistry::global();
  auto count_handshake = [&registry](const char* result) {
    registry
        .counter(obs::kSigChannelHandshakesTotal, {{"result", result}})
        .increment();
  };
  // Audit the mutual authentication — but only when a span is active:
  // world-setup handshakes (SLA peering before any RAR exists) would
  // otherwise flood the log with records that join to no trace.
  auto audit_peer_auth = [&](const char* result, const std::string& reason) {
    if (!obs::current_span_ref().valid()) return;
    std::vector<std::pair<std::string, std::string>> fields;
    fields.emplace_back("result", result);
    fields.emplace_back("initiator",
                        initiator.certificate.subject().to_string());
    fields.emplace_back("responder",
                        responder.certificate.subject().to_string());
    if (!reason.empty()) fields.emplace_back("reason", reason);
    obs::AuditLog::global().append(
        initiator.certificate.subject().to_string(),
        obs::audit_kind::kPeerAuth, std::move(fields));
  };
  // Hello nonces.
  Bytes nonce_i(32), nonce_r(32);
  for (auto& b : nonce_i) b = static_cast<std::uint8_t>(rng.next_u64());
  for (auto& b : nonce_r) b = static_cast<std::uint8_t>(rng.next_u64());

  // Transcript covers both certificates and both nonces.
  Bytes transcript;
  append(transcript, initiator.certificate.encode());
  append(transcript, responder.certificate.encode());
  append(transcript, nonce_i);
  append(transcript, nonce_r);

  const Bytes proof_i = crypto::sign(initiator.private_key, transcript);
  const Bytes proof_r = crypto::sign(responder.private_key, transcript);

  auto check_r =
      validate_peer(initiator, responder.certificate, transcript, proof_r, at);
  if (!check_r.ok()) {
    count_handshake("fail");
    audit_peer_auth("fail", check_r.error().message);
    return check_r.error();
  }
  auto check_i =
      validate_peer(responder, initiator.certificate, transcript, proof_i, at);
  if (!check_i.ok()) {
    count_handshake("fail");
    audit_peer_auth("fail", check_i.error().message);
    return check_i.error();
  }

  // Both proofs are public in this exchange; the session secret mixes them
  // with the nonces. (A real deployment would run a key exchange here; the
  // simulation only needs both ends to agree on keys — see DESIGN.md.)
  Bytes secret_input;
  append(secret_input, proof_i);
  append(secret_input, proof_r);
  append(secret_input, transcript);
  const Bytes secret = crypto::digest_bytes(crypto::sha256(secret_input));

  Bytes i_to_r = crypto::derive_key(secret, "initiator->responder", 32);
  Bytes r_to_i = crypto::derive_key(secret, "responder->initiator", 32);

  SessionPair pair;
  pair.initiator = Session(responder.certificate, i_to_r, r_to_i);
  pair.responder = Session(initiator.certificate, r_to_i, i_to_r);
  count_handshake("ok");
  audit_peer_auth("ok", "");
  return pair;
}

namespace {

constexpr std::size_t kNonceBytes = 32;

Bytes draw_nonce(Rng& rng) {
  Bytes nonce(kNonceBytes);
  for (auto& b : nonce) b = static_cast<std::uint8_t>(rng.next_u64());
  return nonce;
}

/// The staged handshake derives the same secret and directional keys as
/// handshake(): sha256(proof_i || proof_r || transcript), split with the
/// fixed direction labels.
std::pair<Bytes, Bytes> derive_session_keys(BytesView proof_i,
                                            BytesView proof_r,
                                            BytesView transcript) {
  Bytes secret_input;
  append(secret_input, proof_i);
  append(secret_input, proof_r);
  append(secret_input, transcript);
  const Bytes secret = crypto::digest_bytes(crypto::sha256(secret_input));
  return {crypto::derive_key(secret, "initiator->responder", 32),
          crypto::derive_key(secret, "responder->initiator", 32)};
}

void count_staged_handshake(const char* result) {
  obs::MetricsRegistry::global()
      .counter(obs::kSigChannelHandshakesTotal, {{"result", result}})
      .increment();
}

}  // namespace

Bytes encode_record(const Record& record) {
  tlv::Writer writer;
  writer.open(channel_tag::kRecord);
  writer.put_u64(channel_tag::kSequence, record.sequence);
  writer.put_bytes(channel_tag::kPayload, record.payload);
  writer.put_bytes(channel_tag::kMac, record.mac);
  writer.close();
  return writer.take();
}

Result<Record> decode_record(BytesView bytes) {
  tlv::Reader outer(bytes);
  auto nested = outer.read_nested(channel_tag::kRecord);
  if (!nested.ok()) return nested.error();
  tlv::Reader& reader = nested.value();
  Record record;
  auto sequence = reader.read_u64(channel_tag::kSequence);
  if (!sequence.ok()) return sequence.error();
  record.sequence = sequence.value();
  auto payload = reader.read_bytes(channel_tag::kPayload);
  if (!payload.ok()) return payload.error();
  record.payload = std::move(payload.value());
  auto mac = reader.read_bytes(channel_tag::kMac);
  if (!mac.ok()) return mac.error();
  record.mac = std::move(mac.value());
  if (!reader.at_end() || !outer.at_end()) {
    return make_error(ErrorCode::kBadMessage, "trailing bytes after record");
  }
  return record;
}

HandshakeInitiator::HandshakeInitiator(ChannelEndpoint endpoint, SimTime at,
                                       Rng& rng)
    : endpoint_(std::move(endpoint)), at_(at), nonce_(draw_nonce(rng)) {}

Bytes HandshakeInitiator::client_hello() {
  hello_sent_ = true;
  tlv::Writer writer;
  writer.open(channel_tag::kClientHello);
  writer.put_bytes(channel_tag::kCertificate, endpoint_.certificate.encode());
  writer.put_bytes(channel_tag::kNonce, nonce_);
  writer.close();
  return writer.take();
}

Result<Bytes> HandshakeInitiator::on_server_hello(BytesView bytes) {
  if (!hello_sent_ || done_) {
    return make_error(ErrorCode::kInvalidArgument,
                      "ServerHello out of handshake order");
  }
  tlv::Reader outer(bytes);
  auto nested = outer.read_nested(channel_tag::kServerHello);
  if (!nested.ok()) {
    count_staged_handshake("fail");
    return nested.error();
  }
  tlv::Reader& reader = nested.value();
  auto cert_bytes = reader.read_bytes(channel_tag::kCertificate);
  if (!cert_bytes.ok()) {
    count_staged_handshake("fail");
    return cert_bytes.error();
  }
  auto nonce_r = reader.read_bytes(channel_tag::kNonce);
  if (!nonce_r.ok()) {
    count_staged_handshake("fail");
    return nonce_r.error();
  }
  auto proof_r = reader.read_bytes(channel_tag::kProof);
  if (!proof_r.ok()) {
    count_staged_handshake("fail");
    return proof_r.error();
  }
  if (nonce_r.value().size() != kNonceBytes) {
    count_staged_handshake("fail");
    return make_error(ErrorCode::kBadMessage, "ServerHello nonce size");
  }
  auto peer_cert = crypto::Certificate::decode(cert_bytes.value());
  if (!peer_cert.ok()) {
    count_staged_handshake("fail");
    return peer_cert.error();
  }

  Bytes transcript;
  append(transcript, endpoint_.certificate.encode());
  append(transcript, cert_bytes.value());
  append(transcript, nonce_);
  append(transcript, nonce_r.value());

  auto check = validate_peer(endpoint_, peer_cert.value(), transcript,
                             proof_r.value(), at_);
  if (!check.ok()) {
    count_staged_handshake("fail");
    return check.error();
  }

  const Bytes proof_i = crypto::sign(endpoint_.private_key, transcript);
  auto [i_to_r, r_to_i] =
      derive_session_keys(proof_i, proof_r.value(), transcript);
  session_ = Session(std::move(peer_cert.value()), std::move(i_to_r),
                     std::move(r_to_i));
  done_ = true;
  count_staged_handshake("ok");

  tlv::Writer writer;
  writer.open(channel_tag::kFinished);
  writer.put_bytes(channel_tag::kProof, proof_i);
  writer.close();
  return writer.take();
}

HandshakeResponder::HandshakeResponder(ChannelEndpoint endpoint, SimTime at,
                                       Rng& rng)
    : endpoint_(std::move(endpoint)), at_(at), nonce_(draw_nonce(rng)) {}

Result<Bytes> HandshakeResponder::on_client_hello(BytesView bytes) {
  if (hello_seen_ || done_) {
    return make_error(ErrorCode::kInvalidArgument,
                      "ClientHello out of handshake order");
  }
  tlv::Reader outer(bytes);
  auto nested = outer.read_nested(channel_tag::kClientHello);
  if (!nested.ok()) return nested.error();
  tlv::Reader& reader = nested.value();
  auto cert_bytes = reader.read_bytes(channel_tag::kCertificate);
  if (!cert_bytes.ok()) return cert_bytes.error();
  auto nonce_i = reader.read_bytes(channel_tag::kNonce);
  if (!nonce_i.ok()) return nonce_i.error();
  if (nonce_i.value().size() != kNonceBytes) {
    return make_error(ErrorCode::kBadMessage, "ClientHello nonce size");
  }
  auto peer_cert = crypto::Certificate::decode(cert_bytes.value());
  if (!peer_cert.ok()) return peer_cert.error();
  peer_cert_ = std::move(peer_cert.value());
  hello_seen_ = true;

  transcript_.clear();
  append(transcript_, cert_bytes.value());
  append(transcript_, endpoint_.certificate.encode());
  append(transcript_, nonce_i.value());
  append(transcript_, nonce_);
  proof_r_ = crypto::sign(endpoint_.private_key, transcript_);

  tlv::Writer writer;
  writer.open(channel_tag::kServerHello);
  writer.put_bytes(channel_tag::kCertificate, endpoint_.certificate.encode());
  writer.put_bytes(channel_tag::kNonce, nonce_);
  writer.put_bytes(channel_tag::kProof, proof_r_);
  writer.close();
  return writer.take();
}

Status HandshakeResponder::on_finished(BytesView bytes) {
  if (!hello_seen_ || done_) {
    return make_error(ErrorCode::kInvalidArgument,
                      "Finished out of handshake order");
  }
  tlv::Reader outer(bytes);
  auto nested = outer.read_nested(channel_tag::kFinished);
  if (!nested.ok()) {
    count_staged_handshake("fail");
    return nested.error();
  }
  auto proof_i = nested.value().read_bytes(channel_tag::kProof);
  if (!proof_i.ok()) {
    count_staged_handshake("fail");
    return proof_i.error();
  }
  auto check =
      validate_peer(endpoint_, peer_cert_, transcript_, proof_i.value(), at_);
  if (!check.ok()) {
    count_staged_handshake("fail");
    return check.error();
  }
  auto [i_to_r, r_to_i] =
      derive_session_keys(proof_i.value(), proof_r_, transcript_);
  session_ = Session(peer_cert_, std::move(r_to_i), std::move(i_to_r));
  done_ = true;
  count_staged_handshake("ok");
  return Status::ok_status();
}

}  // namespace e2e::sig
