// Shared construction of the policy-evaluation context a broker uses for a
// reservation request — the inputs paper §4 enumerates: request parameters,
// authentication information, authorization information (validated group
// assertions and capabilities), and SLA/augmentation information from
// upstream domains.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bb/bandwidth_broker.hpp"
#include "policy/context.hpp"
#include "policy/group_server.hpp"

namespace e2e::sig {

struct ContextInputs {
  const bb::BandwidthBroker* broker = nullptr;
  const bb::ResSpec* spec = nullptr;
  crypto::DistinguishedName user_dn;
  SimTime at = 0;
  /// Attribute-value pairs added by upstream policy servers.
  const std::vector<policy::Augmentation>* augmentations = nullptr;
  /// Group server this domain consults, plus the groups its policy may
  /// reference (the server validates membership per group on demand).
  policy::GroupServer* group_server = nullptr;
  const std::vector<std::string>* relevant_groups = nullptr;
  /// Validated capabilities (already chain-verified by the caller).
  std::vector<policy::ValidatedCapability> capabilities;
  /// Resolver for HasValidCPUResv(RAR) — bound to GARA by the deployment.
  std::function<bool(const std::string&)> cpu_reservation_checker;
};

/// Build the evaluation context. Attributes set: User (common name),
/// UserDN, BW, Source, Destination, Reservation_Type ("Network"),
/// CPU_Reservation_ID, plus one attribute per upstream augmentation;
/// builtin Time and Avail_BW are wired to `at` and the broker's headroom.
inline policy::EvalContext build_policy_context(const ContextInputs& in) {
  policy::EvalContext ctx;
  const bb::ResSpec& spec = *in.spec;
  ctx.set_user(in.user_dn.common_name());
  ctx.set("UserDN", policy::Value(in.user_dn.to_string()));
  ctx.set_bandwidth(spec.rate_bits_per_s);
  ctx.set("Source", policy::Value(spec.source_domain));
  ctx.set("Destination", policy::Value(spec.destination_domain));
  ctx.set("Reservation_Type", policy::Value(std::string("Network")));
  if (!spec.linked_cpu_reservation.empty()) {
    ctx.set("CPU_Reservation_ID",
            policy::Value(spec.linked_cpu_reservation));
  }
  ctx.set_time(in.at);
  ctx.set_available_bandwidth(in.broker->headroom(spec.interval));

  if (in.augmentations != nullptr) {
    for (const auto& aug : *in.augmentations) {
      ctx.set(aug.name, policy::Value(aug.value));
    }
  }
  if (in.group_server != nullptr && in.relevant_groups != nullptr) {
    for (const auto& group : *in.relevant_groups) {
      if (in.group_server->validate(group, in.user_dn)) {
        ctx.add_group(group);
      }
    }
  }
  for (const auto& cap : in.capabilities) {
    ctx.add_capability(cap);
  }
  const std::string cpu_id = spec.linked_cpu_reservation;
  const auto checker = in.cpu_reservation_checker;
  ctx.register_predicate(
      "HasValidCPUResv",
      [cpu_id, checker](std::span<const policy::Value>) {
        return policy::Value(checker && !cpu_id.empty() && checker(cpu_id));
      });
  policy::GroupServer* gs = in.group_server;
  const crypto::DistinguishedName user = in.user_dn;
  ctx.register_predicate(
      "Accredited_Physicist",
      [gs, user](std::span<const policy::Value>) {
        return policy::Value(gs != nullptr && gs->validate("physicists", user));
      });
  return ctx;
}

}  // namespace e2e::sig
