#include "sig/trust.hpp"

#include <algorithm>

#include "obs/instruments.hpp"

namespace e2e::sig {

namespace {

Error auth_error(std::string msg) {
  return make_error(ErrorCode::kAuthenticationFailed, std::move(msg));
}

/// Collect user-supplied and per-layer capability certificates plus
/// augmentations into `out`, innermost first.
void collect_payload(const RarMessage& msg, VerifiedRar& out) {
  out.capability_certs = msg.user_layer().capability_certs;
  for (const auto& layer : msg.broker_layers()) {
    for (const auto& cap : layer.capability_certs) {
      out.capability_certs.push_back(cap);
    }
    for (const auto& aug : layer.augmentations) {
      out.augmentations.push_back(aug);
    }
  }
}

Result<crypto::DistinguishedName> user_dn_of(const bb::ResSpec& spec) {
  auto dn = crypto::DistinguishedName::parse(spec.user);
  if (!dn) {
    return make_error(ErrorCode::kBadMessage,
                      "res_spec.user is not a DN: " + spec.user);
  }
  return dn;
}

}  // namespace

static Result<VerifiedRar> verify_rar_impl(
    const RarMessage& msg, const crypto::Certificate& channel_peer,
    const crypto::DistinguishedName& self_dn,
    const crypto::TrustStore& anchors, const TrustPolicy& policy,
    SimTime at) {
  const auto& layers = msg.broker_layers();
  if (layers.empty()) {
    return auth_error("inter-BB RAR must carry at least one broker layer");
  }
  const std::size_t n = layers.size();

  // 1. The outermost layer must be addressed to us and signed by the
  //    channel-authenticated peer.
  const BrokerLayer& outer = layers[n - 1];
  if (outer.downstream_dn != self_dn.to_string()) {
    return auth_error("RAR addressed to " + outer.downstream_dn + ", not " +
                      self_dn.to_string());
  }
  if (outer.signer_dn != channel_peer.subject().to_string()) {
    return auth_error("outer layer signed by " + outer.signer_dn +
                      " but channel peer is " +
                      channel_peer.subject().to_string());
  }
  if (!msg.verify_broker_signature(n - 1,
                                   channel_peer.subject_public_key())) {
    return make_error(ErrorCode::kBadSignature,
                      "outer broker signature invalid");
  }

  VerifiedRar out;
  out.res_spec = msg.user_layer().res_spec;
  auto user_dn = user_dn_of(out.res_spec);
  if (!user_dn) return user_dn.error();
  out.user_dn = *user_dn;

  // 2. Walk inward. Layer k introduces the certificate of layer k-1's
  //    signer; acceptance is by introduction (web of trust) bounded by the
  //    local depth policy, with anchoring recorded when available.
  std::vector<PathElement> path_rev;  // destination-side first
  path_rev.push_back(PathElement{
      channel_peer.subject(), 0,
      anchors.verify_chain(channel_peer, {}, at).ok()});

  crypto::Certificate current_cert = channel_peer;  // cert of layer k signer
  for (std::size_t k = n - 1; k >= 1; --k) {
    const std::size_t depth = (n - 1) - (k - 1);
    if (depth > policy.max_introduction_depth) {
      return make_error(ErrorCode::kUntrustedKey,
                        "introduction chain exceeds local depth limit (" +
                            std::to_string(policy.max_introduction_depth) +
                            ")");
    }
    auto introduced = crypto::Certificate::decode(layers[k].upstream_certificate);
    if (!introduced) {
      return make_error(ErrorCode::kBadMessage,
                        "layer " + std::to_string(k) +
                            " carries an undecodable upstream certificate");
    }
    if (!introduced->valid_at(at)) {
      return make_error(ErrorCode::kExpired,
                        "introduced certificate for " +
                            introduced->subject().to_string() + " expired");
    }
    if (introduced->subject().to_string() != layers[k - 1].signer_dn) {
      return auth_error("introduced certificate subject " +
                        introduced->subject().to_string() +
                        " does not match layer signer " +
                        layers[k - 1].signer_dn);
    }
    if (!msg.verify_broker_signature(k - 1,
                                     introduced->subject_public_key())) {
      return make_error(ErrorCode::kBadSignature,
                        "signature of layer " + std::to_string(k - 1) +
                            " invalid under introduced key");
    }
    // Path tracing continuity: layer k-1 addressed the broker that signed
    // layer k.
    if (layers[k - 1].downstream_dn != layers[k].signer_dn) {
      return auth_error("path discontinuity: layer " + std::to_string(k - 1) +
                        " addressed " + layers[k - 1].downstream_dn +
                        " but layer " + std::to_string(k) + " was signed by " +
                        layers[k].signer_dn);
    }
    path_rev.push_back(PathElement{
        introduced->subject(), depth,
        anchors.verify_chain(*introduced, {}, at).ok()});
    current_cert = std::move(*introduced);
  }

  // 3. Innermost broker layer introduces the user's identity certificate.
  auto user_cert =
      crypto::Certificate::decode(layers[0].upstream_certificate);
  if (!user_cert) {
    return make_error(ErrorCode::kBadMessage,
                      "layer 0 carries an undecodable user certificate");
  }
  if (!user_cert->valid_at(at)) {
    return make_error(ErrorCode::kExpired, "user certificate expired");
  }
  if (user_cert->subject() != out.user_dn) {
    return auth_error("user certificate subject " +
                      user_cert->subject().to_string() +
                      " does not match res_spec.user " + out.res_spec.user);
  }
  if (!msg.verify_user_signature(user_cert->subject_public_key())) {
    return make_error(ErrorCode::kBadSignature, "user signature invalid");
  }
  // The user addressed the source-domain broker that signed layer 0.
  if (msg.user_layer().source_bb_dn != layers[0].signer_dn) {
    return auth_error("user addressed " + msg.user_layer().source_bb_dn +
                      " but layer 0 was signed by " + layers[0].signer_dn);
  }
  out.user_certificate = std::move(*user_cert);

  // Path in source-first order.
  out.path.assign(path_rev.rbegin(), path_rev.rend());
  collect_payload(msg, out);
  return out;
}

static Result<VerifiedRar> verify_user_request_impl(
    const RarMessage& msg, const crypto::Certificate& user_cert,
    const crypto::DistinguishedName& self_dn, SimTime at) {
  if (!msg.broker_layers().empty()) {
    return auth_error("direct user request must not carry broker layers");
  }
  if (msg.user_layer().source_bb_dn != self_dn.to_string()) {
    return auth_error("request addressed to " + msg.user_layer().source_bb_dn +
                      ", not " + self_dn.to_string());
  }
  if (!user_cert.valid_at(at)) {
    return make_error(ErrorCode::kExpired, "user certificate expired");
  }
  VerifiedRar out;
  out.res_spec = msg.user_layer().res_spec;
  auto user_dn = user_dn_of(out.res_spec);
  if (!user_dn) return user_dn.error();
  out.user_dn = *user_dn;
  if (user_cert.subject() != out.user_dn) {
    return auth_error("user certificate subject mismatch");
  }
  if (!msg.verify_user_signature(user_cert.subject_public_key())) {
    return make_error(ErrorCode::kBadSignature, "user signature invalid");
  }
  out.user_certificate = user_cert;
  collect_payload(msg, out);
  return out;
}

namespace {

/// Count the verification outcome and, for accepted inter-BB RARs, record
/// the deepest introduction step the verifier had to trust.
Result<VerifiedRar> metered(Result<VerifiedRar> result) {
  auto& registry = obs::MetricsRegistry::global();
  registry
      .counter(obs::kSigTrustVerificationsTotal,
               {{"result", result.ok() ? "ok" : "fail"}})
      .increment();
  if (result.ok() && !result->path.empty()) {
    std::size_t deepest = 0;
    for (const auto& elem : result->path) {
      deepest = std::max(deepest, elem.introduction_depth);
    }
    registry.histogram(obs::kSigTrustIntroductionDepth)
        .observe(static_cast<double>(deepest));
  }
  return result;
}

}  // namespace

Result<VerifiedRar> verify_rar(const RarMessage& msg,
                               const crypto::Certificate& channel_peer,
                               const crypto::DistinguishedName& self_dn,
                               const crypto::TrustStore& anchors,
                               const TrustPolicy& policy, SimTime at) {
  return metered(
      verify_rar_impl(msg, channel_peer, self_dn, anchors, policy, at));
}

Result<VerifiedRar> verify_user_request(
    const RarMessage& msg, const crypto::Certificate& user_cert,
    const crypto::DistinguishedName& self_dn, SimTime at) {
  return metered(verify_user_request_impl(msg, user_cert, self_dn, at));
}

}  // namespace e2e::sig
