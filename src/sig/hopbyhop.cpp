#include "sig/hopbyhop.hpp"

#include <cstdlib>

#include "common/logging.hpp"
#include "obs/audit.hpp"
#include "obs/instruments.hpp"
#include "sig/context_builder.hpp"
#include "sig/delegation.hpp"

namespace e2e::sig {

namespace {

obs::Labels engine_label(const char* engine) {
  return {{"engine", engine}};
}

}  // namespace

void HopByHopEngine::add_domain(bb::BandwidthBroker& broker,
                                DomainOptions options) {
  Node node;
  node.broker = &broker;
  node.options = std::move(options);
  nodes_.emplace(broker.domain(), std::move(node));
}

HopByHopEngine::Node* HopByHopEngine::find_node(const std::string& domain) {
  const auto it = nodes_.find(domain);
  return it == nodes_.end() ? nullptr : &it->second;
}

const HopByHopEngine::Node* HopByHopEngine::find_node(
    const std::string& domain) const {
  const auto it = nodes_.find(domain);
  return it == nodes_.end() ? nullptr : &it->second;
}

HopByHopEngine::Node* HopByHopEngine::node_by_dn(const std::string& dn_text) {
  for (auto& [name, node] : nodes_) {
    if (node.broker->dn().to_string() == dn_text) return &node;
  }
  return nullptr;
}

ChannelEndpoint HopByHopEngine::endpoint_for(
    const Node& node, const crypto::Certificate* pinned) const {
  ChannelEndpoint ep;
  ep.certificate = node.broker->certificate();
  ep.private_key = node.broker->private_key();
  ep.trust_store = &node.broker->trust_store();
  if (pinned != nullptr) ep.pinned_peer = *pinned;
  return ep;
}

Status HopByHopEngine::connect_peers(const std::string& a,
                                     const std::string& b, SimTime at) {
  Node* na = find_node(a);
  Node* nb = find_node(b);
  if (na == nullptr || nb == nullptr) {
    return make_error(ErrorCode::kNotFound, "unknown domain in connect_peers");
  }
  auto pair = handshake(endpoint_for(*na), endpoint_for(*nb), at, *rng_);
  if (!pair.ok()) return pair.error();
  na->sessions[b] = std::move(pair->initiator);
  nb->sessions[a] = std::move(pair->responder);
  return Status::ok_status();
}

void HopByHopEngine::trust_community(const std::string& domain,
                                     const std::string& community,
                                     const crypto::PublicKey& cas_key) {
  if (Node* node = find_node(domain)) {
    node->trusted_cas.emplace(community, cas_key);
  }
}

void HopByHopEngine::set_community_revocation_check(
    const std::string& domain, const std::string& community,
    std::function<bool(std::uint64_t)> revoked) {
  if (Node* node = find_node(domain)) {
    node->cas_revocation[community] = std::move(revoked);
  }
}

void HopByHopEngine::register_local_user(
    const std::string& domain, const crypto::Certificate& user_cert) {
  if (Node* node = find_node(domain)) {
    // Re-registration replaces the stored certificate (renewal).
    node->local_users.insert_or_assign(user_cert.subject().to_string(),
                                       user_cert);
  }
}

void HopByHopEngine::set_cpu_reservation_checker(
    const std::string& domain, std::function<bool(const std::string&)> fn) {
  if (Node* node = find_node(domain)) {
    node->options.cpu_reservation_checker = std::move(fn);
  }
}

void HopByHopEngine::set_trust_policy(const std::string& domain,
                                      const TrustPolicy& policy) {
  if (Node* node = find_node(domain)) {
    node->options.trust_policy = policy;
  }
}

void HopByHopEngine::set_domain_trace_recorder(const std::string& domain,
                                               obs::TraceRecorder* recorder) {
  if (Node* node = find_node(domain)) {
    node->recorder = recorder;
  }
}

void HopByHopEngine::forget_completed_requests() {
  for (auto& [name, node] : nodes_) node.completed_requests.clear();
  for (auto& [id, rec] : tunnels_) rec.completed_subs.clear();
}

void HopByHopEngine::release_orphaned(const std::string& domain,
                                      const crypto::Digest& digest) {
  Node* node = find_node(domain);
  if (node == nullptr) return;
  const auto it = node->completed_requests.find(digest);
  if (it == node->completed_requests.end()) return;
  if (it->second.granted) {
    auto& registry = obs::MetricsRegistry::global();
    for (const auto& [d, handle] : it->second.handles) {
      if (Node* owner = find_node(d)) {
        (void)owner->broker->release(handle);
        registry.counter(obs::kSigReleasedOnFailureTotal, {{"domain", d}})
            .increment();
      }
    }
  }
  node->completed_requests.erase(it);
}

Result<RarMessage> HopByHopEngine::build_user_request(
    const UserCredentials& user, const bb::ResSpec& spec, SimTime at) const {
  const Node* source = find_node(spec.source_domain);
  if (source == nullptr) {
    return make_error(ErrorCode::kNotFound,
                      "unknown source domain " + spec.source_domain);
  }
  std::vector<Bytes> capability_certs;
  capability_certs.reserve(2);  // root capability + one delegation layer
  if (user.capability_certificate.has_value()) {
    if (!user.proxy_key.has_value()) {
      return make_error(ErrorCode::kInvalidArgument,
                        "capability certificate without proxy key");
    }
    // Fig. 7: the user delegates the CAS capability to BB_A, restricted to
    // reservations in the destination domain, signed with the private
    // proxy key. The source BB's real public key becomes the subject key.
    const std::string restriction =
        "Valid for Reservation in " + spec.destination_domain;
    const crypto::Certificate delegated = delegate_capability(
        *user.capability_certificate, *user.proxy_key,
        source->broker->dn(), source->broker->public_key(), restriction,
        user.capability_certificate->validity(),
        /*serial=*/static_cast<std::uint64_t>(at) + 1);
    capability_certs.push_back(user.capability_certificate->encode());
    capability_certs.push_back(delegated.encode());
  }
  return RarMessage::create_user_request(spec,
                                         source->broker->dn().to_string(),
                                         std::move(capability_certs),
                                         user.identity_key);
}

std::vector<policy::ValidatedCapability>
HopByHopEngine::validate_capabilities(Node& node, const VerifiedRar& vr,
                                      SimTime at) const {
  std::vector<policy::ValidatedCapability> out;
  if (vr.capability_certs.empty()) return out;
  out.reserve(1);  // one validated chain per RAR
  auto chain = decode_chain(vr.capability_certs);
  if (!chain.ok()) {
    log::warn("sig[" + node.broker->domain() + "]")
        << "capability chain undecodable: " << chain.error().to_text();
    return out;
  }
  const std::string community =
      chain->front().extension_value(crypto::kExtCommunity).value_or("");
  const auto cas_it = node.trusted_cas.find(community);
  if (cas_it == node.trusted_cas.end()) {
    log::info("sig[" + node.broker->domain() + "]")
        << "no trusted CAS for community '" << community << "'";
    return out;
  }
  // CRL check on the CAS-issued root capability certificate.
  const auto revocation_it = node.cas_revocation.find(community);
  if (revocation_it != node.cas_revocation.end() &&
      revocation_it->second(chain->front().serial())) {
    log::warn("sig[" + node.broker->domain() + "]")
        << "capability certificate serial " << chain->front().serial()
        << " revoked by " << community << " CAS";
    return out;
  }
  const std::string expected_rar =
      "Valid for Reservation in " + vr.res_spec.destination_domain;
  auto result = verify_capability_chain(*chain, cas_it->second,
                                        node.broker->public_key(),
                                        expected_rar, at, verify_pool_);
  if (!result.ok()) {
    log::warn("sig[" + node.broker->domain() + "]")
        << "capability chain rejected: " << result.error().to_text();
    return out;
  }
  // Proof of possession: the broker demonstrates knowledge of the private
  // key the final chain link binds the capability to (§6.5 checklist).
  Bytes nonce(16);
  Rng nonce_rng(static_cast<std::uint64_t>(at) ^ 0x706f7373);
  for (auto& b : nonce) b = static_cast<std::uint8_t>(nonce_rng.next_u64());
  const Bytes proof = node.broker->sign(nonce);
  if (!check_possession(node.broker->public_key(), nonce, proof)) {
    return out;
  }
  out.push_back(result->to_validated());
  return out;
}

Result<HopByHopEngine::Outcome> HopByHopEngine::reserve(
    const RarMessage& user_msg, SimTime at) {
  const std::string& source_domain =
      user_msg.user_layer().res_spec.source_domain;
  Node* source = find_node(source_domain);
  if (source == nullptr) {
    return make_error(ErrorCode::kNotFound,
                      "unknown source domain " + source_domain);
  }
  if (user_msg.user_layer().source_bb_dn !=
      source->broker->dn().to_string()) {
    return make_error(ErrorCode::kAuthenticationFailed,
                      "request addresses " + user_msg.user_layer().source_bb_dn +
                          " but the source domain's broker is " +
                          source->broker->dn().to_string());
  }

  auto& registry = obs::MetricsRegistry::global();
  registry.counter(obs::kSigRarRequestsTotal, engine_label("hopbyhop"))
      .increment();

  Outcome outcome;
  outcome.trace_id = "rar-" + std::to_string(next_request_++);
  // Dual-recorded root: the engine-wide reference recorder plus the source
  // domain's own recorder, whose span id seeds the wire trace context.
  const SimTime submitted = at;
  obs::SpanScope root(tracer_, source->recorder, outcome.trace_id,
                      "reservation", 0, 0, &submitted);
  {
    const bb::ResSpec& spec = user_msg.user_layer().res_spec;
    root.annotate("user", spec.user);
    root.annotate("source", spec.source_domain);
    root.annotate("destination", spec.destination_domain);
    root.annotate("rate_bits_per_s", std::to_string(spec.rate_bits_per_s));
  }

  // User <-> source BB exchange (request + final answer).
  outcome.latency += 2 * source->options.user_link_latency;
  fabric_->record_message("user", source_domain, user_msg.wire_size());
  outcome.messages++;

  TraceCtx trace;
  trace.trace_id = outcome.trace_id;
  trace.root = root.id();
  trace.arrival = at + source->options.user_link_latency;
  trace.local_parent = root.secondary_id();
  trace.wire = obs::TraceContext{outcome.trace_id, source_domain,
                                 root.secondary_id(), 0, true};
  outcome.reply = process(source_domain, user_msg, /*from_domain=*/"", at,
                          outcome, trace);
  fabric_->record_message(source_domain, "user", 64);
  outcome.messages++;

  if (!outcome.reply.granted) {
    root.annotate("failure.domain", outcome.reply.denial.origin);
    root.annotate("failure.code", to_string(outcome.reply.denial.code));
    root.fail(outcome.reply.denial.message);
  }
  root.finish_at(at + outcome.latency);
  registry
      .counter(obs::kSigRarOutcomesTotal,
               {{"engine", "hopbyhop"},
                {"outcome", outcome.reply.granted ? "granted" : "denied"}})
      .increment();
  registry.histogram(obs::kSigE2eLatencyUs, engine_label("hopbyhop"))
      .observe(static_cast<double>(outcome.latency));
  return outcome;
}

RarReply HopByHopEngine::process(const std::string& domain,
                                 const RarMessage& msg,
                                 const std::string& from_domain, SimTime at,
                                 Outcome& outcome, const TraceCtx& trace) {
  Node* node = find_node(domain);
  if (node == nullptr) {
    return RarReply::deny(make_error(ErrorCode::kNoRoute,
                                     "no broker for domain " + domain));
  }
  outcome.domains_contacted++;
  outcome.latency += fabric_->processing_delay();
  bb::BandwidthBroker& broker = *node->broker;

  auto& registry = obs::MetricsRegistry::global();
  registry.counter(obs::kSigHopsProcessedTotal, {{"domain", domain}})
      .increment();

  // Per-stage virtual-time model: the hop's processing budget
  // (Fabric::processing_delay) is apportioned across the §6.1/§6.2 pipeline
  // stages so trace spans carry non-zero deterministic durations that sum
  // to exactly the budget the latency model already charges.
  const SimDuration budget = fabric_->processing_delay();
  const SimDuration verify_cost = budget * 2 / 5;
  const SimDuration policy_cost = budget / 4;
  const SimDuration admission_cost = budget / 5;
  const SimDuration forward_cost =
      budget - verify_cost - policy_cost - admission_cost;

  // `cursor` walks virtual time through the hop; spans start/end on it.
  SimTime cursor = trace.arrival;
  const bool at_source = from_domain.empty();
  // The domain's own recorder joins in only when the wire trace context
  // originated here or actually arrived in the transport envelope (and
  // stayed sampled) — the envelope, not shared engine state, is what links
  // the per-domain recorders.
  obs::TraceRecorder* local = nullptr;
  obs::SpanId local_parent = 0;
  if (node->recorder != nullptr &&
      (at_source || (trace.wire.valid() && trace.wire.sampled))) {
    local = node->recorder;
    local_parent = at_source ? trace.local_parent : 0;
  }
  obs::SpanScope hop(tracer_, local, trace.trace_id, "hop", trace.root,
                     local_parent, &cursor);
  hop.annotate("domain", domain);
  if (!at_source && local != nullptr) {
    hop.annotate_secondary("remote.parent", trace.wire.remote_parent_ref());
    hop.annotate_secondary("hop.index",
                           std::to_string(trace.wire.hop_count));
  }
  // Audit records emitted inside a stage join that stage's local span (the
  // reference span when no domain recorder is attached).
  auto stage_ref = [&](const obs::SpanScope& scope) {
    const obs::SpanId id =
        scope.secondary_id() != 0 ? scope.secondary_id() : scope.id();
    return obs::SpanRef{id != 0 ? trace.trace_id : std::string(), id, cursor};
  };

  // Every exit path closes the hop span and records the hop metrics;
  // `stage` names the pipeline stage that denied (nullptr on success or
  // when the denial came from a downstream hop).
  auto finish_hop = [&](RarReply reply, const char* stage) {
    registry.histogram(obs::kSigHopProcessingUs, {{"domain", domain}})
        .observe(static_cast<double>(cursor - trace.arrival));
    if (stage != nullptr) {
      registry
          .counter(obs::kSigHopDenialsTotal,
                   {{"domain", domain}, {"stage", stage}})
          .increment();
      hop.annotate("stage", stage);
      hop.fail(reply.denial.to_text());
    }
    hop.finish();
    return reply;
  };

  // 1. Verify the request: transitive-trust verification for inter-BB
  //    messages, direct user authentication at the source.
  obs::SpanScope verify_scope(tracer_, local, trace.trace_id, "verify",
                              hop.id(), hop.secondary_id(), &cursor);
  const std::uint64_t verify_cache_hits_before =
      registry
          .counter(obs::kCryptoVerifyCacheLookupsTotal, {{"result", "hit"}})
          .value();
  Result<VerifiedRar> verified = [&]() -> Result<VerifiedRar> {
    if (from_domain.empty()) {
      const auto user_it =
          node->local_users.find(msg.user_layer().res_spec.user);
      if (user_it == node->local_users.end()) {
        return make_error(
            ErrorCode::kAuthenticationFailed,
            "user " + msg.user_layer().res_spec.user +
                " not known in source domain (no direct trust relationship)",
            domain);
      }
      return verify_user_request(msg, user_it->second, broker.dn(), at);
    }
    const auto session_it = node->sessions.find(from_domain);
    if (session_it == node->sessions.end()) {
      return make_error(ErrorCode::kUnavailable,
                        "no authenticated channel with " + from_domain,
                        domain);
    }
    return verify_rar(msg, session_it->second.peer_certificate(),
                      broker.dn(), broker.trust_store(),
                      node->options.trust_policy, at);
  }();
  // Signature-verify verdict, with whether the verification cache served
  // it (counter delta — the engine is single-threaded per request).
  const bool verify_cache_hit =
      registry
          .counter(obs::kCryptoVerifyCacheLookupsTotal, {{"result", "hit"}})
          .value() > verify_cache_hits_before;
  {
    obs::CurrentSpan audit_scope(stage_ref(verify_scope));
    obs::AuditLog::global().append(
        domain, obs::audit_kind::kVerify,
        {{"result", verified.ok() ? "ok" : "fail"},
         {"subject",
          at_source ? msg.user_layer().res_spec.user : from_domain},
         {"cache", verify_cache_hit ? "hit" : "miss"}});
  }
  cursor += verify_cost;
  if (!verified.ok()) {
    verify_scope.fail(verified.error().to_text());
  }
  verify_scope.finish();
  if (!verified.ok()) {
    Error e = verified.error();
    if (e.origin.empty()) e.origin = domain;
    return finish_hop(RarReply::deny(std::move(e)), "verify");
  }
  const VerifiedRar& vr = *verified;
  if (observer_) observer_(domain, vr);

  // 2. Policy decision via this domain's policy server (the span also
  //    covers capability-chain validation and, at the destination, cost
  //    negotiation — everything feeding the decision).
  obs::SpanScope policy_scope(tracer_, local, trace.trace_id, "policy",
                              hop.id(), hop.secondary_id(), &cursor);
  ContextInputs inputs;
  inputs.broker = &broker;
  inputs.spec = &vr.res_spec;
  inputs.user_dn = vr.user_dn;
  inputs.at = at;
  inputs.augmentations = &vr.augmentations;
  inputs.group_server = node->options.group_server;
  inputs.relevant_groups = &node->options.relevant_groups;
  inputs.capabilities = validate_capabilities(*node, vr, at);
  inputs.cpu_reservation_checker = node->options.cpu_reservation_checker;
  const policy::EvalContext ctx = build_policy_context(inputs);
  const policy::PolicyReply policy_reply = [&] {
    obs::CurrentSpan audit_scope(stage_ref(policy_scope));
    return broker.policy_server().decide(ctx);
  }();
  cursor += policy_cost;
  if (policy_reply.decision != policy::Decision::kGrant) {
    RarReply denial = RarReply::deny(make_error(ErrorCode::kPolicyDenied,
                                                policy_reply.reason, domain));
    policy_scope.fail(policy_reply.reason);
    policy_scope.finish();
    return finish_hop(std::move(denial), "policy");
  }

  const bool is_destination =
      vr.res_spec.destination_domain == domain;

  // 2b. Cost negotiation (§6.1): the user's request carries "a cost that
  // the user is willing to accept"; domains attach cost offers as signed
  // augmentations. The destination totals them and refuses when the chain
  // is more expensive than the user authorized.
  if (is_destination && vr.res_spec.max_cost > 0) {
    double total_cost = 0;
    auto add_offers = [&total_cost](const std::vector<policy::Augmentation>&
                                        augmentations) {
      for (const auto& aug : augmentations) {
        if (aug.name == "Cost.offer") {
          char* end = nullptr;
          const double v = std::strtod(aug.value.c_str(), &end);
          if (end != aug.value.c_str()) total_cost += v;
        }
      }
    };
    add_offers(vr.augmentations);
    add_offers(policy_reply.augmentations);
    if (total_cost > vr.res_spec.max_cost) {
      RarReply denial = RarReply::deny(make_error(
          ErrorCode::kPolicyDenied,
          "accumulated cost " + std::to_string(total_cost) +
              " exceeds the user's limit " +
              std::to_string(vr.res_spec.max_cost),
          domain));
      policy_scope.fail(denial.denial.message);
      policy_scope.finish();
      return finish_hop(std::move(denial), "cost");
    }
  }
  policy_scope.finish();

  // 3. Admission control (SLA conformance for transit traffic).
  obs::SpanScope admission_scope(tracer_, local, trace.trace_id, "admission",
                                 hop.id(), hop.secondary_id(), &cursor);
  auto handle = [&] {
    obs::CurrentSpan audit_scope(stage_ref(admission_scope));
    return broker.commit(vr.res_spec, from_domain);
  }();
  cursor += admission_cost;
  if (!handle.ok()) {
    admission_scope.fail(handle.error().to_text());
    admission_scope.finish();
    return finish_hop(RarReply::deny(handle.error()), "admission");
  }
  admission_scope.finish();
  if (is_destination) {
    RarReply reply = RarReply::approve();
    reply.handles.emplace_back(domain, *handle);
    if (vr.res_spec.is_tunnel) {
      auto tunnel_handle = broker.register_tunnel(vr.res_spec);
      if (!tunnel_handle.ok()) {
        (void)broker.release(*handle);
        return finish_hop(RarReply::deny(tunnel_handle.error()),
                          "admission");
      }
      bb::Tunnel* tunnel = broker.find_tunnel(*tunnel_handle);
      if (tunnel == nullptr) {
        (void)broker.release(*handle);
        return finish_hop(
            RarReply::deny(make_error(ErrorCode::kInternal,
                                      "registered tunnel not found", domain)),
            "admission");
      }
      auto authorized = tunnel->authorize(vr.res_spec.user);
      if (!authorized.ok()) {
        // The authorization could not be made durable: deny rather than
        // ack a tunnel whose recovered twin would reject its only user.
        (void)broker.release(*handle);
        return finish_hop(RarReply::deny(authorized.error()), "admission");
      }
      reply.tunnel_id = *tunnel_handle;
    }
    return finish_hop(std::move(reply), nullptr);
  }

  // 4. Forward downstream: delegate, append a signed layer, seal, send.
  obs::SpanScope forward_scope(tracer_, local, trace.trace_id,
                               "sign_and_forward", hop.id(),
                               hop.secondary_id(), &cursor);
  // Local forwarding failure: roll back the tentative commitment, close the
  // forward span and deny at this hop.
  auto deny_forward = [&](Error e) {
    (void)broker.release(*handle);
    cursor += forward_cost;
    RarReply denial = RarReply::deny(std::move(e));
    forward_scope.fail(denial.denial.to_text());
    forward_scope.finish();
    return finish_hop(std::move(denial), "forward");
  };

  const auto next = broker.next_hop(vr.res_spec.destination_domain);
  if (!next.has_value()) {
    return deny_forward(make_error(
        ErrorCode::kNoRoute,
        "no next hop toward " + vr.res_spec.destination_domain, domain));
  }
  Node* next_node = find_node(*next);
  if (next_node == nullptr || !node->sessions.contains(*next)) {
    return deny_forward(make_error(ErrorCode::kUnavailable,
                                   "peer " + *next + " unreachable",
                                   domain));
  }

  RarMessage forwarded = msg;
  BrokerLayer layer;
  layer.upstream_certificate =
      from_domain.empty()
          ? vr.user_certificate.encode()
          : node->sessions.at(from_domain).peer_certificate().encode();
  layer.downstream_dn = next_node->broker->dn().to_string();
  layer.augmentations = policy_reply.augmentations;
  layer.signer_dn = broker.dn().to_string();
  // §6.5: delegate the capability chain to the next broker under our own
  // signature, preserving the RAR restriction.
  if (!vr.capability_certs.empty()) {
    auto chain = decode_chain(vr.capability_certs);
    if (chain.ok() && !chain->empty()) {
      const crypto::Certificate delegated =
          broker.sign_certificate(build_delegation(
              chain->back(), next_node->broker->dn(),
              next_node->broker->public_key(), /*rar_restriction=*/"",
              chain->back().validity(), broker.next_certificate_serial()));
      layer.capability_certs.push_back(delegated.encode());
      obs::CurrentSpan audit_scope(stage_ref(forward_scope));
      obs::AuditLog::global().append(
          domain, obs::audit_kind::kDelegation,
          {{"issuer", broker.dn().to_string()},
           {"subject", next_node->broker->dn().to_string()},
           {"serial", std::to_string(delegated.serial())}});
    }
  }
  forwarded.append_broker_layer(std::move(layer),
                                [&broker](BytesView tbs) {
                                  return broker.sign(tbs);
                                });

  // Ship over the authenticated channel: seal here, open at the peer. The
  // exchange runs under the retry policy: arm a timeout, retransmit on
  // silence (lost request, lost reply, or a corrupted record the receiver
  // discarded), and give up once the budget is spent. The request is
  // identified downstream by the SHA-256 of its wire bytes, so a
  // retransmission that *did* get through the first time is answered from
  // the peer's reply cache instead of being admitted twice.
  const Bytes wire = forwarded.encode();
  outcome.final_wire_bytes = wire.size();
  cursor += forward_cost;
  forward_scope.finish();

  const crypto::Digest request_digest = crypto::sha256(wire);
  std::uint64_t jitter_seed = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    jitter_seed = (jitter_seed << 8) | request_digest[i];
  }

  RarReply downstream;
  bool exchange_complete = false;
  std::size_t attempts_used = 0;
  for (std::size_t attempt = 1; attempt <= retry_policy_.max_attempts;
       ++attempt) {
    attempts_used = attempt;
    if (attempt > 1) {
      registry.counter(obs::kSigRetransmitsTotal, engine_label("hopbyhop"))
          .increment();
    }
    // Sender waits at most this long for the answer; every failure path
    // below charges it to the modeled latency.
    const SimDuration timeout =
        retry_timeout(retry_policy_, attempt, jitter_seed);
    auto attempt_timed_out = [&] {
      registry.counter(obs::kSigTimeoutsTotal, engine_label("hopbyhop"))
          .increment();
      outcome.latency += timeout;
    };

    const Record record = node->sessions.at(*next).seal(wire);
    // The trace context rides the unsigned envelope next to the sealed
    // record, one hop deeper than it arrived here.
    obs::TraceContext next_ctx = trace.wire;
    next_ctx.hop_count++;
    Delivery sent = fabric_->transmit(domain, *next, wire, &next_ctx);
    outcome.messages++;
    if (!sent.delivered()) {
      attempt_timed_out();
      continue;
    }
    Record received = record;
    received.payload = sent.payload;
    auto opened = next_node->sessions.at(domain).open(received);
    if (sent.duplicated) {
      // The duplicate copy trails the original; the record layer's
      // strictly-increasing sequence check rejects it.
      (void)next_node->sessions.at(domain).open(received);
      registry
          .counter(obs::kSigDuplicatesSuppressedTotal, {{"via", "channel"}})
          .increment();
    }
    if (!opened.ok()) {
      attempt_timed_out();  // corrupted in transit; receiver stays silent
      continue;
    }
    auto decoded = RarMessage::decode(*opened);
    if (!decoded.ok()) {
      attempt_timed_out();
      continue;
    }

    const auto cached = next_node->completed_requests.find(request_digest);
    if (cached != next_node->completed_requests.end()) {
      // Already processed: a previous attempt got through but its reply
      // was lost. Answer from the cache — admit exactly once.
      registry
          .counter(obs::kSigDuplicatesSuppressedTotal, {{"via", "cache"}})
          .increment();
      downstream = cached->second;
    } else {
      TraceCtx next_trace;
      next_trace.trace_id = trace.trace_id;
      next_trace.root = trace.root;
      next_trace.arrival = cursor + sent.latency;
      if (sent.trace_context.has_value()) {
        next_trace.wire = *sent.trace_context;
      }
      downstream = process(*next, *decoded, domain, at, outcome, next_trace);
      next_node->completed_requests.emplace(request_digest, downstream);
    }

    // The reply travels back over the same authenticated channel, sealed
    // by the peer and opened here (exercising both channel directions).
    const Bytes reply_wire = downstream.encode();
    const Record reply_record = next_node->sessions.at(domain).seal(reply_wire);
    Delivery back = fabric_->transmit(*next, domain, reply_wire);
    outcome.messages++;
    if (!back.delivered()) {
      attempt_timed_out();
      continue;
    }
    Record reply_received = reply_record;
    reply_received.payload = back.payload;
    auto reply_opened = node->sessions.at(*next).open(reply_received);
    if (back.duplicated) {
      (void)node->sessions.at(*next).open(reply_received);
      registry
          .counter(obs::kSigDuplicatesSuppressedTotal, {{"via", "channel"}})
          .increment();
    }
    if (!reply_opened.ok()) {
      attempt_timed_out();
      continue;
    }
    auto reply_decoded = RarReply::decode(*reply_opened);
    if (!reply_decoded.ok()) {
      attempt_timed_out();
      continue;
    }
    downstream = std::move(*reply_decoded);
    outcome.latency += sent.latency + back.latency;
    exchange_complete = true;
    break;
  }
  if (attempts_used > 1) {
    registry.histogram(obs::kSigRetryAttempts, engine_label("hopbyhop"))
        .observe(static_cast<double>(attempts_used));
    hop.annotate("retry.attempts", std::to_string(attempts_used));
  }
  if (!exchange_complete) {
    // The downstream domain stayed dark past the retry budget. Release the
    // local tentative commitment, and — if an earlier attempt did commit
    // the downstream chain — model its grant timing out unconfirmed.
    release_orphaned(*next, request_digest);
    (void)broker.release(*handle);
    registry
        .counter(obs::kSigReleasedOnFailureTotal, {{"domain", domain}})
        .increment();
    return finish_hop(
        RarReply::deny(make_error(
            ErrorCode::kTimeout,
            "no answer from " + *next + " after " +
                std::to_string(attempts_used) + " attempts",
            domain)),
        "forward");
  }
  if (!downstream.granted) {
    // Denial propagates upstream; roll back our tentative commitment. The
    // failure is attributed to the hop that produced it, so this hop's span
    // closes clean (stage = nullptr).
    (void)broker.release(*handle);
    return finish_hop(std::move(downstream), nullptr);
  }
  downstream.handles.insert(downstream.handles.begin(), {domain, *handle});

  // Tunnel establishment: once the end-to-end aggregate is approved, the
  // source and destination set up the direct signalling channel. The
  // destination pins the source BB's certificate, which it learned through
  // the introduction chain (path tracing).
  if (vr.res_spec.is_tunnel && from_domain.empty()) {
    Node* dest = find_node(vr.res_spec.destination_domain);
    auto source_tunnel = broker.register_tunnel(vr.res_spec);
    // An authorization that cannot be made durable skips the direct
    // channel setup, like a failed registration: the end-to-end grant
    // stands, but this source end offers no tunnel the recovered broker
    // would not honour.
    bb::Tunnel* source_end =
        source_tunnel.ok() ? broker.find_tunnel(*source_tunnel) : nullptr;
    if (source_end != nullptr && dest != nullptr &&
        source_end->authorize(vr.res_spec.user).ok()) {
      // Both ends pin the peer certificate they learned through the
      // signalling exchange (source cert introduced downstream by the
      // layer chain; destination cert introduced upstream with the signed
      // approval).
      const crypto::Certificate source_cert = broker.certificate();
      const crypto::Certificate dest_cert = dest->broker->certificate();
      obs::SpanScope handshake_scope(tracer_, local, trace.trace_id,
                                     "channel_handshake", hop.id(),
                                     hop.secondary_id(), &cursor);
      handshake_scope.annotate("peer", dest->broker->domain());
      auto direct = [&] {
        obs::CurrentSpan audit_scope(stage_ref(handshake_scope));
        return handshake(endpoint_for(*node, &dest_cert),
                         endpoint_for(*dest, &source_cert), at, *rng_);
      }();
      outcome.latency += fabric_->rtt(domain, dest->broker->domain());
      outcome.messages += 2;  // handshake round trip
      fabric_->record_message(domain, dest->broker->domain(), 512);
      fabric_->record_message(dest->broker->domain(), domain, 512);
      if (!direct.ok()) {
        handshake_scope.fail(direct.error().to_text());
      }
      handshake_scope.finish_at(
          cursor + fabric_->rtt(domain, dest->broker->domain()));
      if (direct.ok()) {
        TunnelRecord rec;
        rec.id = "tunnel-" + std::to_string(next_tunnel_++);
        rec.source_domain = domain;
        rec.destination_domain = vr.res_spec.destination_domain;
        rec.user_dn = vr.res_spec.user;
        rec.source_handle = *source_tunnel;
        rec.destination_handle = downstream.tunnel_id;
        rec.source_session = std::move(direct->initiator);
        rec.destination_session = std::move(direct->responder);
        downstream.tunnel_id = rec.id;
        tunnels_.emplace(rec.id, std::move(rec));
      } else {
        log::warn("sig[" + domain + "]")
            << "direct tunnel channel failed: " << direct.error().to_text();
      }
    }
  }
  return finish_hop(std::move(downstream), nullptr);
}

Status HopByHopEngine::release_end_to_end(const RarReply& reply) {
  if (!reply.granted) {
    return make_error(ErrorCode::kInvalidArgument,
                      "cannot release a denied reservation");
  }
  for (const auto& [domain, handle] : reply.handles) {
    Node* node = find_node(domain);
    if (node == nullptr) continue;
    auto status = node->broker->release(handle);
    if (!status.ok()) return status;
  }
  return Status::ok_status();
}

Result<HopByHopEngine::Outcome> HopByHopEngine::reserve_in_tunnel(
    const std::string& tunnel_id, const std::string& user_dn, double rate,
    TimeInterval interval, SimTime at) {
  auto& registry = obs::MetricsRegistry::global();
  registry.counter(obs::kSigRarRequestsTotal, engine_label("tunnel"))
      .increment();
  const auto it = tunnels_.find(tunnel_id);
  if (it == tunnels_.end()) {
    return make_error(ErrorCode::kNotFound, "unknown tunnel " + tunnel_id);
  }
  TunnelRecord& rec = it->second;
  Node* src = find_node(rec.source_domain);
  Node* dst = find_node(rec.destination_domain);
  if (src == nullptr || dst == nullptr) {
    return make_error(ErrorCode::kInternal, "tunnel endpoints missing");
  }
  bb::Tunnel* src_tunnel = src->broker->find_tunnel(rec.source_handle);
  bb::Tunnel* dst_tunnel = dst->broker->find_tunnel(rec.destination_handle);
  if (src_tunnel == nullptr || dst_tunnel == nullptr) {
    return make_error(ErrorCode::kInternal, "tunnel state missing");
  }

  Outcome outcome;
  outcome.trace_id = "rar-" + std::to_string(next_request_++);
  const std::string sub_id =
      tunnel_id + "-flow-" + std::to_string(rec.next_sub++);

  // A per-flow sub-reservation traces like any RAR: root at the user's
  // submission, one hop per contacted end domain. The destination recorder
  // links through the wire context on the direct channel (hop index 1: the
  // aggregate's intermediate hops are exactly what this path skips), and a
  // retransmitted attempt reuses the same trace id.
  const SimTime submitted = at;
  obs::SpanScope root(tracer_, src->recorder, outcome.trace_id,
                      "reservation", 0, 0, &submitted);
  root.annotate("user", user_dn);
  root.annotate("source", rec.source_domain);
  root.annotate("destination", rec.destination_domain);
  root.annotate("rate_bits_per_s", std::to_string(rate));
  root.annotate("tunnel", tunnel_id);
  obs::TraceContext wire_ctx{outcome.trace_id, rec.source_domain,
                             root.secondary_id(), 1, true};

  // Every exit path that produced an Outcome closes the root (tagging
  // failures) and records the tunnel-engine outcome counter and latency
  // histogram.
  auto finish = [&](Outcome o) {
    if (!o.reply.granted) {
      root.annotate("failure.domain", o.reply.denial.origin);
      root.annotate("failure.code", to_string(o.reply.denial.code));
      root.fail(o.reply.denial.message);
    }
    root.finish_at(at + o.latency);
    registry
        .counter(obs::kSigRarOutcomesTotal,
                 {{"engine", "tunnel"},
                  {"outcome", o.reply.granted ? "granted" : "denied"}})
        .increment();
    registry.histogram(obs::kSigE2eLatencyUs, engine_label("tunnel"))
        .observe(static_cast<double>(o.latency));
    return o;
  };

  // User contacts the source-domain BB.
  outcome.latency += 2 * src->options.user_link_latency;
  outcome.latency += fabric_->processing_delay();
  fabric_->record_message("user", rec.source_domain, 128);
  outcome.messages++;
  outcome.domains_contacted++;
  SimTime cursor = at + src->options.user_link_latency;
  obs::SpanScope src_hop(tracer_, src->recorder, outcome.trace_id, "hop",
                         root.id(), root.secondary_id(), &cursor);
  src_hop.annotate("domain", rec.source_domain);
  obs::SpanScope src_adm(tracer_, src->recorder, outcome.trace_id,
                         "admission", src_hop.id(), src_hop.secondary_id(),
                         &cursor);
  auto src_alloc = [&] {
    const obs::SpanId span = src_adm.secondary_id() != 0
                                 ? src_adm.secondary_id()
                                 : src_adm.id();
    obs::CurrentSpan audit_scope(obs::SpanRef{
        span != 0 ? outcome.trace_id : std::string(), span, cursor});
    auto result = src_tunnel->allocate(sub_id, user_dn, interval, rate);
    obs::AuditLog::global().append(
        rec.source_domain, obs::audit_kind::kAdmission,
        {{"result", result.ok() ? "admitted" : "rejected"},
         {"flow", sub_id},
         {"rate_bits_per_s", std::to_string(rate)}});
    return result;
  }();
  cursor += fabric_->processing_delay();
  if (!src_alloc.ok()) {
    Error e = src_alloc.error();
    e.origin = rec.source_domain;
    src_adm.fail(e.to_text());
    src_adm.finish();
    src_hop.annotate("stage", "admission");
    src_hop.fail(e.to_text());
    src_hop.finish();
    outcome.reply = RarReply::deny(std::move(e));
    return finish(std::move(outcome));
  }
  src_adm.finish();

  // Source BB contacts the destination BB directly over the pinned
  // channel — intermediate domains are not involved. The exchange runs
  // under the same retry policy as inter-BB forwarding; the destination
  // keeps a per-flow grant cache so a retransmitted tunnel-alloc (whose
  // first reply was lost) doesn't debit the tunnel pool twice.
  const Bytes wire = to_bytes("tunnel-alloc:" + sub_id);
  const crypto::Digest request_digest = crypto::sha256(wire);
  std::uint64_t jitter_seed = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    jitter_seed = (jitter_seed << 8) | request_digest[i];
  }
  outcome.latency += fabric_->processing_delay();
  outcome.domains_contacted++;

  std::optional<Error> dst_error;
  bool exchange_complete = false;
  std::size_t attempts_used = 0;
  SimTime send_at = cursor;
  for (std::size_t attempt = 1; attempt <= retry_policy_.max_attempts;
       ++attempt) {
    attempts_used = attempt;
    if (attempt > 1) {
      registry.counter(obs::kSigRetransmitsTotal, engine_label("tunnel"))
          .increment();
    }
    const SimDuration timeout =
        retry_timeout(retry_policy_, attempt, jitter_seed);
    auto attempt_timed_out = [&] {
      registry.counter(obs::kSigTimeoutsTotal, engine_label("tunnel"))
          .increment();
      outcome.latency += timeout;
      send_at += timeout;
    };

    const Record record = rec.source_session.seal(wire);
    Delivery sent = fabric_->transmit(rec.source_domain,
                                      rec.destination_domain, wire, &wire_ctx);
    outcome.messages++;
    if (!sent.delivered()) {
      attempt_timed_out();
      continue;
    }
    Record received = record;
    received.payload = sent.payload;
    auto opened = rec.destination_session.open(received);
    if (sent.duplicated) {
      (void)rec.destination_session.open(received);
      registry
          .counter(obs::kSigDuplicatesSuppressedTotal, {{"via", "channel"}})
          .increment();
    }
    if (!opened.ok()) {
      attempt_timed_out();
      continue;
    }

    dst_error.reset();
    if (rec.completed_subs.contains(sub_id)) {
      // Granted by an earlier attempt whose reply was lost.
      registry
          .counter(obs::kSigDuplicatesSuppressedTotal, {{"via", "cache"}})
          .increment();
    } else {
      SimTime dst_cursor = send_at + sent.latency;
      obs::TraceRecorder* dst_local =
          (dst->recorder != nullptr && sent.trace_context.has_value() &&
           sent.trace_context->valid() && sent.trace_context->sampled)
              ? dst->recorder
              : nullptr;
      obs::SpanScope dst_hop(tracer_, dst_local, outcome.trace_id, "hop",
                             root.id(), 0, &dst_cursor);
      dst_hop.annotate("domain", rec.destination_domain);
      if (dst_local != nullptr) {
        dst_hop.annotate_secondary("remote.parent",
                                   sent.trace_context->remote_parent_ref());
        dst_hop.annotate_secondary(
            "hop.index", std::to_string(sent.trace_context->hop_count));
      }
      obs::SpanScope dst_adm(tracer_, dst_local, outcome.trace_id,
                             "admission", dst_hop.id(), dst_hop.secondary_id(),
                             &dst_cursor);
      auto dst_alloc = [&] {
        const obs::SpanId span = dst_adm.secondary_id() != 0
                                     ? dst_adm.secondary_id()
                                     : dst_adm.id();
        obs::CurrentSpan audit_scope(obs::SpanRef{
            span != 0 ? outcome.trace_id : std::string(), span, dst_cursor});
        auto result = dst_tunnel->allocate(sub_id, user_dn, interval, rate);
        obs::AuditLog::global().append(
            rec.destination_domain, obs::audit_kind::kAdmission,
            {{"result", result.ok() ? "admitted" : "rejected"},
             {"flow", sub_id},
             {"rate_bits_per_s", std::to_string(rate)}});
        return result;
      }();
      dst_cursor += fabric_->processing_delay();
      if (dst_alloc.ok()) {
        rec.completed_subs.insert(sub_id);
      } else {
        dst_error = dst_alloc.error();
        dst_error->origin = rec.destination_domain;
        dst_adm.fail(dst_error->to_text());
        dst_hop.annotate("stage", "admission");
        dst_hop.fail(dst_error->to_text());
      }
      dst_adm.finish();
      dst_hop.finish();
    }

    const Bytes reply_wire(64, 0);
    Delivery back = fabric_->transmit(rec.destination_domain,
                                      rec.source_domain, reply_wire);
    outcome.messages++;
    if (!back.delivered()) {
      attempt_timed_out();
      continue;
    }
    outcome.latency += sent.latency + back.latency;
    exchange_complete = true;
    break;
  }
  if (attempts_used > 1) {
    registry.histogram(obs::kSigRetryAttempts, engine_label("tunnel"))
        .observe(static_cast<double>(attempts_used));
    src_hop.annotate("retry.attempts", std::to_string(attempts_used));
  }
  if (!exchange_complete) {
    // Destination stayed dark: roll back the source half and model the
    // destination expiring any unconfirmed grant an earlier attempt made.
    (void)src_tunnel->release(sub_id);
    registry
        .counter(obs::kSigReleasedOnFailureTotal,
                 {{"domain", rec.source_domain}})
        .increment();
    if (rec.completed_subs.erase(sub_id) > 0) {
      (void)dst_tunnel->release(sub_id);
      registry
          .counter(obs::kSigReleasedOnFailureTotal,
                   {{"domain", rec.destination_domain}})
          .increment();
    }
    outcome.reply = RarReply::deny(make_error(
        ErrorCode::kTimeout,
        "no answer from " + rec.destination_domain + " after " +
            std::to_string(attempts_used) + " attempts",
        rec.source_domain));
    src_hop.annotate("stage", "forward");
    src_hop.fail(outcome.reply.denial.to_text());
    src_hop.finish();
    return finish(std::move(outcome));
  }
  src_hop.finish();
  if (dst_error.has_value()) {
    (void)src_tunnel->release(sub_id);
    outcome.reply = RarReply::deny(std::move(*dst_error));
    return finish(std::move(outcome));
  }

  outcome.reply = RarReply::approve();
  outcome.reply.handles.emplace_back(rec.source_domain, sub_id);
  outcome.reply.handles.emplace_back(rec.destination_domain, sub_id);
  outcome.reply.tunnel_id = tunnel_id;
  return finish(std::move(outcome));
}

Result<HopByHopEngine::TunnelBatchOutcome>
HopByHopEngine::reserve_in_tunnel_batch(
    const std::string& tunnel_id, const std::vector<TunnelFlowRequest>& flows,
    SimTime at) {
  auto& registry = obs::MetricsRegistry::global();
  registry.counter(obs::kSigRarRequestsTotal, engine_label("tunnel"))
      .increment(flows.size());
  const auto it = tunnels_.find(tunnel_id);
  if (it == tunnels_.end()) {
    return make_error(ErrorCode::kNotFound, "unknown tunnel " + tunnel_id);
  }
  TunnelRecord& rec = it->second;
  Node* src = find_node(rec.source_domain);
  Node* dst = find_node(rec.destination_domain);
  if (src == nullptr || dst == nullptr) {
    return make_error(ErrorCode::kInternal, "tunnel endpoints missing");
  }
  bb::Tunnel* src_tunnel = src->broker->find_tunnel(rec.source_handle);
  bb::Tunnel* dst_tunnel = dst->broker->find_tunnel(rec.destination_handle);
  if (src_tunnel == nullptr || dst_tunnel == nullptr) {
    return make_error(ErrorCode::kInternal, "tunnel state missing");
  }

  TunnelBatchOutcome outcome;
  outcome.replies.reserve(flows.size());
  std::vector<bb::Tunnel::SubFlowRequest> batch;
  batch.reserve(flows.size());
  for (const TunnelFlowRequest& flow : flows) {
    batch.push_back(bb::Tunnel::SubFlowRequest{
        tunnel_id + "-flow-" + std::to_string(rec.next_sub++), flow.user_dn,
        flow.interval, flow.rate});
  }
  (void)at;

  auto finish = [&](TunnelBatchOutcome o) {
    for (const RarReply& reply : o.replies) {
      registry
          .counter(obs::kSigRarOutcomesTotal,
                   {{"engine", "tunnel"},
                    {"outcome", reply.granted ? "granted" : "denied"}})
          .increment();
      registry.histogram(obs::kSigE2eLatencyUs, engine_label("tunnel"))
          .observe(static_cast<double>(o.latency));
    }
    return o;
  };

  // The user hands the whole batch to the source BB in one message.
  outcome.latency += 2 * src->options.user_link_latency;
  outcome.latency += fabric_->processing_delay();
  fabric_->record_message("user", rec.source_domain, 64 + 64 * flows.size());
  outcome.messages++;

  // One source<->destination round trip carries the batch. Unlike the
  // per-flow path, nothing is committed until the exchange succeeds, so a
  // retransmitted batch needs no idempotency cache and a dark destination
  // leaves zero residual state.
  const Bytes wire = to_bytes("tunnel-alloc-batch:" + tunnel_id + ":" +
                              std::to_string(batch.size()));
  const crypto::Digest request_digest = crypto::sha256(wire);
  std::uint64_t jitter_seed = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    jitter_seed = (jitter_seed << 8) | request_digest[i];
  }
  bool exchange_complete = false;
  std::size_t attempts_used = 0;
  for (std::size_t attempt = 1; attempt <= retry_policy_.max_attempts;
       ++attempt) {
    attempts_used = attempt;
    if (attempt > 1) {
      registry.counter(obs::kSigRetransmitsTotal, engine_label("tunnel"))
          .increment();
    }
    const SimDuration timeout =
        retry_timeout(retry_policy_, attempt, jitter_seed);
    auto attempt_timed_out = [&] {
      registry.counter(obs::kSigTimeoutsTotal, engine_label("tunnel"))
          .increment();
      outcome.latency += timeout;
    };

    const Record record = rec.source_session.seal(wire);
    Delivery sent =
        fabric_->transmit(rec.source_domain, rec.destination_domain, wire);
    outcome.messages++;
    if (!sent.delivered()) {
      attempt_timed_out();
      continue;
    }
    Record received = record;
    received.payload = sent.payload;
    auto opened = rec.destination_session.open(received);
    if (sent.duplicated) {
      (void)rec.destination_session.open(received);
      registry
          .counter(obs::kSigDuplicatesSuppressedTotal, {{"via", "channel"}})
          .increment();
    }
    if (!opened.ok()) {
      attempt_timed_out();
      continue;
    }
    const Bytes reply_wire(64, 0);
    Delivery back = fabric_->transmit(rec.destination_domain,
                                      rec.source_domain, reply_wire);
    outcome.messages++;
    if (!back.delivered()) {
      attempt_timed_out();
      continue;
    }
    outcome.latency += sent.latency + back.latency;
    exchange_complete = true;
    break;
  }
  if (attempts_used > 1) {
    registry.histogram(obs::kSigRetryAttempts, engine_label("tunnel"))
        .observe(static_cast<double>(attempts_used));
  }
  if (!exchange_complete) {
    const Error timeout_error = make_error(
        ErrorCode::kTimeout,
        "no answer from " + rec.destination_domain + " after " +
            std::to_string(attempts_used) + " attempts",
        rec.source_domain);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      outcome.replies.push_back(RarReply::deny(timeout_error));
    }
    return finish(std::move(outcome));
  }

  // Both endpoints evaluate the full batch against their tunnel pools —
  // independent pools, so running them concurrently (admission pool
  // attached) grants exactly what sequential evaluation grants.
  outcome.latency += 2 * fabric_->processing_delay();
  std::vector<Status> src_statuses;
  std::vector<Status> dst_statuses;
  if (admission_pool_ != nullptr) {
    auto src_future =
        admission_pool_->submit([&] { return src_tunnel->allocate_batch(batch); });
    auto dst_future =
        admission_pool_->submit([&] { return dst_tunnel->allocate_batch(batch); });
    src_statuses = src_future.get();
    dst_statuses = dst_future.get();
  } else {
    src_statuses = src_tunnel->allocate_batch(batch);
    dst_statuses = dst_tunnel->allocate_batch(batch);
  }
  auto audit_end = [&](const std::string& domain, const std::string& sub_id,
                       double rate, bool admitted) {
    obs::AuditLog::global().append(
        domain, obs::audit_kind::kAdmission,
        {{"result", admitted ? "admitted" : "rejected"},
         {"flow", sub_id},
         {"rate_bits_per_s", std::to_string(rate)}});
  };

  // A flow is granted iff both ends admitted it; one-sided admissions are
  // rolled back so the tunnel halves never diverge. Denials report the
  // source's error first (the per-flow path never consults the
  // destination once the source rejects).
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const bool src_ok = src_statuses[i].ok();
    const bool dst_ok = dst_statuses[i].ok();
    audit_end(rec.source_domain, batch[i].sub_id, batch[i].rate, src_ok);
    audit_end(rec.destination_domain, batch[i].sub_id, batch[i].rate, dst_ok);
    if (src_ok && dst_ok) {
      rec.completed_subs.insert(batch[i].sub_id);
      RarReply reply = RarReply::approve();
      reply.handles.emplace_back(rec.source_domain, batch[i].sub_id);
      reply.handles.emplace_back(rec.destination_domain, batch[i].sub_id);
      reply.tunnel_id = tunnel_id;
      outcome.replies.push_back(std::move(reply));
      ++outcome.granted;
      continue;
    }
    if (src_ok) (void)src_tunnel->release(batch[i].sub_id);
    if (dst_ok) (void)dst_tunnel->release(batch[i].sub_id);
    Error denial =
        !src_ok ? src_statuses[i].error() : dst_statuses[i].error();
    if (denial.origin.empty()) {
      denial.origin = !src_ok ? rec.source_domain : rec.destination_domain;
    }
    outcome.replies.push_back(RarReply::deny(std::move(denial)));
  }
  return finish(std::move(outcome));
}

Status HopByHopEngine::release_in_tunnel(const std::string& tunnel_id,
                                         const std::string& sub_id) {
  const auto it = tunnels_.find(tunnel_id);
  if (it == tunnels_.end()) {
    return make_error(ErrorCode::kNotFound, "unknown tunnel " + tunnel_id);
  }
  TunnelRecord& rec = it->second;
  Node* src = find_node(rec.source_domain);
  Node* dst = find_node(rec.destination_domain);
  bb::Tunnel* src_tunnel =
      src != nullptr ? src->broker->find_tunnel(rec.source_handle) : nullptr;
  bb::Tunnel* dst_tunnel =
      dst != nullptr ? dst->broker->find_tunnel(rec.destination_handle)
                     : nullptr;
  if (src_tunnel == nullptr || dst_tunnel == nullptr) {
    return make_error(ErrorCode::kInternal, "tunnel state missing");
  }
  auto s1 = src_tunnel->release(sub_id);
  auto s2 = dst_tunnel->release(sub_id);
  if (!s1.ok()) return s1;
  return s2;
}

std::optional<HopByHopEngine::TunnelInfo> HopByHopEngine::tunnel_info(
    const std::string& id) const {
  const auto it = tunnels_.find(id);
  if (it == tunnels_.end()) return std::nullopt;
  const TunnelRecord& rec = it->second;
  TunnelInfo info;
  info.id = rec.id;
  info.source_domain = rec.source_domain;
  info.destination_domain = rec.destination_domain;
  info.user_dn = rec.user_dn;
  const Node* src = find_node(rec.source_domain);
  if (src != nullptr) {
    if (const bb::Tunnel* t = src->broker->find_tunnel(rec.source_handle)) {
      info.aggregate_rate = t->aggregate_rate();
      info.active_flows = t->active_allocations();
    }
  }
  return info;
}

}  // namespace e2e::sig
