// Restricted impersonation — §6.4's fourth key-distribution technique.
//
// "(Restricted) delegation mechanisms could be used to propagate
// authorization attributes, by having each BB impersonate the caller's
// identity." Modeled on the Internet X.509 Impersonation Certificate
// profile the paper cites [24] (the draft that became RFC 3820 proxy
// certificates): the *user's identity certificate* roots a chain of
// impersonation certificates, each signed with the key of the previous
// subject, each carrying the impersonated DN and a restriction.
//
// Structurally this mirrors capability delegation (§6.5) but is rooted in
// identity rather than in a community-issued capability: the verifier
// learns WHO the chain acts for (and checks the user's own certificate
// against its trust anchors), not WHAT community attributes it carries.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "crypto/certstore.hpp"
#include "crypto/x509.hpp"

namespace e2e::sig {

/// Extension marking impersonation certificates; the value is the DN of
/// the impersonated end entity.
inline constexpr const char* kExtImpersonates = "Impersonates";

/// Build (unsigned) the next impersonation link: `parent` is either the
/// user's identity certificate (first link) or a previous impersonation
/// certificate; the caller signs with the key matching `parent`'s subject
/// public key.
crypto::Certificate::Builder build_impersonation(
    const crypto::Certificate& parent,
    const crypto::DistinguishedName& delegate_dn,
    const crypto::PublicKey& delegate_key, const std::string& restriction,
    TimeInterval validity, std::uint64_t serial);

struct ImpersonationResult {
  /// The end entity every link of the chain acts for.
  crypto::DistinguishedName impersonated;
  /// The restriction carried by the links ("" if none).
  std::string restriction;
  std::size_t length = 0;  // impersonation links (identity cert excluded)
};

/// Verify a chain [identity cert, impersonation 1, ..., impersonation k]:
///  - the identity certificate chains to an anchor in `trust` at `at`;
///  - each impersonation link is signed with the key matching its parent's
///    subject public key, has linked issuer/subject DNs, names the same
///    impersonated DN, preserves the restriction once set, and is valid;
///  - the final subject key equals `holder_key`.
Result<ImpersonationResult> verify_impersonation_chain(
    std::span<const crypto::Certificate> chain, const crypto::TrustStore& trust,
    const crypto::PublicKey& holder_key, const std::string& expected_restriction,
    SimTime at);

}  // namespace e2e::sig
