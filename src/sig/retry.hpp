// Retry/backoff policy for signalling exchanges over a lossy fabric.
//
// The paper assumes every inter-BB message arrives; a real control plane
// does not. Each engine wraps its request/reply exchanges in a bounded
// retransmission loop: wait `retry_timeout(policy, attempt, seed)` for the
// answer, retransmit on silence, give up (and release tentative
// commitments) once the budget is spent.
//
// The timeout is a *pure function* of (policy, attempt, jitter_seed):
// capped geometric backoff plus deterministic jitter derived with a
// SplitMix64 mix of the seed. No shared RNG is consulted, so the parallel
// source-domain engine can compute timeouts from worker threads and every
// run stays replayable from its seed.
#pragma once

#include <cstdint>

#include "common/clock.hpp"

namespace e2e::sig {

struct RetryPolicy {
  /// Total tries per exchange (first transmission included).
  std::size_t max_attempts = 4;
  /// Timeout armed for the first attempt.
  SimDuration base_timeout = milliseconds(100);
  /// Geometric growth factor per attempt.
  double multiplier = 2.0;
  /// Backoff ceiling (pre-jitter).
  SimDuration max_timeout = seconds(2);
  /// Jitter fraction: the armed timeout lands in [t, t * (1 + jitter)].
  double jitter = 0.1;
};

/// Timeout armed for `attempt` (1-based). Deterministic: the same
/// (policy, attempt, jitter_seed) always yields the same duration.
inline SimDuration retry_timeout(const RetryPolicy& policy,
                                 std::size_t attempt,
                                 std::uint64_t jitter_seed) {
  double timeout = static_cast<double>(policy.base_timeout);
  for (std::size_t i = 1; i < attempt; ++i) {
    timeout *= policy.multiplier;
    if (timeout >= static_cast<double>(policy.max_timeout)) break;
  }
  if (timeout > static_cast<double>(policy.max_timeout)) {
    timeout = static_cast<double>(policy.max_timeout);
  }
  if (policy.jitter > 0) {
    // SplitMix64 finalizer over (seed, attempt) -> uniform in [0, 1).
    std::uint64_t z = jitter_seed + 0x9e3779b97f4a7c15ull *
                                        static_cast<std::uint64_t>(attempt);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
    timeout *= 1.0 + policy.jitter * u;
  }
  return static_cast<SimDuration>(timeout);
}

}  // namespace e2e::sig
