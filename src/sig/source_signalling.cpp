#include "sig/source_signalling.hpp"

#include <algorithm>
#include <future>
#include <optional>

#include "crypto/sha256.hpp"
#include "obs/audit.hpp"
#include "obs/instruments.hpp"
#include "sig/context_builder.hpp"
#include "sig/trust.hpp"

namespace e2e::sig {

void SourceDomainEngine::add_domain(bb::BandwidthBroker& broker,
                                    DomainOptions options) {
  Node node;
  node.broker = &broker;
  node.options = std::move(options);
  nodes_.emplace(broker.domain(), std::move(node));
}

void SourceDomainEngine::register_user(const std::string& domain,
                                       const crypto::Certificate& user_cert) {
  const auto it = nodes_.find(domain);
  if (it != nodes_.end()) {
    it->second.known_users.emplace(user_cert.subject().to_string(),
                                   user_cert);
  }
}

void SourceDomainEngine::set_domain_trace_recorder(
    const std::string& domain, obs::TraceRecorder* recorder) {
  const auto it = nodes_.find(domain);
  if (it != nodes_.end()) {
    it->second.recorder = recorder;
  }
}

SourceDomainEngine::PerDomainResult SourceDomainEngine::reserve_at(
    const std::string& domain, const std::string& agent_domain,
    const bb::ResSpec& spec, const crypto::Certificate& user_cert,
    const crypto::PrivateKey& user_key, SimTime at, const TraceCtx& trace,
    std::size_t hop_index) {
  const auto it = nodes_.find(domain);
  if (it == nodes_.end()) {
    return {domain,
            Result<bb::ReservationId>(make_error(
                ErrorCode::kNoRoute, "no broker for domain " + domain)),
            fabric_->rtt(agent_domain, domain) + fabric_->processing_delay()};
  }
  Node& node = it->second;
  bb::BandwidthBroker& broker = *node.broker;

  // The agent signs a request addressed directly to this broker and
  // retransmits on silence. One delivered request stands for the whole
  // exchange (the broker's answer rides the same abstraction), so faults
  // are applied to the request leg: a drop/partition/crash or a corrupted
  // request the broker discards all leave the agent waiting for the armed
  // timeout, then retrying. A duplicated delivery is suppressed at the
  // broker by request id rather than admitted twice.
  const RarMessage msg = RarMessage::create_user_request(
      spec, broker.dn().to_string(), {}, user_key);
  const Bytes wire = msg.encode();
  const crypto::Digest request_digest = crypto::sha256(wire);
  std::uint64_t jitter_seed = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    jitter_seed = (jitter_seed << 8) | request_digest[i];
  }

  auto& registry = obs::MetricsRegistry::global();
  // Each per-domain request carries the reservation's trace context in the
  // unsigned transport envelope; hop_count is this domain's path index.
  obs::TraceContext ctx_to_send = trace.wire;
  ctx_to_send.hop_count = static_cast<std::uint32_t>(hop_index);
  SimDuration latency = 0;
  SimTime arrival = at;
  std::optional<obs::TraceContext> rx_ctx;
  bool delivered = false;
  std::size_t attempts_used = 0;
  for (std::size_t attempt = 1; attempt <= retry_policy_.max_attempts;
       ++attempt) {
    attempts_used = attempt;
    if (attempt > 1) {
      registry.counter(obs::kSigRetransmitsTotal, {{"engine", "source"}})
          .increment();
    }
    Delivery sent = fabric_->transmit(agent_domain, domain, wire, &ctx_to_send);
    if (sent.delivered() && !sent.corrupted) {
      if (sent.duplicated) {
        // The broker sees the copy, recognizes the request id and drops it.
        registry
            .counter(obs::kSigDuplicatesSuppressedTotal, {{"via", "cache"}})
            .increment();
      }
      arrival = at + latency + sent.latency;  // timeouts waited + this leg
      latency += sent.latency + fabric_->one_way(agent_domain, domain) +
                 fabric_->processing_delay();
      rx_ctx = sent.trace_context;
      delivered = true;
      break;
    }
    // Lost, blocked or corrupted-and-discarded: wait out the timeout.
    registry.counter(obs::kSigTimeoutsTotal, {{"engine", "source"}})
        .increment();
    latency += retry_timeout(retry_policy_, attempt, jitter_seed);
  }
  if (attempts_used > 1) {
    registry.histogram(obs::kSigRetryAttempts, {{"engine", "source"}})
        .observe(static_cast<double>(attempts_used));
  }
  if (!delivered) {
    return {domain,
            Result<bb::ReservationId>(make_error(
                ErrorCode::kTimeout,
                "no answer from " + domain + " after " +
                    std::to_string(attempts_used) + " attempts",
                domain)),
            latency};
  }
  const SimDuration rtt = latency;

  // Broker-side processing walks a cursor over the delivered request's
  // processing-delay budget: verify 2/5, policy 1/4, admission the rest.
  // Per-domain recording requires the wire context to have arrived sampled.
  const SimDuration processing = fabric_->processing_delay();
  const SimDuration verify_cost = processing * 2 / 5;
  const SimDuration policy_cost = processing / 4;
  SimTime cursor = arrival;
  obs::TraceRecorder* local =
      (node.recorder != nullptr && rx_ctx.has_value() && rx_ctx->valid() &&
       rx_ctx->sampled)
          ? node.recorder
          : nullptr;
  obs::SpanScope hop(tracer_, local, trace.trace_id, "hop", trace.root, 0,
                     &cursor);
  hop.annotate("domain", domain);
  if (local != nullptr) {
    hop.annotate_secondary("remote.parent", rx_ctx->remote_parent_ref());
    hop.annotate_secondary("hop.index", std::to_string(rx_ctx->hop_count));
  }
  // Audit records written inside a stage join that stage's span (the
  // per-domain one when recording locally, else the engine-wide one).
  auto stage_ref = [&](const obs::SpanScope& scope) {
    const obs::SpanId id =
        scope.secondary_id() != 0 ? scope.secondary_id() : scope.id();
    return obs::SpanRef{id != 0 ? trace.trace_id : std::string(), id, cursor};
  };

  obs::SpanScope verify_scope(tracer_, local, trace.trace_id, "verify",
                              hop.id(), hop.secondary_id(), &cursor);
  // Direct trust has no verification cache: every request re-checks the
  // user's signature, so (unlike the hop-by-hop path) no cache field.
  auto audit_verify = [&](const char* result, const std::string& subject) {
    obs::CurrentSpan audit_scope(stage_ref(verify_scope));
    obs::AuditLog::global().append(
        domain, obs::audit_kind::kVerify,
        {{"result", result}, {"subject", subject}});
  };
  auto deny_verify = [&](Error e) {
    const std::string text = e.to_text();
    audit_verify("fail", spec.user);
    cursor += verify_cost;
    verify_scope.fail(text);
    verify_scope.finish();
    hop.annotate("stage", "verify");
    hop.fail(text);
    hop.finish();
    return PerDomainResult{domain, Result<bb::ReservationId>(std::move(e)),
                           rtt};
  };

  // Direct trust: this broker must know the user.
  const auto user_it = node.known_users.find(spec.user);
  if (user_it == node.known_users.end()) {
    return deny_verify(make_error(
        ErrorCode::kAuthenticationFailed,
        "user " + spec.user + " unknown in " + domain +
            " (source-based signalling requires direct trust "
            "with every domain)",
        domain));
  }
  if (!(user_it->second == user_cert)) {
    return deny_verify(make_error(
        ErrorCode::kAuthenticationFailed,
        "presented certificate does not match the registered one", domain));
  }
  auto verified = verify_user_request(msg, user_it->second, broker.dn(), at);
  if (!verified.ok()) {
    return deny_verify(verified.error());
  }
  audit_verify("ok", verified->user_dn.to_string());
  cursor += verify_cost;
  verify_scope.finish();

  ContextInputs inputs;
  inputs.broker = &broker;
  inputs.spec = &spec;
  inputs.user_dn = verified->user_dn;
  inputs.at = at;
  inputs.group_server = node.options.group_server;
  inputs.relevant_groups = &node.options.relevant_groups;
  inputs.cpu_reservation_checker = node.options.cpu_reservation_checker;
  const policy::EvalContext ctx = build_policy_context(inputs);
  obs::SpanScope policy_scope(tracer_, local, trace.trace_id, "policy",
                              hop.id(), hop.secondary_id(), &cursor);
  const policy::PolicyReply reply = [&] {
    obs::CurrentSpan audit_scope(stage_ref(policy_scope));
    return broker.policy_server().decide(ctx);
  }();
  cursor += policy_cost;
  if (reply.decision != policy::Decision::kGrant) {
    policy_scope.fail(reply.reason);
    policy_scope.finish();
    hop.annotate("stage", "policy");
    hop.fail(reply.reason);
    hop.finish();
    return {domain,
            Result<bb::ReservationId>(make_error(ErrorCode::kPolicyDenied,
                                                 reply.reason, domain)),
            rtt};
  }
  policy_scope.finish();

  // Approach 1 has no upstream-SLA context: each reservation is a direct
  // request against the domain's own capacity.
  obs::SpanScope admission_scope(tracer_, local, trace.trace_id, "admission",
                                 hop.id(), hop.secondary_id(), &cursor);
  auto committed = [&] {
    obs::CurrentSpan audit_scope(stage_ref(admission_scope));
    return broker.commit(spec, /*from_domain=*/"");
  }();
  cursor = arrival + processing;
  if (!committed.ok()) {
    const std::string text = committed.error().to_text();
    admission_scope.fail(text);
    admission_scope.finish();
    hop.annotate("stage", "admission");
    hop.fail(text);
  } else {
    admission_scope.finish();
  }
  hop.finish();
  return {domain, std::move(committed), rtt};
}

Result<SourceDomainEngine::Outcome> SourceDomainEngine::reserve(
    const std::vector<std::string>& domain_path, const bb::ResSpec& spec,
    const crypto::Certificate& user_cert, const crypto::PrivateKey& user_key,
    Mode mode, SimTime at) {
  if (domain_path.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "empty domain path");
  }
  return reserve_subset(domain_path, domain_path.front(), spec, user_cert,
                        user_key, mode, at);
}

Result<SourceDomainEngine::Outcome> SourceDomainEngine::reserve_subset(
    const std::vector<std::string>& contacted, const std::string& agent_domain,
    const bb::ResSpec& spec, const crypto::Certificate& user_cert,
    const crypto::PrivateKey& user_key, Mode mode, SimTime at) {
  if (contacted.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "no domains to contact");
  }
  auto& registry = obs::MetricsRegistry::global();
  registry.counter(obs::kSigRarRequestsTotal, {{"engine", "source"}})
      .increment();
  Outcome outcome;
  outcome.trace_id = "src-rar-" + std::to_string(next_request_++);

  // Root reservation span: engine-wide recorder plus the agent domain's own
  // recorder. Every per-domain request parents under it (locally for the
  // engine-wide recorder, via the wire context for per-domain ones).
  const auto agent_it = nodes_.find(agent_domain);
  obs::TraceRecorder* agent_recorder =
      agent_it != nodes_.end() ? agent_it->second.recorder : nullptr;
  const SimTime submitted = at;
  obs::SpanScope root(tracer_, agent_recorder, outcome.trace_id,
                      "reservation", 0, 0, &submitted);
  root.annotate("user", spec.user);
  root.annotate("source", agent_domain);
  root.annotate("destination", spec.destination_domain);
  root.annotate("rate_bits_per_s", std::to_string(spec.rate_bits_per_s));
  TraceCtx trace;
  trace.trace_id = outcome.trace_id;
  trace.root = root.id();
  trace.wire = obs::TraceContext{outcome.trace_id, agent_domain,
                                 root.secondary_id(), 0, true};

  // Every Outcome-producing exit closes the root (tagging failures) and
  // records the source-engine outcome counter and latency histogram.
  auto finish = [&](Outcome o) {
    if (!o.reply.granted) {
      root.annotate("failure.domain", o.reply.denial.origin);
      root.annotate("failure.code", to_string(o.reply.denial.code));
      root.fail(o.reply.denial.message);
    }
    root.finish_at(at + o.latency);
    registry
        .counter(obs::kSigRarOutcomesTotal,
                 {{"engine", "source"},
                  {"outcome", o.reply.granted ? "granted" : "denied"}})
        .increment();
    registry.histogram(obs::kSigE2eLatencyUs, {{"engine", "source"}})
        .observe(static_cast<double>(o.latency));
    return o;
  };
  std::vector<PerDomainResult> results;
  results.reserve(contacted.size());

  if (mode == Mode::kSequential) {
    for (std::size_t i = 0; i < contacted.size(); ++i) {
      results.push_back(reserve_at(contacted[i], agent_domain, spec,
                                   user_cert, user_key, at, trace, i));
      outcome.latency += results.back().rtt;  // one request at a time
      outcome.messages += 2;
      outcome.domains_contacted++;
      if (!results.back().outcome.ok()) break;  // stop on first denial
    }
  } else {
    // Parallel: all requests in flight at once; the answer arrives when the
    // slowest domain answers.
    ThreadPool pool(std::min<std::size_t>(contacted.size(), 16));
    std::vector<std::future<PerDomainResult>> futures;
    futures.reserve(contacted.size());
    for (std::size_t i = 0; i < contacted.size(); ++i) {
      futures.push_back(pool.submit([this, domain = contacted[i],
                                     agent_domain, &spec, &user_cert,
                                     &user_key, at, &trace, i] {
        return reserve_at(domain, agent_domain, spec, user_cert, user_key,
                          at, trace, i);
      }));
    }
    SimDuration slowest = 0;
    for (auto& f : futures) {
      results.push_back(f.get());
      slowest = std::max(slowest, results.back().rtt);
      outcome.messages += 2;
      outcome.domains_contacted++;
    }
    outcome.latency = slowest;
  }

  const bool all_granted =
      results.size() == contacted.size() &&
      std::all_of(results.begin(), results.end(),
                  [](const PerDomainResult& r) { return r.outcome.ok(); });
  if (all_granted) {
    outcome.reply = RarReply::approve();
    for (const auto& r : results) {
      outcome.reply.handles.emplace_back(r.domain, r.outcome.value());
    }
    return finish(std::move(outcome));
  }

  // Roll back any granted parts, then report the first denial.
  for (const auto& r : results) {
    if (r.outcome.ok()) {
      const auto it = nodes_.find(r.domain);
      if (it != nodes_.end()) {
        (void)it->second.broker->release(r.outcome.value());
      }
    }
  }
  for (const auto& r : results) {
    if (!r.outcome.ok()) {
      outcome.reply = RarReply::deny(r.outcome.error());
      return finish(std::move(outcome));
    }
  }
  outcome.reply = RarReply::deny(
      make_error(ErrorCode::kInternal, "incomplete reservation results"));
  return finish(std::move(outcome));
}

Status SourceDomainEngine::release_end_to_end(const RarReply& reply) {
  if (!reply.granted) {
    return make_error(ErrorCode::kInvalidArgument,
                      "cannot release a denied reservation");
  }
  for (const auto& [domain, handle] : reply.handles) {
    const auto it = nodes_.find(domain);
    if (it == nodes_.end()) continue;
    auto status = it->second.broker->release(handle);
    if (!status.ok()) return status;
  }
  return Status::ok_status();
}

}  // namespace e2e::sig
