#include "sig/source_signalling.hpp"

#include <algorithm>
#include <future>

#include "crypto/sha256.hpp"
#include "obs/instruments.hpp"
#include "sig/context_builder.hpp"
#include "sig/trust.hpp"

namespace e2e::sig {

void SourceDomainEngine::add_domain(bb::BandwidthBroker& broker,
                                    DomainOptions options) {
  Node node;
  node.broker = &broker;
  node.options = std::move(options);
  nodes_.emplace(broker.domain(), std::move(node));
}

void SourceDomainEngine::register_user(const std::string& domain,
                                       const crypto::Certificate& user_cert) {
  const auto it = nodes_.find(domain);
  if (it != nodes_.end()) {
    it->second.known_users.emplace(user_cert.subject().to_string(),
                                   user_cert);
  }
}

SourceDomainEngine::PerDomainResult SourceDomainEngine::reserve_at(
    const std::string& domain, const std::string& agent_domain,
    const bb::ResSpec& spec, const crypto::Certificate& user_cert,
    const crypto::PrivateKey& user_key, SimTime at) {
  const auto it = nodes_.find(domain);
  if (it == nodes_.end()) {
    return {domain,
            Result<bb::ReservationId>(make_error(
                ErrorCode::kNoRoute, "no broker for domain " + domain)),
            fabric_->rtt(agent_domain, domain) + fabric_->processing_delay()};
  }
  Node& node = it->second;
  bb::BandwidthBroker& broker = *node.broker;

  // The agent signs a request addressed directly to this broker and
  // retransmits on silence. One delivered request stands for the whole
  // exchange (the broker's answer rides the same abstraction), so faults
  // are applied to the request leg: a drop/partition/crash or a corrupted
  // request the broker discards all leave the agent waiting for the armed
  // timeout, then retrying. A duplicated delivery is suppressed at the
  // broker by request id rather than admitted twice.
  const RarMessage msg = RarMessage::create_user_request(
      spec, broker.dn().to_string(), {}, user_key);
  const Bytes wire = msg.encode();
  const crypto::Digest request_digest = crypto::sha256(wire);
  std::uint64_t jitter_seed = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    jitter_seed = (jitter_seed << 8) | request_digest[i];
  }

  auto& registry = obs::MetricsRegistry::global();
  SimDuration latency = 0;
  bool delivered = false;
  std::size_t attempts_used = 0;
  for (std::size_t attempt = 1; attempt <= retry_policy_.max_attempts;
       ++attempt) {
    attempts_used = attempt;
    if (attempt > 1) {
      registry.counter(obs::kSigRetransmitsTotal, {{"engine", "source"}})
          .increment();
    }
    Delivery sent = fabric_->transmit(agent_domain, domain, wire);
    if (sent.delivered() && !sent.corrupted) {
      if (sent.duplicated) {
        // The broker sees the copy, recognizes the request id and drops it.
        registry
            .counter(obs::kSigDuplicatesSuppressedTotal, {{"via", "cache"}})
            .increment();
      }
      latency += sent.latency + fabric_->one_way(agent_domain, domain) +
                 fabric_->processing_delay();
      delivered = true;
      break;
    }
    // Lost, blocked or corrupted-and-discarded: wait out the timeout.
    registry.counter(obs::kSigTimeoutsTotal, {{"engine", "source"}})
        .increment();
    latency += retry_timeout(retry_policy_, attempt, jitter_seed);
  }
  if (attempts_used > 1) {
    registry.histogram(obs::kSigRetryAttempts, {{"engine", "source"}})
        .observe(static_cast<double>(attempts_used));
  }
  if (!delivered) {
    return {domain,
            Result<bb::ReservationId>(make_error(
                ErrorCode::kTimeout,
                "no answer from " + domain + " after " +
                    std::to_string(attempts_used) + " attempts",
                domain)),
            latency};
  }
  const SimDuration rtt = latency;

  // Direct trust: this broker must know the user.
  const auto user_it = node.known_users.find(spec.user);
  if (user_it == node.known_users.end()) {
    return {domain,
            Result<bb::ReservationId>(make_error(
                ErrorCode::kAuthenticationFailed,
                "user " + spec.user + " unknown in " + domain +
                    " (source-based signalling requires direct trust "
                    "with every domain)",
                domain)),
            rtt};
  }
  if (!(user_it->second == user_cert)) {
    return {domain,
            Result<bb::ReservationId>(make_error(
                ErrorCode::kAuthenticationFailed,
                "presented certificate does not match the registered one",
                domain)),
            rtt};
  }
  auto verified = verify_user_request(msg, user_it->second, broker.dn(), at);
  if (!verified.ok()) {
    return {domain, Result<bb::ReservationId>(verified.error()), rtt};
  }

  ContextInputs inputs;
  inputs.broker = &broker;
  inputs.spec = &spec;
  inputs.user_dn = verified->user_dn;
  inputs.at = at;
  inputs.group_server = node.options.group_server;
  inputs.relevant_groups = &node.options.relevant_groups;
  inputs.cpu_reservation_checker = node.options.cpu_reservation_checker;
  const policy::EvalContext ctx = build_policy_context(inputs);
  const policy::PolicyReply reply = broker.policy_server().decide(ctx);
  if (reply.decision != policy::Decision::kGrant) {
    return {domain,
            Result<bb::ReservationId>(make_error(ErrorCode::kPolicyDenied,
                                                 reply.reason, domain)),
            rtt};
  }
  // Approach 1 has no upstream-SLA context: each reservation is a direct
  // request against the domain's own capacity.
  return {domain, broker.commit(spec, /*from_domain=*/""), rtt};
}

Result<SourceDomainEngine::Outcome> SourceDomainEngine::reserve(
    const std::vector<std::string>& domain_path, const bb::ResSpec& spec,
    const crypto::Certificate& user_cert, const crypto::PrivateKey& user_key,
    Mode mode, SimTime at) {
  if (domain_path.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "empty domain path");
  }
  return reserve_subset(domain_path, domain_path.front(), spec, user_cert,
                        user_key, mode, at);
}

Result<SourceDomainEngine::Outcome> SourceDomainEngine::reserve_subset(
    const std::vector<std::string>& contacted, const std::string& agent_domain,
    const bb::ResSpec& spec, const crypto::Certificate& user_cert,
    const crypto::PrivateKey& user_key, Mode mode, SimTime at) {
  if (contacted.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "no domains to contact");
  }
  auto& registry = obs::MetricsRegistry::global();
  registry.counter(obs::kSigRarRequestsTotal, {{"engine", "source"}})
      .increment();
  // Every Outcome-producing exit records the source-engine outcome counter
  // and the end-to-end latency histogram.
  auto finish = [&registry](Outcome o) {
    registry
        .counter(obs::kSigRarOutcomesTotal,
                 {{"engine", "source"},
                  {"outcome", o.reply.granted ? "granted" : "denied"}})
        .increment();
    registry.histogram(obs::kSigE2eLatencyUs, {{"engine", "source"}})
        .observe(static_cast<double>(o.latency));
    return o;
  };
  Outcome outcome;
  std::vector<PerDomainResult> results;
  results.reserve(contacted.size());

  if (mode == Mode::kSequential) {
    for (const auto& domain : contacted) {
      results.push_back(
          reserve_at(domain, agent_domain, spec, user_cert, user_key, at));
      outcome.latency += results.back().rtt;  // one request at a time
      outcome.messages += 2;
      outcome.domains_contacted++;
      if (!results.back().outcome.ok()) break;  // stop on first denial
    }
  } else {
    // Parallel: all requests in flight at once; the answer arrives when the
    // slowest domain answers.
    ThreadPool pool(std::min<std::size_t>(contacted.size(), 16));
    std::vector<std::future<PerDomainResult>> futures;
    futures.reserve(contacted.size());
    for (const auto& domain : contacted) {
      futures.push_back(pool.submit([this, domain, agent_domain, &spec,
                                     &user_cert, &user_key, at] {
        return reserve_at(domain, agent_domain, spec, user_cert, user_key,
                          at);
      }));
    }
    SimDuration slowest = 0;
    for (auto& f : futures) {
      results.push_back(f.get());
      slowest = std::max(slowest, results.back().rtt);
      outcome.messages += 2;
      outcome.domains_contacted++;
    }
    outcome.latency = slowest;
  }

  const bool all_granted =
      results.size() == contacted.size() &&
      std::all_of(results.begin(), results.end(),
                  [](const PerDomainResult& r) { return r.outcome.ok(); });
  if (all_granted) {
    outcome.reply = RarReply::approve();
    for (const auto& r : results) {
      outcome.reply.handles.emplace_back(r.domain, r.outcome.value());
    }
    return finish(std::move(outcome));
  }

  // Roll back any granted parts, then report the first denial.
  for (const auto& r : results) {
    if (r.outcome.ok()) {
      const auto it = nodes_.find(r.domain);
      if (it != nodes_.end()) {
        (void)it->second.broker->release(r.outcome.value());
      }
    }
  }
  for (const auto& r : results) {
    if (!r.outcome.ok()) {
      outcome.reply = RarReply::deny(r.outcome.error());
      return finish(std::move(outcome));
    }
  }
  outcome.reply = RarReply::deny(
      make_error(ErrorCode::kInternal, "incomplete reservation results"));
  return finish(std::move(outcome));
}

Status SourceDomainEngine::release_end_to_end(const RarReply& reply) {
  if (!reply.granted) {
    return make_error(ErrorCode::kInvalidArgument,
                      "cannot release a denied reservation");
  }
  for (const auto& [domain, handle] : reply.handles) {
    const auto it = nodes_.find(domain);
    if (it == nodes_.end()) continue;
    auto status = it->second.broker->release(handle);
    if (!status.ok()) return status;
  }
  return Status::ok_status();
}

}  // namespace e2e::sig
