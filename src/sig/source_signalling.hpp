// Source-domain-based signalling (the paper's Approach 1, Fig. 3).
//
// "Alice, or an agent working on her behalf, can contact each BB
// individually. A positive response from every BB indicates that Alice has
// an end-to-end reservation. However, there are two serious flaws ...
// First, it is difficult to scale since each BB must know about (and be
// able to authenticate) Alice ... Furthermore, if another user, Bob, makes
// an incomplete reservation, either maliciously or accidentally, he can
// interfere with Alice's reservation." (Fig. 4.)
//
// This engine implements that approach faithfully, including its flaws:
//  - every contacted BB authenticates the user directly (a per-domain
//    registry of known users — the scalability problem);
//  - reservations can be issued sequentially or in parallel ("source-
//    domain-based signalling may be faster ... because the reservations
//    for each domain can be made in parallel");
//  - nothing forces the agent to contact every domain on the path:
//    `reserve_subset` models David's misreservation.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "bb/bandwidth_broker.hpp"
#include "common/thread_pool.hpp"
#include "obs/trace.hpp"
#include "policy/group_server.hpp"
#include "sig/message.hpp"
#include "sig/retry.hpp"
#include "sig/transport.hpp"

namespace e2e::sig {

class SourceDomainEngine {
 public:
  explicit SourceDomainEngine(Transport& fabric) : fabric_(&fabric) {}

  /// Retry budget and backoff for each per-domain request. Timeouts are a
  /// pure function of (policy, attempt, request digest), so the parallel
  /// mode stays deterministic without a shared RNG.
  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  struct DomainOptions {
    policy::GroupServer* group_server = nullptr;
    std::vector<std::string> relevant_groups;
    std::function<bool(const std::string&)> cpu_reservation_checker;
  };

  void add_domain(bb::BandwidthBroker& broker, DomainOptions options);
  void add_domain(bb::BandwidthBroker& broker) {
    add_domain(broker, DomainOptions());
  }

  /// Direct trust registration: the user must be known at EVERY domain it
  /// wants to reserve in (the approach's scalability flaw).
  void register_user(const std::string& domain,
                     const crypto::Certificate& user_cert);

  enum class Mode { kSequential, kParallel };

  struct Outcome {
    RarReply reply;
    SimDuration latency = 0;
    std::size_t domains_contacted = 0;
    std::size_t messages = 0;
    /// Request id keying this reservation's spans in the attached
    /// TraceRecorder (empty when none is attached).
    std::string trace_id;
  };

  /// Attach an engine-wide trace recorder (mirrors HopByHopEngine). In
  /// parallel mode span creation order across domains is nondeterministic;
  /// tests asserting exact trees use sequential mode.
  void set_trace_recorder(obs::TraceRecorder* recorder) { tracer_ = recorder; }

  /// Attach `domain`'s own recorder; cross-domain linkage travels in the
  /// unsigned transport envelope exactly as in the hop-by-hop engine.
  void set_domain_trace_recorder(const std::string& domain,
                                 obs::TraceRecorder* recorder);

  /// Reserve in every domain on `domain_path` (source first). The agent
  /// runs in `domain_path.front()`. On any denial, already-granted
  /// per-domain reservations are rolled back.
  Result<Outcome> reserve(const std::vector<std::string>& domain_path,
                          const bb::ResSpec& spec,
                          const crypto::Certificate& user_cert,
                          const crypto::PrivateKey& user_key, Mode mode,
                          SimTime at);

  /// The misreservation primitive (Fig. 4): contact only `contacted`
  /// (a subset of the real path). The engine cannot stop a user from doing
  /// this — that is the point the paper makes against Approach 1.
  Result<Outcome> reserve_subset(const std::vector<std::string>& contacted,
                                 const std::string& agent_domain,
                                 const bb::ResSpec& spec,
                                 const crypto::Certificate& user_cert,
                                 const crypto::PrivateKey& user_key,
                                 Mode mode, SimTime at);

  Status release_end_to_end(const RarReply& reply);

 private:
  struct Node {
    bb::BandwidthBroker* broker = nullptr;
    DomainOptions options;
    std::map<std::string, crypto::Certificate> known_users;
    /// This domain's own trace recorder (nullptr = no local recording).
    obs::TraceRecorder* recorder = nullptr;
  };

  struct PerDomainResult {
    std::string domain;
    Result<bb::ReservationId> outcome;
    SimDuration rtt = 0;

    PerDomainResult(std::string d, Result<bb::ReservationId> o, SimDuration r)
        : domain(std::move(d)), outcome(std::move(o)), rtt(r) {}
  };

  /// Tracing state shared by every per-domain request of one reservation.
  struct TraceCtx {
    std::string trace_id;
    /// Root reservation span in the engine-wide recorder (0 = off).
    obs::SpanId root = 0;
    /// Wire trace context stamped on each request's transport envelope
    /// (hop_count is replaced per domain with its path index).
    obs::TraceContext wire;
  };

  /// One per-domain reservation: authenticate the user, evaluate policy,
  /// admit. Thread-safe across distinct domains.
  PerDomainResult reserve_at(const std::string& domain,
                             const std::string& agent_domain,
                             const bb::ResSpec& spec,
                             const crypto::Certificate& user_cert,
                             const crypto::PrivateKey& user_key, SimTime at,
                             const TraceCtx& trace, std::size_t hop_index);

  Transport* fabric_;
  RetryPolicy retry_policy_;
  std::map<std::string, Node> nodes_;
  std::uint64_t next_request_ = 1;
  obs::TraceRecorder* tracer_ = nullptr;
};

}  // namespace e2e::sig
