// Signalling-plane transport fabric.
//
// All signalling in this library runs in-process; the fabric supplies the
// *model* of the wide-area control plane: one-way latencies between named
// parties, message/byte accounting, and — when armed — a deterministic
// per-link fault model (drop/duplicate/corrupt/delay-jitter probabilities,
// explicit link partitions and broker crash toggles). The engines consult
// it to compute the modeled end-to-end signalling latency of each strategy
// (bench/fig3), to count the messages each strategy generates
// (bench/tunnel_scaling), and — through transmit() — to find out what a
// lossy control plane did to each message they sent.
//
// With no fault state armed (the default), transmit() degenerates to the
// clean model: every message is delivered once, unmodified, after exactly
// one_way(from, to). Fault decisions come from a private RNG seeded via
// seed_faults(), so a run is replayable from its seed.
//
// Thread safety: one mutex guards latencies, counters and all fault state
// — the parallel source-based engine calls one_way()/transmit() from
// worker threads while tests and benches mutate latencies.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/tlv.hpp"
#include "obs/trace.hpp"

namespace e2e::sig {

/// Largest payload any transport accepts in one message. Mirrors the
/// stream transports' frame cap (net/stream_framing.hpp) so a message that
/// fits the in-memory fabric also fits a real socket, and vice versa.
inline constexpr std::size_t kMaxTransportPayload = 1u << 20;  // 1 MiB

// TLV tags of the *unsigned* trace-context envelope that may accompany a
// transmission (docs/OBSERVABILITY.md, "TraceContext wire format"). The
// envelope is carried out of band next to the sealed record: it is never
// part of the signed RAR bytes or the channel MAC input, so arming
// tracing changes no signature, digest or grant byte.
namespace envelope_tag {
inline constexpr tlv::Tag kTraceContext = 0xE270;  // container
inline constexpr tlv::Tag kTraceId = 0xE271;       // string
inline constexpr tlv::Tag kOrigin = 0xE272;        // string
inline constexpr tlv::Tag kSpanId = 0xE273;        // u64
inline constexpr tlv::Tag kHopCount = 0xE274;      // u32
inline constexpr tlv::Tag kSampled = 0xE275;       // bool
}  // namespace envelope_tag

/// Canonical TLV encoding of a trace context (the envelope payload).
Bytes encode_trace_context(const obs::TraceContext& context);
Result<obs::TraceContext> decode_trace_context(BytesView bytes);

/// Per-link, per-direction fault probabilities. All-zero (the default)
/// means the link behaves exactly like the pre-fault-model fabric.
struct FaultProfile {
  double drop = 0;       // message vanishes in transit
  double duplicate = 0;  // message arrives twice
  double corrupt = 0;    // payload arrives with flipped bytes
  double jitter = 0;     // delivery is late by up to max_jitter
  SimDuration max_jitter = milliseconds(50);

  bool any() const {
    return drop > 0 || duplicate > 0 || corrupt > 0 || jitter > 0;
  }
};

/// What the fabric did to one transmitted message.
struct Delivery {
  enum class Outcome {
    kDelivered,    // payload arrived (possibly corrupted/duplicated/late)
    kDropped,      // lost in transit
    kPartitioned,  // link explicitly partitioned
    kPeerDown,     // either end's broker is crashed
  };
  Outcome outcome = Outcome::kDelivered;
  /// Payload as received (differs from the sent bytes when corrupted).
  Bytes payload;
  /// One-way delivery latency including any jitter penalty.
  SimDuration latency = 0;
  bool corrupted = false;
  /// A second copy arrived right behind the first one.
  bool duplicated = false;
  /// Trace context from the unsigned envelope, when the sender attached
  /// one and the message was delivered. Envelope corruption is not
  /// modeled: telemetry is best-effort metadata, and the fault RNG must
  /// not consume extra draws (clean-path byte-identity).
  std::optional<obs::TraceContext> trace_context;

  bool delivered() const { return outcome == Outcome::kDelivered; }
};

/// One message sitting in a party's inbox (queue-delivery surface).
struct InboundMessage {
  std::string from;
  Bytes payload;
  /// Trace context from the unsigned envelope, when the sender attached
  /// one.
  std::optional<obs::TraceContext> trace_context;
};

/// The transport seam between the signalling engines and whatever carries
/// their bytes. Two implementations exist:
///
///  - sig::Fabric — the in-memory model of the wide-area control plane
///    (modeled latencies, deterministic fault injection, virtual time);
///  - net::SocketTransport — real length-framed byte streams over TCP or
///    UNIX-domain sockets between OS processes (src/net/).
///
/// The engines consume the *modeled* surface (transmit / one_way /
/// processing_delay / record_message). The *queue-delivery* surface
/// (send / receive) is the part the two implementations share
/// observably — tests/net_transport_conformance_test.cpp runs one
/// assertion set against both so they can never drift.
class Transport {
 public:
  struct Stats {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  };

  virtual ~Transport() = default;

  /// One-way delivery latency between two parties as modeled (or measured)
  /// by this transport. Socket transports report 0: their latency is real
  /// wall-clock time, not part of the virtual-time model.
  virtual SimDuration one_way(const std::string& a,
                              const std::string& b) const = 0;
  SimDuration rtt(const std::string& a, const std::string& b) const {
    return 2 * one_way(a, b);
  }

  /// Per-hop processing budget a broker spends on verification, policy and
  /// admission before forwarding (modeled; the real CPU cost is measured
  /// separately by the microbenchmarks).
  virtual SimDuration processing_delay() const = 0;

  /// Account one message without transmitting (modeled side channels).
  /// Thread-safe: the parallel source-based engine records messages from
  /// worker threads.
  virtual void record_message(const std::string& from, const std::string& to,
                              std::size_t bytes) = 0;

  /// Send one message and learn its fate synchronously. The engines'
  /// request/reply exchanges are built on this call.
  virtual Delivery transmit(const std::string& from, const std::string& to,
                            BytesView payload,
                            const obs::TraceContext* trace_context = nullptr) = 0;

  /// Queue-delivery: send `payload` toward `to`'s inbox. Fails with
  /// kInvalidArgument when the payload exceeds kMaxTransportPayload, and
  /// with kUnavailable / kTimeout when the transport knows delivery is
  /// impossible (peer down, link partitioned, connection refused).
  virtual Status send(const std::string& from, const std::string& to,
                      BytesView payload,
                      const obs::TraceContext* trace_context = nullptr) = 0;

  /// Pop the next message from `self`'s inbox in arrival order, waiting up
  /// to `wait` wall-clock time for one to arrive. The in-memory fabric
  /// delivers instantaneously in virtual time, so it never blocks: an
  /// empty inbox returns kTimeout immediately whatever `wait` says.
  virtual Result<InboundMessage> receive(const std::string& self,
                                         std::chrono::milliseconds wait) = 0;

  /// Message/byte accounting since the last reset.
  virtual Stats total() const = 0;
  virtual void reset_counters() = 0;
};

class Fabric : public Transport {
 public:
  using Stats = Transport::Stats;

  /// Symmetric one-way latency between two parties.
  void set_latency(const std::string& a, const std::string& b,
                   SimDuration one_way);
  void set_default_latency(SimDuration one_way);

  SimDuration one_way(const std::string& a,
                      const std::string& b) const override;

  /// Per-hop processing budget a broker spends on verification, policy and
  /// admission before forwarding (modeled; the real CPU cost is measured
  /// separately by the microbenchmarks).
  void set_processing_delay(SimDuration d) { processing_delay_ = d; }
  SimDuration processing_delay() const override { return processing_delay_; }

  /// Thread-safe: the parallel source-based engine records messages from
  /// worker threads.
  void record_message(const std::string& from, const std::string& to,
                      std::size_t bytes) override;
  Stats total() const override;
  Stats between(const std::string& a, const std::string& b) const;
  void reset_counters() override;

  // --- Fault model -----------------------------------------------------------

  /// Seed the private fault RNG; fault decisions never consume any other
  /// RNG, so clean-path runs are unaffected by the seed.
  void seed_faults(std::uint64_t seed);

  /// Profile applied to every link without a per-link override.
  void set_default_fault_profile(const FaultProfile& profile);

  /// Directional override for messages from `from` to `to`.
  void set_fault_profile(const std::string& from, const std::string& to,
                         const FaultProfile& profile);
  FaultProfile fault_profile(const std::string& from,
                             const std::string& to) const;

  /// Explicit link partition (symmetric): transmissions between the two
  /// parties fail with Delivery::Outcome::kPartitioned until healed.
  void partition(const std::string& a, const std::string& b);
  void heal(const std::string& a, const std::string& b);
  bool partitioned(const std::string& a, const std::string& b) const;

  /// Broker crash toggle: while down, nothing is delivered to — or sent
  /// by — `name`.
  void set_down(const std::string& name, bool down);
  bool is_down(const std::string& name) const;

  /// Drop all fault state (profiles, partitions, crashes). The fault RNG
  /// keeps its position; re-seed for a fresh replayable sequence.
  void clear_faults();

  /// Send one message and learn its fate. Always counts the transmission
  /// in the message/byte statistics (the sender spent the bytes even when
  /// the fabric lost them). With no fault state armed this is exactly
  /// record_message() plus a clean Delivery carrying one_way(from, to).
  ///
  /// `trace_context`, when non-null, rides the unsigned envelope: it is
  /// encoded/decoded through the TLV wire format, shares the payload's
  /// delivery fate, and is accounted only in the e2e_obs_trace_ctx_*
  /// counters — never in the fabric message/byte statistics the protocol
  /// benches assert on.
  Delivery transmit(const std::string& from, const std::string& to,
                    BytesView payload,
                    const obs::TraceContext* trace_context = nullptr) override;

  /// Queue-delivery on the in-memory fabric: a transmit() whose payload —
  /// when it survives the fault model — lands in `to`'s inbox instead of
  /// being handed back to the caller. Lost messages (drop, partition,
  /// peer down) report kUnavailable.
  Status send(const std::string& from, const std::string& to,
              BytesView payload,
              const obs::TraceContext* trace_context = nullptr) override;

  /// Instantaneous in virtual time: `wait` is ignored, an empty inbox is
  /// kTimeout immediately.
  Result<InboundMessage> receive(const std::string& self,
                                 std::chrono::milliseconds wait) override;

 private:
  static std::pair<std::string, std::string> key(const std::string& a,
                                                 const std::string& b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  SimDuration one_way_unlocked(const std::string& a,
                               const std::string& b) const;
  void count_unlocked(const std::string& from, const std::string& to,
                      std::size_t bytes);
  const FaultProfile& profile_unlocked(const std::string& from,
                                       const std::string& to) const;

  mutable std::mutex mutex_;
  std::map<std::pair<std::string, std::string>, SimDuration> latencies_;
  std::map<std::pair<std::string, std::string>, Stats> per_pair_;
  Stats total_;
  SimDuration default_latency_ = milliseconds(20);
  SimDuration processing_delay_ = milliseconds(1);

  FaultProfile default_profile_;
  std::map<std::pair<std::string, std::string>, FaultProfile> profiles_;
  std::set<std::pair<std::string, std::string>> partitions_;
  std::set<std::string> down_;
  Rng fault_rng_{0x6661756c74ull};  // "fault"
  std::map<std::string, std::deque<InboundMessage>> inboxes_;
};

}  // namespace e2e::sig
