// Signalling-plane transport fabric.
//
// All signalling in this library runs in-process; the fabric supplies the
// *model* of the wide-area control plane: one-way latencies between named
// parties and message/byte accounting. The engines consult it to compute
// the modeled end-to-end signalling latency of each strategy (bench/fig3)
// and to count the messages each strategy generates (bench/tunnel_scaling).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "common/clock.hpp"

namespace e2e::sig {

class Fabric {
 public:
  /// Symmetric one-way latency between two parties.
  void set_latency(const std::string& a, const std::string& b,
                   SimDuration one_way);
  void set_default_latency(SimDuration one_way) { default_latency_ = one_way; }

  SimDuration one_way(const std::string& a, const std::string& b) const;
  SimDuration rtt(const std::string& a, const std::string& b) const {
    return 2 * one_way(a, b);
  }

  /// Per-hop processing budget a broker spends on verification, policy and
  /// admission before forwarding (modeled; the real CPU cost is measured
  /// separately by the microbenchmarks).
  void set_processing_delay(SimDuration d) { processing_delay_ = d; }
  SimDuration processing_delay() const { return processing_delay_; }

  struct Stats {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  };

  /// Thread-safe: the parallel source-based engine records messages from
  /// worker threads.
  void record_message(const std::string& from, const std::string& to,
                      std::size_t bytes);
  Stats total() const;
  Stats between(const std::string& a, const std::string& b) const;
  void reset_counters();

 private:
  static std::pair<std::string, std::string> key(const std::string& a,
                                                 const std::string& b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  std::map<std::pair<std::string, std::string>, SimDuration> latencies_;
  mutable std::mutex counter_mutex_;
  std::map<std::pair<std::string, std::string>, Stats> per_pair_;
  Stats total_;
  SimDuration default_latency_ = milliseconds(20);
  SimDuration processing_delay_ = milliseconds(1);
};

}  // namespace e2e::sig
