// STARS-style reservation coordinator (paper §3).
//
// "The STARS system adopts a variant of this approach, in which a separate
// source domain entity — the reservation coordinator (RC) — performs the
// end-to-end reservation. This strategy alleviates the problems noted
// above, in two respects: first, in many situations it may be feasible for
// the RC to be 'trusted' to make all necessary reservations; second, all
// bandwidth-brokers need not be aware of all end-users. However, we still
// require a direct trust relationship between all intermediate and
// possible end-domains."
//
// The RC is a principal of its own: domains register the RC's certificate
// once (instead of every user's); the RC authorizes local users and issues
// reservations under its own identity, keeping the user attribution in its
// local records.
#pragma once

#include <map>
#include <set>
#include <string>

#include "sig/source_signalling.hpp"

namespace e2e::sig {

class ReservationCoordinator {
 public:
  ReservationCoordinator(SourceDomainEngine& engine, std::string home_domain,
                         crypto::Certificate certificate,
                         crypto::PrivateKey key)
      : engine_(&engine),
        home_domain_(std::move(home_domain)),
        certificate_(std::move(certificate)),
        key_(std::move(key)) {}

  const crypto::Certificate& certificate() const { return certificate_; }
  const std::string& home_domain() const { return home_domain_; }

  /// Install the RC's trust relationship with every domain it may reserve
  /// in ("we still require a direct trust relationship between all
  /// intermediate and possible end-domains").
  void enroll_with_domains(const std::vector<std::string>& domains) {
    for (const auto& domain : domains) {
      engine_->register_user(domain, certificate_);
    }
  }

  /// Local user authorization: the RC decides who may reserve through it —
  /// the brokers never learn the user identities.
  void authorize_user(const std::string& user_dn) {
    authorized_.insert(user_dn);
  }
  bool is_authorized(const std::string& user_dn) const {
    return authorized_.contains(user_dn);
  }

  struct CoordinatedReservation {
    SourceDomainEngine::Outcome outcome;
    std::string on_behalf_of;
  };

  /// Reserve along `path` on behalf of `user_dn`. The request travels
  /// under the RC's identity; the user attribution stays in the RC's
  /// records.
  Result<CoordinatedReservation> reserve_for(
      const std::string& user_dn, const std::vector<std::string>& path,
      bb::ResSpec spec, SourceDomainEngine::Mode mode, SimTime at) {
    if (!is_authorized(user_dn)) {
      return make_error(ErrorCode::kPolicyDenied,
                        user_dn + " is not authorized to use coordinator " +
                            certificate_.subject().to_string(),
                        home_domain_);
    }
    spec.user = certificate_.subject().to_string();
    auto outcome =
        engine_->reserve(path, spec, certificate_, key_, mode, at);
    if (!outcome) return outcome.error();
    if (outcome->reply.granted) {
      for (const auto& [domain, handle] : outcome->reply.handles) {
        attribution_[handle] = user_dn;
      }
    }
    return CoordinatedReservation{std::move(*outcome), user_dn};
  }

  Status release(const CoordinatedReservation& reservation) {
    for (const auto& [domain, handle] : reservation.outcome.reply.handles) {
      attribution_.erase(handle);
    }
    return engine_->release_end_to_end(reservation.outcome.reply);
  }

  /// Which user a granted per-domain handle belongs to ("" if unknown) —
  /// the accounting/audit hook the brokers cannot provide themselves.
  std::string attributed_user(const std::string& handle) const {
    const auto it = attribution_.find(handle);
    return it == attribution_.end() ? "" : it->second;
  }

 private:
  SourceDomainEngine* engine_;
  std::string home_domain_;
  crypto::Certificate certificate_;
  crypto::PrivateKey key_;
  std::set<std::string> authorized_;
  std::map<std::string, std::string> attribution_;
};

}  // namespace e2e::sig
