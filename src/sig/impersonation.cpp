#include "sig/impersonation.hpp"

namespace e2e::sig {

crypto::Certificate::Builder build_impersonation(
    const crypto::Certificate& parent,
    const crypto::DistinguishedName& delegate_dn,
    const crypto::PublicKey& delegate_key, const std::string& restriction,
    TimeInterval validity, std::uint64_t serial) {
  crypto::Certificate::Builder b;
  b.serial = serial;
  b.issuer = parent.subject();
  b.subject = delegate_dn;
  b.validity = validity;
  b.subject_key = delegate_key;
  // The impersonated end entity: inherited from an impersonation parent,
  // or the parent's own subject when the chain starts at an identity cert.
  const std::string impersonated =
      parent.extension_value(kExtImpersonates)
          .value_or(parent.subject().to_string());
  b.extensions.push_back(
      crypto::Extension{kExtImpersonates, /*critical=*/true, impersonated});
  std::string effective = restriction;
  if (const auto inherited =
          parent.extension_value(crypto::kExtValidForRar)) {
    effective = *inherited;  // once restricted, always restricted
  }
  if (!effective.empty()) {
    b.extensions.push_back(
        crypto::Extension{crypto::kExtValidForRar, true, effective});
  }
  return b;
}

namespace {
Error chain_error(std::string msg) {
  return make_error(ErrorCode::kUntrustedKey,
                    "impersonation chain: " + std::move(msg));
}
}  // namespace

Result<ImpersonationResult> verify_impersonation_chain(
    std::span<const crypto::Certificate> chain, const crypto::TrustStore& trust,
    const crypto::PublicKey& holder_key,
    const std::string& expected_restriction, SimTime at) {
  if (chain.size() < 2) {
    return chain_error("needs an identity certificate plus at least one "
                       "impersonation link");
  }
  const crypto::Certificate& identity = chain[0];
  auto anchored = trust.verify_chain(identity, {}, at);
  if (!anchored.ok()) {
    return chain_error("identity certificate rejected: " +
                       anchored.error().to_text());
  }

  ImpersonationResult out;
  out.impersonated = identity.subject();
  out.length = chain.size() - 1;
  std::string restriction;

  for (std::size_t i = 1; i < chain.size(); ++i) {
    const crypto::Certificate& cert = chain[i];
    const crypto::Certificate& parent = chain[i - 1];
    if (!cert.valid_at(at)) {
      return make_error(ErrorCode::kExpired,
                        "impersonation chain: link " + std::to_string(i) +
                            " expired");
    }
    if (!cert.verify_signature(parent.subject_public_key())) {
      return chain_error("link " + std::to_string(i) +
                         " not signed with parent's subject key");
    }
    if (cert.issuer() != parent.subject()) {
      return chain_error("link " + std::to_string(i) +
                         " issuer does not match parent subject");
    }
    const std::string impersonates =
        cert.extension_value(kExtImpersonates).value_or("");
    if (impersonates != out.impersonated.to_string()) {
      return chain_error("link " + std::to_string(i) +
                         " impersonates '" + impersonates +
                         "', expected '" + out.impersonated.to_string() +
                         "'");
    }
    const std::string link_restriction =
        cert.extension_value(crypto::kExtValidForRar).value_or("");
    if (!restriction.empty() && link_restriction != restriction) {
      return chain_error("link " + std::to_string(i) +
                         " altered the restriction");
    }
    restriction = link_restriction;
  }

  if (!expected_restriction.empty() && !restriction.empty() &&
      restriction != expected_restriction) {
    return chain_error("restriction '" + restriction +
                       "' does not match '" + expected_restriction + "'");
  }
  if (!(chain.back().subject_public_key() == holder_key)) {
    return chain_error("final subject key is not the presenting holder's");
  }
  out.restriction = restriction;
  return out;
}

}  // namespace e2e::sig
