#include "sig/transport.hpp"

#include <algorithm>

#include "obs/instruments.hpp"

namespace e2e::sig {

Bytes encode_trace_context(const obs::TraceContext& context) {
  tlv::Writer writer;
  writer.open(envelope_tag::kTraceContext);
  writer.put_string(envelope_tag::kTraceId, context.trace_id);
  writer.put_string(envelope_tag::kOrigin, context.origin);
  writer.put_u64(envelope_tag::kSpanId, context.span_id);
  writer.put_u32(envelope_tag::kHopCount, context.hop_count);
  writer.put_bool(envelope_tag::kSampled, context.sampled);
  writer.close();
  return writer.take();
}

Result<obs::TraceContext> decode_trace_context(BytesView bytes) {
  tlv::Reader outer(bytes);
  auto nested = outer.read_nested(envelope_tag::kTraceContext);
  if (!nested.ok()) return nested.error();
  tlv::Reader& reader = nested.value();
  obs::TraceContext context;
  auto trace_id = reader.read_string(envelope_tag::kTraceId);
  if (!trace_id.ok()) return trace_id.error();
  context.trace_id = std::move(trace_id.value());
  auto origin = reader.read_string(envelope_tag::kOrigin);
  if (!origin.ok()) return origin.error();
  context.origin = std::move(origin.value());
  auto span_id = reader.read_u64(envelope_tag::kSpanId);
  if (!span_id.ok()) return span_id.error();
  context.span_id = span_id.value();
  auto hop_count = reader.read_u32(envelope_tag::kHopCount);
  if (!hop_count.ok()) return hop_count.error();
  context.hop_count = hop_count.value();
  auto sampled = reader.read_bool(envelope_tag::kSampled);
  if (!sampled.ok()) return sampled.error();
  context.sampled = sampled.value();
  if (!outer.at_end()) {
    return make_error(ErrorCode::kBadMessage,
                      "trailing bytes after trace-context envelope", "");
  }
  return context;
}

void Fabric::set_latency(const std::string& a, const std::string& b,
                         SimDuration one_way) {
  std::lock_guard lock(mutex_);
  latencies_[key(a, b)] = one_way;
}

void Fabric::set_default_latency(SimDuration one_way) {
  std::lock_guard lock(mutex_);
  default_latency_ = one_way;
}

SimDuration Fabric::one_way_unlocked(const std::string& a,
                                     const std::string& b) const {
  if (a == b) return 0;
  const auto it = latencies_.find(key(a, b));
  return it == latencies_.end() ? default_latency_ : it->second;
}

SimDuration Fabric::one_way(const std::string& a, const std::string& b) const {
  std::lock_guard lock(mutex_);
  return one_way_unlocked(a, b);
}

void Fabric::count_unlocked(const std::string& from, const std::string& to,
                            std::size_t bytes) {
  Stats& pair_stats = per_pair_[key(from, to)];
  pair_stats.messages++;
  pair_stats.bytes += bytes;
  total_.messages++;
  total_.bytes += bytes;
}

void Fabric::record_message(const std::string& from, const std::string& to,
                            std::size_t bytes) {
  auto& registry = obs::MetricsRegistry::global();
  registry.counter(obs::kSigFabricMessagesTotal).increment();
  registry.counter(obs::kSigFabricBytesTotal).increment(bytes);
  std::lock_guard lock(mutex_);
  count_unlocked(from, to, bytes);
}

Fabric::Stats Fabric::total() const {
  std::lock_guard lock(mutex_);
  return total_;
}

Fabric::Stats Fabric::between(const std::string& a,
                              const std::string& b) const {
  std::lock_guard lock(mutex_);
  const auto it = per_pair_.find(key(a, b));
  return it == per_pair_.end() ? Stats{} : it->second;
}

void Fabric::reset_counters() {
  std::lock_guard lock(mutex_);
  per_pair_.clear();
  total_ = Stats{};
}

void Fabric::seed_faults(std::uint64_t seed) {
  std::lock_guard lock(mutex_);
  fault_rng_ = Rng(seed);
}

void Fabric::set_default_fault_profile(const FaultProfile& profile) {
  std::lock_guard lock(mutex_);
  default_profile_ = profile;
}

void Fabric::set_fault_profile(const std::string& from, const std::string& to,
                               const FaultProfile& profile) {
  std::lock_guard lock(mutex_);
  profiles_[{from, to}] = profile;
}

const FaultProfile& Fabric::profile_unlocked(const std::string& from,
                                             const std::string& to) const {
  const auto it = profiles_.find({from, to});
  return it == profiles_.end() ? default_profile_ : it->second;
}

FaultProfile Fabric::fault_profile(const std::string& from,
                                   const std::string& to) const {
  std::lock_guard lock(mutex_);
  return profile_unlocked(from, to);
}

void Fabric::partition(const std::string& a, const std::string& b) {
  std::lock_guard lock(mutex_);
  partitions_.insert(key(a, b));
}

void Fabric::heal(const std::string& a, const std::string& b) {
  std::lock_guard lock(mutex_);
  partitions_.erase(key(a, b));
}

bool Fabric::partitioned(const std::string& a, const std::string& b) const {
  std::lock_guard lock(mutex_);
  return partitions_.contains(key(a, b));
}

void Fabric::set_down(const std::string& name, bool down) {
  std::lock_guard lock(mutex_);
  if (down) {
    down_.insert(name);
  } else {
    down_.erase(name);
  }
}

bool Fabric::is_down(const std::string& name) const {
  std::lock_guard lock(mutex_);
  return down_.contains(name);
}

void Fabric::clear_faults() {
  std::lock_guard lock(mutex_);
  default_profile_ = FaultProfile{};
  profiles_.clear();
  partitions_.clear();
  down_.clear();
}

Delivery Fabric::transmit(const std::string& from, const std::string& to,
                          BytesView payload,
                          const obs::TraceContext* trace_context) {
  auto& registry = obs::MetricsRegistry::global();
  registry.counter(obs::kSigFabricMessagesTotal).increment();
  registry.counter(obs::kSigFabricBytesTotal).increment(payload.size());

  // The unsigned envelope travels next to the payload: encode through the
  // wire format (so the overhead is real and accounted), decode on the
  // receiving side below. It must not consume fault RNG draws or touch
  // the fabric byte counters the protocol benches pin.
  Bytes envelope;
  if (trace_context != nullptr && trace_context->valid()) {
    envelope = encode_trace_context(*trace_context);
    registry.counter(obs::kObsTraceCtxPropagatedTotal).increment();
    registry.counter(obs::kObsTraceCtxBytesTotal)
        .increment(envelope.size());
  }

  Delivery d;
  const char* loss_kind = nullptr;
  bool delayed = false;
  {
    std::lock_guard lock(mutex_);
    count_unlocked(from, to, payload.size());
    if (down_.contains(to) || down_.contains(from)) {
      d.outcome = Delivery::Outcome::kPeerDown;
      loss_kind = "down";
    } else if (partitions_.contains(key(from, to))) {
      d.outcome = Delivery::Outcome::kPartitioned;
      loss_kind = "partition";
    } else {
      const FaultProfile& profile = profile_unlocked(from, to);
      if (profile.drop > 0 && fault_rng_.next_bool(profile.drop)) {
        d.outcome = Delivery::Outcome::kDropped;
        loss_kind = "drop";
      } else {
        d.payload.assign(payload.begin(), payload.end());
        d.latency = one_way_unlocked(from, to);
        if (profile.jitter > 0 && fault_rng_.next_bool(profile.jitter)) {
          delayed = true;
          d.latency += static_cast<SimDuration>(fault_rng_.next_below(
              static_cast<std::uint64_t>(
                  std::max<SimDuration>(profile.max_jitter, 1))));
        }
        if (profile.corrupt > 0 && !d.payload.empty() &&
            fault_rng_.next_bool(profile.corrupt)) {
          d.corrupted = true;
          const std::size_t flips = 1 + fault_rng_.next_below(3);
          for (std::size_t i = 0; i < flips; ++i) {
            const std::size_t pos = fault_rng_.next_below(d.payload.size());
            const std::uint8_t bit =
                static_cast<std::uint8_t>(1u << fault_rng_.next_below(8));
            d.payload[pos] ^= bit;
          }
        }
        if (profile.duplicate > 0 && fault_rng_.next_bool(profile.duplicate)) {
          d.duplicated = true;
        }
      }
    }
  }
  auto count_fault = [&registry](const char* kind) {
    registry.counter(obs::kSigFaultsInjectedTotal, {{"kind", kind}})
        .increment();
  };
  if (loss_kind != nullptr) count_fault(loss_kind);
  if (delayed) count_fault("delay");
  if (d.corrupted) count_fault("corrupt");
  if (d.duplicated) count_fault("duplicate");
  if (!envelope.empty() && d.delivered()) {
    auto decoded = decode_trace_context(envelope);
    if (decoded.ok()) d.trace_context = std::move(decoded.value());
  }
  return d;
}

Status Fabric::send(const std::string& from, const std::string& to,
                    BytesView payload,
                    const obs::TraceContext* trace_context) {
  if (payload.size() > kMaxTransportPayload) {
    return make_error(ErrorCode::kInvalidArgument,
                      "payload exceeds transport frame cap",
                      std::to_string(payload.size()));
  }
  Delivery d = transmit(from, to, payload, trace_context);
  if (!d.delivered()) {
    const char* kind = d.outcome == Delivery::Outcome::kPeerDown ? "peer down"
                       : d.outcome == Delivery::Outcome::kPartitioned
                           ? "link partitioned"
                           : "message dropped";
    return make_error(ErrorCode::kUnavailable, kind, from + "->" + to);
  }
  std::lock_guard lock(mutex_);
  auto& inbox = inboxes_[to];
  inbox.push_back(InboundMessage{from, d.payload, d.trace_context});
  if (d.duplicated) {
    inbox.push_back(InboundMessage{from, d.payload, d.trace_context});
  }
  return Status::ok_status();
}

Result<InboundMessage> Fabric::receive(const std::string& self,
                                       std::chrono::milliseconds /*wait*/) {
  // Delivery is instantaneous in virtual time: a message is either already
  // in the inbox or will never arrive, so there is nothing to wait for.
  std::lock_guard lock(mutex_);
  auto it = inboxes_.find(self);
  if (it == inboxes_.end() || it->second.empty()) {
    return make_error(ErrorCode::kTimeout, "inbox empty", self);
  }
  InboundMessage message = std::move(it->second.front());
  it->second.pop_front();
  return message;
}

}  // namespace e2e::sig
