#include "sig/transport.hpp"

#include "obs/instruments.hpp"

namespace e2e::sig {

void Fabric::set_latency(const std::string& a, const std::string& b,
                         SimDuration one_way) {
  latencies_[key(a, b)] = one_way;
}

SimDuration Fabric::one_way(const std::string& a, const std::string& b) const {
  if (a == b) return 0;
  const auto it = latencies_.find(key(a, b));
  return it == latencies_.end() ? default_latency_ : it->second;
}

void Fabric::record_message(const std::string& from, const std::string& to,
                            std::size_t bytes) {
  auto& registry = obs::MetricsRegistry::global();
  registry.counter(obs::kSigFabricMessagesTotal).increment();
  registry.counter(obs::kSigFabricBytesTotal).increment(bytes);
  std::lock_guard lock(counter_mutex_);
  Stats& pair_stats = per_pair_[key(from, to)];
  pair_stats.messages++;
  pair_stats.bytes += bytes;
  total_.messages++;
  total_.bytes += bytes;
}

Fabric::Stats Fabric::total() const {
  std::lock_guard lock(counter_mutex_);
  return total_;
}

Fabric::Stats Fabric::between(const std::string& a,
                              const std::string& b) const {
  std::lock_guard lock(counter_mutex_);
  const auto it = per_pair_.find(key(a, b));
  return it == per_pair_.end() ? Stats{} : it->second;
}

void Fabric::reset_counters() {
  std::lock_guard lock(counter_mutex_);
  per_pair_.clear();
  total_ = Stats{};
}

}  // namespace e2e::sig
