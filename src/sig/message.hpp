// Resource Allocation Request (RAR) messages with nested signature layers.
//
// Paper §6.4 notation, reproduced exactly:
//
//   RAR_U   = sign_pkeyU  ({res_spec, DN_BBA, CapCert'_CAS, CapCert'_U})
//   RAR_A   = sign_pkeyBBA({RAR_U, cert_U, DN_BBB, CapCert'_A})
//   RAR_B   = sign_pkeyBBB({RAR_A, cert_A, DN_BBC, CapCert'_B})
//   RAR_N+1 = sign_pkeyBBN+1({RAR_N, cert_N, DN_BBN+2, CapCert'_N+1})
//
// "A complete request therefore is comprised of a collection of
// information, each signed by the entity that added it. The signatures both
// assert the authenticity of the information and allow for tracking the
// path taken by a request as it moves from BB to BB."
//
// Each layer's to-be-signed bytes are the canonical encoding of everything
// underneath it plus the fields the layer adds, so any tampering at any
// depth breaks an outer signature.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bb/reservation.hpp"
#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/rsa.hpp"
#include "policy/policy_server.hpp"

namespace e2e::sig {

/// Innermost layer: the user's signed request (RAR_U).
struct UserLayer {
  bb::ResSpec res_spec;
  /// DN of the source-domain BB the user addresses (DN_BBA). Listing it
  /// binds the request to that broker: "BB_A, as source of the request,
  /// did approve the SLA with domain B by listing the DN of BB_B".
  std::string source_bb_dn;
  /// Encoded capability certificates the user supplies (CapCert'_CAS and
  /// the user's delegation CapCert'_U of Fig. 7).
  std::vector<Bytes> capability_certs;
  Bytes signature;  // by the user's identity key
};

/// One broker layer (RAR_A, RAR_B, ...).
struct BrokerLayer {
  /// Certificate of the *previous* signer, introduced by this broker
  /// (cert_U in RAR_A, cert_A in RAR_B, ...). Encoded form.
  Bytes upstream_certificate;
  /// DN of the broker this layer is addressed to (DN_BBB, DN_BBC, ...).
  std::string downstream_dn;
  /// Capability certificates this broker delegates onward (CapCert'_A...).
  std::vector<Bytes> capability_certs;
  /// Signed attribute-value pairs the broker's policy server attached
  /// (paper §4: "simple attribute-value pairs which might be signed by the
  /// assigning entity" — here they are covered by the layer signature).
  std::vector<policy::Augmentation> augmentations;
  /// DN of the broker that signed this layer (for path tracking).
  std::string signer_dn;
  Bytes signature;
};

class RarMessage {
 public:
  RarMessage() = default;

  /// Build and sign the innermost user layer.
  static RarMessage create_user_request(
      bb::ResSpec res_spec, std::string source_bb_dn,
      std::vector<Bytes> capability_certs,
      const crypto::PrivateKey& user_key);

  /// Sign and append a broker layer. All fields of `layer` except
  /// `signature` must be filled in.
  void append_broker_layer(BrokerLayer layer,
                           const crypto::PrivateKey& broker_key);
  /// Same, but signing through a callback (lets brokers keep their private
  /// key encapsulated).
  using Signer = std::function<Bytes(BytesView)>;
  void append_broker_layer(BrokerLayer layer, const Signer& signer);

  const UserLayer& user_layer() const { return user_; }
  const std::vector<BrokerLayer>& broker_layers() const { return brokers_; }
  std::size_t depth() const { return brokers_.size(); }

  /// To-be-signed bytes of the user layer.
  Bytes user_tbs() const;
  /// To-be-signed bytes of broker layer `index` (its fields plus the full
  /// encoding of everything beneath it).
  Bytes broker_tbs(std::size_t index) const;

  /// Verify the user-layer signature against `key`.
  bool verify_user_signature(const crypto::PublicKey& key) const;
  /// Verify broker layer `index`'s signature against `key`.
  bool verify_broker_signature(std::size_t index,
                               const crypto::PublicKey& key) const;

  /// Canonical encoding of the full message (all layers with signatures).
  Bytes encode() const;
  static Result<RarMessage> decode(BytesView data);

  /// Total bytes on the wire — grows with each hop; used by the protocol
  /// benchmarks.
  std::size_t wire_size() const { return encode().size(); }

 private:
  /// Encoding of the user layer plus broker layers [0, count).
  Bytes encode_prefix(std::size_t broker_count) const;

  UserLayer user_;
  std::vector<BrokerLayer> brokers_;
};

/// Reply travelling back upstream: either an approval carrying the
/// reservation handles granted along the path, or a denial with the origin
/// and reason (paper §6.1: "Whenever a request is denied by one domain, the
/// event is propagated upstream to inform the user of the reason").
struct RarReply {
  bool granted = false;
  /// Per-domain reservation handles, destination last.
  std::vector<std::pair<std::string, bb::ReservationId>> handles;
  /// Tunnel id assigned by the destination domain (tunnel requests only).
  std::string tunnel_id;
  Error denial;  // valid when !granted

  static RarReply approve() {
    RarReply r;
    r.granted = true;
    return r;
  }
  static RarReply deny(Error e) {
    RarReply r;
    r.granted = false;
    r.denial = std::move(e);
    return r;
  }

  /// Canonical wire encoding — replies are transported over the same
  /// integrity-protected channels as requests.
  Bytes encode() const;
  static Result<RarReply> decode(BytesView data);
};

}  // namespace e2e::sig
