#include "sig/message.hpp"

#include "common/tlv.hpp"

namespace e2e::sig {

namespace {
constexpr tlv::Tag kTagUserLayer = 0x0401;
constexpr tlv::Tag kTagResSpec = 0x0402;
constexpr tlv::Tag kTagSourceBbDn = 0x0403;
constexpr tlv::Tag kTagCapCert = 0x0404;
constexpr tlv::Tag kTagSignature = 0x0405;
constexpr tlv::Tag kTagBrokerLayer = 0x0406;
constexpr tlv::Tag kTagUpstreamCert = 0x0407;
constexpr tlv::Tag kTagDownstreamDn = 0x0408;
constexpr tlv::Tag kTagAugmentation = 0x0409;
constexpr tlv::Tag kTagAugName = 0x040a;
constexpr tlv::Tag kTagAugValue = 0x040b;
constexpr tlv::Tag kTagSignerDn = 0x040c;
constexpr tlv::Tag kTagPrefix = 0x040d;
constexpr tlv::Tag kTagReplyGranted = 0x0410;
constexpr tlv::Tag kTagReplyHandle = 0x0411;
constexpr tlv::Tag kTagReplyDomain = 0x0412;
constexpr tlv::Tag kTagReplyId = 0x0413;
constexpr tlv::Tag kTagReplyTunnel = 0x0414;
constexpr tlv::Tag kTagReplyErrCode = 0x0415;
constexpr tlv::Tag kTagReplyErrMsg = 0x0416;
constexpr tlv::Tag kTagReplyErrOrigin = 0x0417;

void write_user_fields(tlv::Writer& w, const UserLayer& u) {
  w.put_bytes(kTagResSpec, u.res_spec.encode());
  w.put_string(kTagSourceBbDn, u.source_bb_dn);
  for (const auto& cert : u.capability_certs) {
    w.put_bytes(kTagCapCert, cert);
  }
}

void write_broker_fields(tlv::Writer& w, const BrokerLayer& b) {
  w.put_bytes(kTagUpstreamCert, b.upstream_certificate);
  w.put_string(kTagDownstreamDn, b.downstream_dn);
  for (const auto& cert : b.capability_certs) {
    w.put_bytes(kTagCapCert, cert);
  }
  for (const auto& aug : b.augmentations) {
    w.open(kTagAugmentation);
    w.put_string(kTagAugName, aug.name);
    w.put_string(kTagAugValue, aug.value);
    w.close();
  }
  w.put_string(kTagSignerDn, b.signer_dn);
}

}  // namespace

RarMessage RarMessage::create_user_request(
    bb::ResSpec res_spec, std::string source_bb_dn,
    std::vector<Bytes> capability_certs, const crypto::PrivateKey& user_key) {
  RarMessage msg;
  msg.user_.res_spec = std::move(res_spec);
  msg.user_.source_bb_dn = std::move(source_bb_dn);
  msg.user_.capability_certs = std::move(capability_certs);
  msg.user_.signature = crypto::sign(user_key, msg.user_tbs());
  return msg;
}

void RarMessage::append_broker_layer(BrokerLayer layer,
                                     const crypto::PrivateKey& broker_key) {
  brokers_.push_back(std::move(layer));
  brokers_.back().signature =
      crypto::sign(broker_key, broker_tbs(brokers_.size() - 1));
}

void RarMessage::append_broker_layer(BrokerLayer layer, const Signer& signer) {
  brokers_.push_back(std::move(layer));
  brokers_.back().signature = signer(broker_tbs(brokers_.size() - 1));
}

Bytes RarMessage::user_tbs() const {
  tlv::Writer w;
  write_user_fields(w, user_);
  return w.take();
}

Bytes RarMessage::broker_tbs(std::size_t index) const {
  tlv::Writer w;
  w.put_bytes(kTagPrefix, encode_prefix(index));
  write_broker_fields(w, brokers_.at(index));
  return w.take();
}

bool RarMessage::verify_user_signature(const crypto::PublicKey& key) const {
  return crypto::verify(key, user_tbs(), user_.signature);
}

bool RarMessage::verify_broker_signature(std::size_t index,
                                         const crypto::PublicKey& key) const {
  return crypto::verify(key, broker_tbs(index), brokers_.at(index).signature);
}

Bytes RarMessage::encode_prefix(std::size_t broker_count) const {
  tlv::Writer w;
  w.open(kTagUserLayer);
  write_user_fields(w, user_);
  w.put_bytes(kTagSignature, user_.signature);
  w.close();
  for (std::size_t i = 0; i < broker_count; ++i) {
    w.open(kTagBrokerLayer);
    write_broker_fields(w, brokers_[i]);
    w.put_bytes(kTagSignature, brokers_[i].signature);
    w.close();
  }
  return w.take();
}

Bytes RarMessage::encode() const { return encode_prefix(brokers_.size()); }

Result<RarMessage> RarMessage::decode(BytesView data) {
  tlv::Reader r(data);
  RarMessage msg;

  auto user_reader = r.read_nested(kTagUserLayer);
  if (!user_reader) return user_reader.error();
  auto spec_bytes = user_reader->read_bytes(kTagResSpec);
  if (!spec_bytes) return spec_bytes.error();
  auto spec = bb::ResSpec::decode(*spec_bytes);
  if (!spec) return spec.error();
  msg.user_.res_spec = std::move(*spec);
  auto source_dn = user_reader->read_string(kTagSourceBbDn);
  if (!source_dn) return source_dn.error();
  msg.user_.source_bb_dn = std::move(*source_dn);
  while (auto cap = user_reader->try_next(kTagCapCert)) {
    msg.user_.capability_certs.emplace_back(cap->value.begin(),
                                            cap->value.end());
  }
  auto user_sig = user_reader->read_bytes(kTagSignature);
  if (!user_sig) return user_sig.error();
  msg.user_.signature = std::move(*user_sig);
  if (!user_reader->at_end()) {
    return make_error(ErrorCode::kBadMessage, "RAR: trailing user bytes");
  }

  while (!r.at_end()) {
    auto layer_reader = r.read_nested(kTagBrokerLayer);
    if (!layer_reader) return layer_reader.error();
    BrokerLayer layer;
    auto up = layer_reader->read_bytes(kTagUpstreamCert);
    if (!up) return up.error();
    layer.upstream_certificate = std::move(*up);
    auto down = layer_reader->read_string(kTagDownstreamDn);
    if (!down) return down.error();
    layer.downstream_dn = std::move(*down);
    while (auto cap = layer_reader->try_next(kTagCapCert)) {
      layer.capability_certs.emplace_back(cap->value.begin(),
                                          cap->value.end());
    }
    while (auto aug_elem = layer_reader->try_next(kTagAugmentation)) {
      tlv::Reader aug_reader(aug_elem->value);
      policy::Augmentation aug;
      auto name = aug_reader.read_string(kTagAugName);
      if (!name) return name.error();
      aug.name = std::move(*name);
      auto value = aug_reader.read_string(kTagAugValue);
      if (!value) return value.error();
      aug.value = std::move(*value);
      layer.augmentations.push_back(std::move(aug));
    }
    auto signer = layer_reader->read_string(kTagSignerDn);
    if (!signer) return signer.error();
    layer.signer_dn = std::move(*signer);
    auto sig = layer_reader->read_bytes(kTagSignature);
    if (!sig) return sig.error();
    layer.signature = std::move(*sig);
    if (!layer_reader->at_end()) {
      return make_error(ErrorCode::kBadMessage, "RAR: trailing layer bytes");
    }
    msg.brokers_.push_back(std::move(layer));
  }
  return msg;
}

Bytes RarReply::encode() const {
  tlv::Writer w;
  w.put_bool(kTagReplyGranted, granted);
  for (const auto& [domain, id] : handles) {
    w.open(kTagReplyHandle);
    w.put_string(kTagReplyDomain, domain);
    w.put_string(kTagReplyId, id);
    w.close();
  }
  w.put_string(kTagReplyTunnel, tunnel_id);
  if (!granted) {
    w.put_u16(kTagReplyErrCode, static_cast<std::uint16_t>(denial.code));
    w.put_string(kTagReplyErrMsg, denial.message);
    w.put_string(kTagReplyErrOrigin, denial.origin);
  }
  return w.take();
}

Result<RarReply> RarReply::decode(BytesView data) {
  tlv::Reader r(data);
  RarReply reply;
  auto granted = r.read_bool(kTagReplyGranted);
  if (!granted) return granted.error();
  reply.granted = *granted;
  while (auto handle_elem = r.try_next(kTagReplyHandle)) {
    tlv::Reader hr(handle_elem->value);
    auto domain = hr.read_string(kTagReplyDomain);
    if (!domain) return domain.error();
    auto id = hr.read_string(kTagReplyId);
    if (!id) return id.error();
    reply.handles.emplace_back(std::move(*domain), std::move(*id));
  }
  auto tunnel = r.read_string(kTagReplyTunnel);
  if (!tunnel) return tunnel.error();
  reply.tunnel_id = std::move(*tunnel);
  if (!reply.granted) {
    auto code = r.read_u16(kTagReplyErrCode);
    if (!code) return code.error();
    reply.denial.code = static_cast<ErrorCode>(*code);
    auto message = r.read_string(kTagReplyErrMsg);
    if (!message) return message.error();
    reply.denial.message = std::move(*message);
    auto origin = r.read_string(kTagReplyErrOrigin);
    if (!origin) return origin.error();
    reply.denial.origin = std::move(*origin);
  }
  if (!r.at_end()) {
    return make_error(ErrorCode::kBadMessage, "RarReply: trailing bytes");
  }
  return reply;
}

}  // namespace e2e::sig
