// Mutually authenticated channel between peered entities.
//
// Stand-in for the SSLv3/TLS channel the paper assumes between peered BBs
// (§6: "The direct signalling between peer BBs ... can easily be secured
// using SSLv3/TLS"). The handshake reproduces the *observable properties*
// the protocol depends on:
//  - mutual certificate exchange and verification against the trust
//    anchors installed from the SLA,
//  - proof of private-key possession (each side signs the transcript),
//  - an integrity-protected record layer with replay protection.
//
// After the handshake each side holds the peer's certificate — exactly the
// knowledge the signalling protocol leans on ("BB_C is able to check the
// signature of RAR_B because it does have access to the certificate of
// BB_B exchanged during the SSL handshake").
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/rng.hpp"
#include "crypto/certstore.hpp"
#include "crypto/rsa.hpp"
#include "crypto/x509.hpp"

namespace e2e::sig {

/// One party's handshake material.
struct ChannelEndpoint {
  crypto::Certificate certificate;
  crypto::PrivateKey private_key;
  const crypto::TrustStore* trust_store = nullptr;
  /// When set, a peer presenting exactly this certificate is accepted even
  /// without a trust-anchor path (proof of key possession still required).
  /// This models the introduction-based acceptance behind tunnels: the end
  /// domain learned the source BB's certificate through the signalling path
  /// and pins it for the direct channel (paper §6.1/§6.4).
  std::optional<crypto::Certificate> pinned_peer;
};

/// An integrity-protected record.
struct Record {
  std::uint64_t sequence = 0;
  Bytes payload;
  Bytes mac;
};

/// One direction-aware session half (each peer holds one).
class Session {
 public:
  Session() = default;
  Session(crypto::Certificate peer, Bytes send_key, Bytes recv_key)
      : peer_(std::move(peer)),
        send_key_(std::move(send_key)),
        recv_key_(std::move(recv_key)) {}

  const crypto::Certificate& peer_certificate() const { return peer_; }

  /// Wrap a payload for transmission.
  Record seal(BytesView payload);

  /// Verify integrity and (strictly increasing) sequence; returns the
  /// payload.
  Result<Bytes> open(const Record& record);

 private:
  crypto::Certificate peer_;
  Bytes send_key_;
  Bytes recv_key_;
  std::uint64_t next_send_seq_ = 0;
  std::uint64_t expected_recv_seq_ = 0;
};

struct SessionPair {
  Session initiator;
  Session responder;
};

/// Run the mutual-authentication handshake at virtual time `at`. Fails with
/// kAuthenticationFailed if either side cannot validate the other's
/// certificate or proof of key possession.
Result<SessionPair> handshake(const ChannelEndpoint& initiator,
                              const ChannelEndpoint& responder, SimTime at,
                              Rng& rng);

}  // namespace e2e::sig
