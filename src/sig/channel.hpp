// Mutually authenticated channel between peered entities.
//
// Stand-in for the SSLv3/TLS channel the paper assumes between peered BBs
// (§6: "The direct signalling between peer BBs ... can easily be secured
// using SSLv3/TLS"). The handshake reproduces the *observable properties*
// the protocol depends on:
//  - mutual certificate exchange and verification against the trust
//    anchors installed from the SLA,
//  - proof of private-key possession (each side signs the transcript),
//  - an integrity-protected record layer with replay protection.
//
// After the handshake each side holds the peer's certificate — exactly the
// knowledge the signalling protocol leans on ("BB_C is able to check the
// signature of RAR_B because it does have access to the certificate of
// BB_B exchanged during the SSL handshake").
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/rng.hpp"
#include "common/tlv.hpp"
#include "crypto/certstore.hpp"
#include "crypto/rsa.hpp"
#include "crypto/x509.hpp"

namespace e2e::sig {

// TLV tags of the handshake and record wire messages exchanged when the
// channel runs over a real byte stream (docs/DAEMON.md, "Channel
// handshake"). The in-process handshake() below produces the same
// transcript and keys without serializing these messages.
namespace channel_tag {
inline constexpr tlv::Tag kClientHello = 0xE280;  // container
inline constexpr tlv::Tag kServerHello = 0xE281;  // container
inline constexpr tlv::Tag kFinished = 0xE282;     // container
inline constexpr tlv::Tag kCertificate = 0xE283;  // bytes (cert encoding)
inline constexpr tlv::Tag kNonce = 0xE284;        // bytes (32)
inline constexpr tlv::Tag kProof = 0xE285;        // bytes (signature)
inline constexpr tlv::Tag kRecord = 0xE286;       // container
inline constexpr tlv::Tag kSequence = 0xE287;     // u64
inline constexpr tlv::Tag kPayload = 0xE288;      // bytes
inline constexpr tlv::Tag kMac = 0xE289;          // bytes
}  // namespace channel_tag

/// One party's handshake material.
struct ChannelEndpoint {
  crypto::Certificate certificate;
  crypto::PrivateKey private_key;
  const crypto::TrustStore* trust_store = nullptr;
  /// When set, a peer presenting exactly this certificate is accepted even
  /// without a trust-anchor path (proof of key possession still required).
  /// This models the introduction-based acceptance behind tunnels: the end
  /// domain learned the source BB's certificate through the signalling path
  /// and pins it for the direct channel (paper §6.1/§6.4).
  std::optional<crypto::Certificate> pinned_peer;
};

/// An integrity-protected record.
struct Record {
  std::uint64_t sequence = 0;
  Bytes payload;
  Bytes mac;
};

/// One direction-aware session half (each peer holds one).
class Session {
 public:
  Session() = default;
  Session(crypto::Certificate peer, Bytes send_key, Bytes recv_key)
      : peer_(std::move(peer)),
        send_key_(std::move(send_key)),
        recv_key_(std::move(recv_key)) {}

  const crypto::Certificate& peer_certificate() const { return peer_; }

  /// Wrap a payload for transmission.
  Record seal(BytesView payload);

  /// Verify integrity and (strictly increasing) sequence; returns the
  /// payload.
  Result<Bytes> open(const Record& record);

 private:
  crypto::Certificate peer_;
  Bytes send_key_;
  Bytes recv_key_;
  std::uint64_t next_send_seq_ = 0;
  std::uint64_t expected_recv_seq_ = 0;
};

struct SessionPair {
  Session initiator;
  Session responder;
};

/// Run the mutual-authentication handshake at virtual time `at`. Fails with
/// kAuthenticationFailed if either side cannot validate the other's
/// certificate or proof of key possession.
Result<SessionPair> handshake(const ChannelEndpoint& initiator,
                              const ChannelEndpoint& responder, SimTime at,
                              Rng& rng);

/// Canonical wire form of a sealed record (channel_tag::kRecord container).
Bytes encode_record(const Record& record);
/// Decode a record; kBadMessage on truncated or malformed input — a peer
/// that disconnects mid-record must surface as a Status, never a crash.
Result<Record> decode_record(BytesView bytes);

/// Initiator half of the staged handshake — the same mutual authentication
/// as handshake(), decomposed into the three messages that actually cross
/// a byte stream:
///
///   ClientHello { cert_i, nonce_i }            initiator -> responder
///   ServerHello { cert_r, nonce_r, proof_r }   responder -> initiator
///   Finished    { proof_i }                    initiator -> responder
///
/// The transcript (enc(cert_i) || enc(cert_r) || nonce_i || nonce_r), the
/// proofs and the key derivation are byte-identical to handshake()'s, so a
/// session established in stages interoperates with one established
/// in-process. Every consume step returns Status/Result: truncated or
/// malformed peer messages (mid-handshake disconnects) are errors, not
/// assertion failures.
class HandshakeInitiator {
 public:
  /// `endpoint` is copied; `rng` is borrowed only for the constructor's
  /// nonce draw.
  HandshakeInitiator(ChannelEndpoint endpoint, SimTime at, Rng& rng);

  /// The ClientHello to send. Call exactly once, first.
  Bytes client_hello();

  /// Consume the responder's ServerHello; validates the responder and
  /// returns the Finished message to send. The session is ready after
  /// this returns ok.
  Result<Bytes> on_server_hello(BytesView bytes);

  bool done() const { return done_; }
  /// Valid only after on_server_hello() succeeded.
  Session& session() { return session_; }

 private:
  ChannelEndpoint endpoint_;
  SimTime at_;
  Bytes nonce_;
  bool hello_sent_ = false;
  bool done_ = false;
  Session session_;
};

/// Responder half of the staged handshake (see HandshakeInitiator).
class HandshakeResponder {
 public:
  HandshakeResponder(ChannelEndpoint endpoint, SimTime at, Rng& rng);

  /// Consume the ClientHello; returns the ServerHello to send.
  Result<Bytes> on_client_hello(BytesView bytes);

  /// Consume the Finished message; validates the initiator. The session
  /// is ready after this returns ok.
  Status on_finished(BytesView bytes);

  bool done() const { return done_; }
  /// Valid only after on_finished() succeeded.
  Session& session() { return session_; }

 private:
  ChannelEndpoint endpoint_;
  SimTime at_;
  Bytes nonce_;
  Bytes transcript_;
  Bytes proof_r_;
  crypto::Certificate peer_cert_;
  bool hello_seen_ = false;
  bool done_ = false;
  Session session_;
};

}  // namespace e2e::sig
