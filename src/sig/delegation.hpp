// Capability-certificate delegation chains (paper §6.5, Fig. 7).
//
// Neuman-style cascaded authorization: "each subordinate server signs the
// received capabilities using the private key of the corresponding public
// key stored in the capability. ... In our model, the BB of the source
// domain uses the public key of the peered downstream domain as public
// proxy key." Each hop re-issues the capability to the next hop's real
// public key, copies the capability extensions, adds the "valid for RAR"
// restriction, and signs with the private key matching the parent
// certificate's subject key.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/thread_pool.hpp"
#include "crypto/x509.hpp"
#include "policy/context.hpp"

namespace e2e::sig {

/// Create the next link of a delegation chain.
///
/// `parent` is the capability certificate held by the delegator;
/// `parent_subject_key` is the private key matching `parent`'s subject
/// public key (the user's private proxy key for the CAS-issued certificate,
/// the broker's own key afterwards). The new certificate binds the parent's
/// capabilities to `delegate_dn` / `delegate_key`, restricted to
/// `rar_restriction` (added on first delegation, then preserved).
crypto::Certificate delegate_capability(
    const crypto::Certificate& parent,
    const crypto::PrivateKey& parent_subject_key,
    const crypto::DistinguishedName& delegate_dn,
    const crypto::PublicKey& delegate_key, const std::string& rar_restriction,
    TimeInterval validity, std::uint64_t serial);

/// Builder variant: fill in everything but the signature; the caller signs
/// with the key matching `parent`'s subject public key (e.g. via
/// BandwidthBroker::sign_certificate, which keeps the key encapsulated).
crypto::Certificate::Builder build_delegation(
    const crypto::Certificate& parent,
    const crypto::DistinguishedName& delegate_dn,
    const crypto::PublicKey& delegate_key, const std::string& rar_restriction,
    TimeInterval validity, std::uint64_t serial);

/// Result of validating a full chain at the end domain.
struct CapabilityChainResult {
  /// Community whose CAS issued the root capability (e.g. "ESnet").
  std::string community;
  /// Capability attributes usable for authorization.
  std::vector<std::string> capabilities;
  /// The RAR restriction carried by the delegated links ("" if none).
  std::string rar_restriction;
  /// Chain length including the CAS-issued root.
  std::size_t length = 0;

  policy::ValidatedCapability to_validated() const {
    return policy::ValidatedCapability{community, capabilities};
  }
};

/// Perform the end-domain checklist of §6.5 on a chain
/// [CAS-issued, delegation 1, ..., delegation k]:
///  - the CAS (key `cas_key`) issued the root capability certificate;
///  - every delegation is signed with the private key matching its parent's
///    subject public key (proxy-key cascade);
///  - issuer/subject DNs link up hop by hop;
///  - no delegation escalates capabilities beyond its parent's set;
///  - the RAR restriction, once added, is preserved and equals
///    `expected_rar` (when non-empty);
///  - every certificate is valid at `at`;
///  - the final subject key equals `holder_key` (the verifier then demands
///    proof of possession of the matching private key — `prove_possession`
///    / `check_possession` below).
///
/// The per-link signature verifications are independent of each other, so
/// when `pool` is non-null they are fanned out across it before the
/// sequential checklist consumes the results — the outcome (including which
/// error is reported first) is identical to the serial walk.
Result<CapabilityChainResult> verify_capability_chain(
    std::span<const crypto::Certificate> chain,
    const crypto::PublicKey& cas_key, const crypto::PublicKey& holder_key,
    const std::string& expected_rar, SimTime at, ThreadPool* pool = nullptr);

/// Proof of possession: the holder signs a verifier-chosen nonce with the
/// private key matching the last chain certificate's subject key.
Bytes prove_possession(const crypto::PrivateKey& holder_key, BytesView nonce);
bool check_possession(const crypto::PublicKey& holder_key, BytesView nonce,
                      BytesView proof);

/// Decode a wire list of encoded certificates into a chain, preserving
/// order; fails on the first undecodable entry.
Result<std::vector<crypto::Certificate>> decode_chain(
    std::span<const Bytes> encoded);

}  // namespace e2e::sig
