// Transitive trust verification of RAR messages.
//
// Paper §6.4: the receiving broker can "check signatures without a direct
// trust relationship" because "each domain add[s] the certificate of the
// upstream domain — known because of the SSL handshake — and sign[s] it.
// This web of trust allows each domain to access a list of key introducers
// when deciding whether to accept the public key stored in the
// certificate." A local TrustPolicy "might limit the depth of an acceptable
// trust chain".
#pragma once

#include <string>
#include <vector>

#include "crypto/certstore.hpp"
#include "sig/message.hpp"

namespace e2e::sig {

struct TrustPolicy {
  /// Maximum number of introduction steps between the directly trusted
  /// channel peer and an introduced key (paper: "Checking its own security
  /// policy which might limit the depth of an acceptable trust chain").
  std::size_t max_introduction_depth = 8;
};

/// One element of the validated signalling path.
struct PathElement {
  crypto::DistinguishedName signer;
  /// Introduction distance from the verifier: 0 = authenticated directly on
  /// the channel, k = introduced through k intermediaries.
  std::size_t introduction_depth = 0;
  /// True if the element's certificate also chains to a local trust anchor
  /// (stronger than pure introduction).
  bool anchored = false;
};

/// Everything the destination's policy engine needs, extracted from a
/// verified request.
struct VerifiedRar {
  bb::ResSpec res_spec;
  crypto::DistinguishedName user_dn;
  crypto::Certificate user_certificate;
  /// BB path, source domain first (from the layer signatures — "the
  /// signatures ... allow for tracking the path taken by a request").
  std::vector<PathElement> path;
  /// Augmentations from every broker layer, in path order.
  std::vector<policy::Augmentation> augmentations;
  /// All encoded capability certificates, innermost (user-supplied) first,
  /// then per-hop delegations — the "Capability List" of Fig. 7.
  std::vector<Bytes> capability_certs;
};

/// Verify a received RAR at a bandwidth broker.
///
/// `channel_peer` is the certificate of the upstream BB obtained from the
/// mutually authenticated channel; the outermost layer must be signed by
/// it. `self_dn` is this broker's DN (the outermost layer must be addressed
/// to it). `anchors` supplies local trust anchors used to flag `anchored`
/// path elements and to validate the user certificate's issuer when
/// possible; pure web-of-trust introductions are accepted up to
/// `policy.max_introduction_depth`.
Result<VerifiedRar> verify_rar(const RarMessage& msg,
                               const crypto::Certificate& channel_peer,
                               const crypto::DistinguishedName& self_dn,
                               const crypto::TrustStore& anchors,
                               const TrustPolicy& policy, SimTime at);

/// Source-domain variant: the user's request arrives directly (depth 0);
/// `user_cert` was authenticated out of band (the source BB knows its local
/// users — paper §6.1). Validates signature, DN binding and validity.
Result<VerifiedRar> verify_user_request(const RarMessage& msg,
                                        const crypto::Certificate& user_cert,
                                        const crypto::DistinguishedName& self_dn,
                                        SimTime at);

}  // namespace e2e::sig
