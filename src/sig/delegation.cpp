#include "sig/delegation.hpp"

#include <algorithm>
#include <future>
#include <optional>

#include "obs/audit.hpp"
#include "obs/trace.hpp"

namespace e2e::sig {

crypto::Certificate delegate_capability(
    const crypto::Certificate& parent,
    const crypto::PrivateKey& parent_subject_key,
    const crypto::DistinguishedName& delegate_dn,
    const crypto::PublicKey& delegate_key, const std::string& rar_restriction,
    TimeInterval validity, std::uint64_t serial) {
  crypto::Certificate delegated =
      build_delegation(parent, delegate_dn, delegate_key, rar_restriction,
                       validity, serial)
          .sign_with(parent_subject_key);
  // Audited only when a span is active: the user-side delegation that
  // seeds a request happens before any RAR exists and would join no
  // trace. Broker re-issues mid-reservation audit at their call sites
  // with the processing span open (sig/hopbyhop.cpp).
  if (obs::current_span_ref().valid()) {
    obs::AuditLog::global().append(
        parent.subject().to_string(), obs::audit_kind::kDelegation,
        {{"issuer", parent.subject().to_string()},
         {"subject", delegate_dn.to_string()},
         {"serial", std::to_string(serial)},
         {"restriction", delegated.extension_value(crypto::kExtValidForRar)
                             .value_or("")}});
  }
  return delegated;
}

crypto::Certificate::Builder build_delegation(
    const crypto::Certificate& parent,
    const crypto::DistinguishedName& delegate_dn,
    const crypto::PublicKey& delegate_key, const std::string& rar_restriction,
    TimeInterval validity, std::uint64_t serial) {
  crypto::Certificate::Builder b;
  b.serial = serial;
  b.issuer = parent.subject();
  b.subject = delegate_dn;
  b.validity = validity;
  b.subject_key = delegate_key;
  // Copy the capability extensions (flag, capability list, community), then
  // add/preserve the RAR restriction.
  for (const auto& ext : parent.extensions()) {
    if (ext.name == crypto::kExtValidForRar) continue;  // re-added below
    b.extensions.push_back(ext);
  }
  std::string restriction = rar_restriction;
  if (const auto inherited = parent.extension_value(crypto::kExtValidForRar)) {
    restriction = *inherited;  // once restricted, always restricted
  }
  if (!restriction.empty()) {
    b.extensions.push_back(
        crypto::Extension{crypto::kExtValidForRar, true, restriction});
  }
  return b;
}

namespace {

Error chain_error(std::string msg) {
  return make_error(ErrorCode::kUntrustedKey,
                    "capability chain: " + std::move(msg));
}

}  // namespace

Result<CapabilityChainResult> verify_capability_chain(
    std::span<const crypto::Certificate> chain,
    const crypto::PublicKey& cas_key, const crypto::PublicKey& holder_key,
    const std::string& expected_rar, SimTime at, ThreadPool* pool) {
  if (chain.empty()) return chain_error("empty");

  // Signature layer i (0 = root vs the CAS key, i > 0 = link i vs its
  // parent's subject key) is a pure function of the chain, so the layers
  // can be checked out of order. With a pool and more than one layer, fan
  // them out and let the sequential checklist below consume the verdicts;
  // without one, verify lazily in place. Either way the checklist — and
  // therefore which error surfaces first — is unchanged.
  std::vector<std::optional<bool>> sig_ok(chain.size());
  if (pool != nullptr && chain.size() > 1) {
    std::vector<std::future<bool>> futures;
    futures.reserve(chain.size());
    for (std::size_t i = 0; i < chain.size(); ++i) {
      const crypto::PublicKey& signer_key =
          i == 0 ? cas_key : chain[i - 1].subject_public_key();
      futures.push_back(pool->submit(
          [&cert = chain[i], &signer_key] {
            return cert.verify_signature(signer_key);
          }));
    }
    for (std::size_t i = 0; i < chain.size(); ++i) {
      sig_ok[i] = futures[i].get();
    }
  }
  const auto layer_ok = [&](std::size_t i, const crypto::PublicKey& key) {
    if (sig_ok[i]) return *sig_ok[i];
    return chain[i].verify_signature(key);
  };

  const crypto::Certificate& root = chain[0];
  // "checks that CAS was issuing a capability certificate for the user"
  if (!root.is_capability_certificate()) {
    return chain_error("root lacks the capability-certificate flag");
  }
  if (!layer_ok(0, cas_key)) {
    return chain_error("root not signed by the community CAS");
  }

  CapabilityChainResult out;
  out.community = root.extension_value(crypto::kExtCommunity).value_or("");
  out.capabilities = root.capabilities();
  out.length = chain.size();

  std::vector<std::string> allowed = root.capabilities();
  std::string restriction =
      root.extension_value(crypto::kExtValidForRar).value_or("");

  for (std::size_t i = 0; i < chain.size(); ++i) {
    const crypto::Certificate& cert = chain[i];
    // "checks the validity of all capabilities, i.e. whether some entity
    // did change them inappropriately during delegation"
    if (!cert.valid_at(at)) {
      return make_error(ErrorCode::kExpired,
                        "capability chain: link " + std::to_string(i) +
                            " expired");
    }
    if (!cert.is_capability_certificate()) {
      return chain_error("link " + std::to_string(i) +
                         " lacks the capability flag");
    }
    if (i == 0) continue;

    const crypto::Certificate& parent = chain[i - 1];
    // "checks that ... delegated the capability ..., because the new
    // certificate was signed using pkey of the delegator" — the proxy-key
    // cascade: each link is signed with the key matching the parent's
    // subject public key.
    if (!layer_ok(i, parent.subject_public_key())) {
      return chain_error("link " + std::to_string(i) +
                         " not signed with parent's subject key");
    }
    if (cert.issuer() != parent.subject()) {
      return chain_error("link " + std::to_string(i) +
                         " issuer does not match parent subject");
    }
    // No capability escalation during delegation.
    for (const auto& cap : cert.capabilities()) {
      if (std::find(allowed.begin(), allowed.end(), cap) == allowed.end()) {
        return chain_error("link " + std::to_string(i) +
                           " escalates capability '" + cap + "'");
      }
    }
    allowed = cert.capabilities();
    // Restriction must be preserved once present.
    const std::string link_restriction =
        cert.extension_value(crypto::kExtValidForRar).value_or("");
    if (!restriction.empty() && link_restriction != restriction) {
      return chain_error("link " + std::to_string(i) +
                         " altered the RAR restriction");
    }
    restriction = link_restriction;
  }

  if (!expected_rar.empty() && !restriction.empty() &&
      restriction != expected_rar) {
    return chain_error("restriction '" + restriction +
                       "' does not match this RAR ('" + expected_rar + "')");
  }

  // "checks that [the holder] actually owns the capability certificate by
  // requesting a proof of the knowledge of [the private key]" — here we
  // check the binding; possession is proven via prove/check_possession.
  if (!(chain.back().subject_public_key() == holder_key)) {
    return chain_error("final subject key is not the presenting holder's");
  }

  out.capabilities = allowed;
  out.rar_restriction = restriction;
  return out;
}

Bytes prove_possession(const crypto::PrivateKey& holder_key,
                       BytesView nonce) {
  return crypto::sign(holder_key, nonce);
}

bool check_possession(const crypto::PublicKey& holder_key, BytesView nonce,
                      BytesView proof) {
  return crypto::verify(holder_key, nonce, proof);
}

Result<std::vector<crypto::Certificate>> decode_chain(
    std::span<const Bytes> encoded) {
  std::vector<crypto::Certificate> out;
  out.reserve(encoded.size());
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    auto cert = crypto::Certificate::decode(encoded[i]);
    if (!cert) {
      return make_error(ErrorCode::kBadMessage,
                        "capability chain: entry " + std::to_string(i) +
                            " undecodable");
    }
    out.push_back(std::move(*cert));
  }
  return out;
}

}  // namespace e2e::sig
