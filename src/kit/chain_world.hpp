// Ready-made deployment kit: a chain of administrative domains wired up the way
// the paper's scenario is (Fig. 2/5/6) — one CA and one bandwidth broker
// per domain, SLAs between neighbours carrying the peer trust material,
// authenticated inter-BB channels, an ESnet community authorization server,
// and helpers to mint users with identity + capability material.
//
// Key sizes default to 256 bits to keep suites fast; the crypto unit tests
// cover 512-bit keys.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bb/bandwidth_broker.hpp"
#include "bb/recovery.hpp"
#include "bb/snapshot.hpp"
#include "bb/wal.hpp"
#include "common/thread_pool.hpp"
#include "obs/collector.hpp"
#include "obs/trace.hpp"
#include "policy/cas.hpp"
#include "policy/group_server.hpp"
#include "sig/hopbyhop.hpp"
#include "sig/retry.hpp"
#include "sig/source_signalling.hpp"

namespace e2e::kit {

inline constexpr TimeInterval kWorldValidity{0, hours(24 * 365)};

struct WorldUser {
  crypto::DistinguishedName dn;
  crypto::KeyPair identity_keys;
  crypto::Certificate identity_cert;
  crypto::KeyPair proxy_keys;
  std::optional<crypto::Certificate> capability_cert;

  sig::UserCredentials credentials() const {
    sig::UserCredentials c;
    c.identity_certificate = identity_cert;
    c.identity_key = identity_keys.priv;
    if (capability_cert.has_value()) {
      c.capability_certificate = capability_cert;
      c.proxy_key = proxy_keys.priv;
    }
    return c;
  }
};

struct ChainWorldConfig {
  std::size_t domains = 3;
  /// Policy source per domain; reused cyclically if shorter than `domains`.
  std::vector<std::string> policies = {"Return GRANT"};
  double domain_capacity = 622e6;   // OC-12 backbone
  double sla_rate = 100e6;          // premium profile between neighbours
  unsigned key_bits = 256;
  std::uint64_t seed = 20010801;    // HPDC-10 publication date
  SimDuration inter_domain_latency = milliseconds(20);
  /// Fault model applied to every fabric link (all-zero = clean fabric,
  /// byte-identical to a world without a fault model).
  sig::FaultProfile fault_profile;
  /// Seed of the fabric's private fault RNG; never consumes `seed`'s RNG.
  std::uint64_t fault_seed = 20010801;
  /// Retry/backoff policy installed on both signalling engines.
  sig::RetryPolicy retry_policy;
  /// Worker threads for concurrent tunnel admission (0 = sequential).
  /// When set, the world owns a ThreadPool and attaches it to the
  /// hop-by-hop engine so reserve_in_tunnel_batch evaluates the two
  /// endpoint pools in parallel; grants are identical either way.
  std::size_t admission_threads = 0;
  /// Directory for per-domain durability state (`<dir>/<domain>.wal` and
  /// `<dir>/<domain>.snapshot`). Empty (the default) disables durability
  /// entirely — the world is byte-identical to one without this field.
  std::string durability_dir;
  /// Sync mode for the per-domain WALs (fsync-before-ack by default).
  bb::WriteAheadLog::SyncMode wal_sync_mode = bb::WriteAheadLog::SyncMode::kFsync;
  /// Replay each domain's snapshot + WAL tail into its fresh broker before
  /// reopening the log (the restarted-daemon path: a killed bbd comes back
  /// with every acked grant intact). Requires durability_dir; a world
  /// whose directory holds no prior state recovers to the blank slate.
  bool recover_on_open = false;
};

class ChainWorld {
 public:
  explicit ChainWorld(const ChainWorldConfig& config = ChainWorldConfig())
      : config_(config),
        rng_(config.seed),
        cas_esnet_("ESnet", rng_, kWorldValidity, config.key_bits),
        engine_(fabric_, rng_),
        source_engine_(fabric_) {
    for (std::size_t i = 0; i < config.domains; ++i) {
      names_.push_back(domain_name(i));
    }
    // Per-domain CA and broker.
    for (std::size_t i = 0; i < config.domains; ++i) {
      cas_.push_back(std::make_unique<crypto::CertificateAuthority>(
          crypto::DistinguishedName::make("CA-" + names_[i], names_[i]),
          rng_, kWorldValidity, config.key_bits));
      policy::PolicyServer server(
          names_[i], policy::Policy::compile(
                         config.policies[i % config.policies.size()])
                         .value());
      brokers_.push_back(std::make_unique<bb::BandwidthBroker>(
          bb::BrokerConfig{names_[i], config.domain_capacity,
                           config.key_bits},
          std::move(server), *cas_[i], rng_, kWorldValidity));
    }
    // SLAs along the chain (traffic flows 0 -> N-1) with peer trust
    // material, plus next-hop routing toward every downstream domain.
    for (std::size_t i = 0; i + 1 < config.domains; ++i) {
      sla::ServiceLevelAgreement agreement;
      agreement.from_domain = names_[i];
      agreement.to_domain = names_[i + 1];
      agreement.profile.rate_bits_per_s = config.sla_rate;
      agreement.profile.burst_bits = 100000;
      agreement.validity = kWorldValidity;
      agreement.price_per_mbit_s = 0.01 * static_cast<double>(i + 1);
      agreement.peer_bb_certificate = brokers_[i]->certificate();
      agreement.peer_ca_certificate = cas_[i]->root_certificate();
      brokers_[i + 1]->add_upstream_sla(agreement);
      // The upstream side needs the downstream CA to authenticate the
      // channel peer too.
      brokers_[i]->trust_store().add_anchor(cas_[i + 1]->root_certificate());
      for (std::size_t dest = i + 1; dest < config.domains; ++dest) {
        brokers_[i]->set_next_hop(names_[dest], names_[i + 1]);
      }
      fabric_.set_latency(names_[i], names_[i + 1],
                          config.inter_domain_latency);
    }
    // Engines.
    for (std::size_t i = 0; i < config.domains; ++i) {
      sig::DomainOptions options;
      options.group_server = &group_server_;
      options.relevant_groups = {"Atlas", "physicists"};
      engine_.add_domain(*brokers_[i], options);
      engine_.trust_community(names_[i], "ESnet", cas_esnet_.public_key());
      sig::SourceDomainEngine::DomainOptions source_options;
      source_options.group_server = &group_server_;
      source_options.relevant_groups = {"Atlas", "physicists"};
      source_engine_.add_domain(*brokers_[i], source_options);
    }
    for (std::size_t i = 0; i + 1 < config.domains; ++i) {
      auto status = engine_.connect_peers(names_[i], names_[i + 1], 0);
      if (!status.ok()) {
        throw std::runtime_error("world: connect_peers failed: " +
                                 status.error().to_text());
      }
    }
    // Every hop-by-hop reservation in this world records a trace tree
    // (keyed by Outcome::trace_id) into the world-owned recorder.
    engine_.set_trace_recorder(&tracer_);
    source_engine_.set_trace_recorder(&tracer_);
    // Each domain also records into its own recorder; cross-domain linkage
    // travels in the transport envelope and collect() stitches the exports
    // back into end-to-end trees.
    domain_tracers_.reserve(config.domains);
    for (std::size_t i = 0; i < config.domains; ++i) {
      domain_tracers_.push_back(std::make_unique<obs::TraceRecorder>());
      engine_.set_domain_trace_recorder(names_[i], domain_tracers_[i].get());
      source_engine_.set_domain_trace_recorder(names_[i],
                                               domain_tracers_[i].get());
    }
    // Fault model + retry policy (no-ops for the default clean config).
    fabric_.seed_faults(config.fault_seed);
    if (config.fault_profile.any()) {
      fabric_.set_default_fault_profile(config.fault_profile);
    }
    engine_.set_retry_policy(config.retry_policy);
    source_engine_.set_retry_policy(config.retry_policy);
    if (config.admission_threads > 0) {
      admission_pool_ = std::make_unique<ThreadPool>(config.admission_threads);
      engine_.set_admission_pool(admission_pool_.get());
    }
    // Durability: one WAL per domain, fsync'd before any grant is acked.
    if (!config.durability_dir.empty()) {
      wals_.resize(config.domains);
      for (std::size_t i = 0; i < config.domains; ++i) {
        std::uint64_t min_next_seq = 1;
        std::string head_hash;
        if (config.recover_on_open) {
          // Replay prior state into the fresh broker BEFORE reopening the
          // log, then continue the chain where the tail left off.
          auto report = bb::recover_broker(*brokers_[i], snapshot_path(i),
                                           wal_path(i));
          if (!report.ok()) {
            throw std::runtime_error("world: recovery failed for " +
                                     names_[i] + ": " +
                                     report.error().to_text());
          }
          min_next_seq = report.value().wal_next_seq;
          head_hash = report.value().wal_head;
        }
        auto wal = bb::WriteAheadLog::open(wal_path(i), config.wal_sync_mode,
                                           min_next_seq, head_hash);
        if (!wal.ok()) {
          throw std::runtime_error("world: wal open failed: " +
                                   wal.error().to_text());
        }
        wals_[i] = std::move(*wal);
        brokers_[i]->attach_wal(wals_[i].get());
      }
    }
    // Shared-nothing admission: each broker gets a thread-per-shard engine
    // sized like the legacy pool. Enabled LAST — recovery and WAL attach
    // above run caller-threaded; the engine takes ownership only once the
    // world's state is fully wired. Grants/handles/metric totals are
    // identical with the engine on or off.
    if (config.admission_threads > 0) {
      for (auto& broker : brokers_) {
        broker->enable_shard_engine(config.admission_threads);
      }
    }
  }

  /// The world-owned admission worker pool (nullptr when
  /// admission_threads == 0).
  ThreadPool* admission_pool() { return admission_pool_.get(); }

  static std::string domain_name(std::size_t i) {
    if (i < 26) return std::string("Domain") + static_cast<char>('A' + i);
    return "Domain" + std::to_string(i);
  }

  /// Mint a user homed in domain `home`, optionally with an ESnet
  /// capability certificate from grid-login, registered as a local user of
  /// its home BB (hop-by-hop) — registration with every domain (source-
  /// based signalling) is the caller's choice via register_everywhere.
  WorldUser make_user(const std::string& name, std::size_t home,
                      bool with_capability = true,
                      bool register_everywhere = false) {
    WorldUser user;
    user.dn = crypto::DistinguishedName::make(name, names_.at(home));
    user.identity_keys = crypto::generate_keypair(rng_, config_.key_bits);
    user.identity_cert = cas_.at(home)->issue(user.dn, user.identity_keys.pub,
                                              kWorldValidity);
    user.proxy_keys = crypto::generate_keypair(rng_, config_.key_bits);
    if (with_capability) {
      user.capability_cert = cas_esnet_.grid_login(
          user.dn, user.proxy_keys.pub, kWorldValidity);
    }
    engine_.register_local_user(names_.at(home), user.identity_cert);
    if (register_everywhere) {
      for (const auto& domain : names_) {
        source_engine_.register_user(domain, user.identity_cert);
      }
    } else {
      source_engine_.register_user(names_.at(home), user.identity_cert);
    }
    return user;
  }

  bb::ResSpec spec(const WorldUser& user, double rate,
                   TimeInterval interval = {0, seconds(600)},
                   std::size_t src = 0, std::size_t dst_offset_from_end = 0) {
    bb::ResSpec s;
    s.user = user.dn.to_string();
    s.source_domain = names_.at(src);
    s.destination_domain = names_.at(names_.size() - 1 - dst_offset_from_end);
    s.rate_bits_per_s = rate;
    s.burst_bits = 30000;
    s.interval = interval;
    return s;
  }

  // --- Fault-injection hooks (soak/robustness suites) -----------------------
  /// Partition / heal the inter-BB link between domains `i` and `j`.
  void partition_link(std::size_t i, std::size_t j) {
    fabric_.partition(names_.at(i), names_.at(j));
  }
  void heal_link(std::size_t i, std::size_t j) {
    fabric_.heal(names_.at(i), names_.at(j));
  }
  /// Crash / restore a domain's broker on the fabric (while down, nothing
  /// is delivered to or sent by it).
  void crash_broker(std::size_t i) { fabric_.set_down(names_.at(i), true); }
  void restore_broker(std::size_t i) {
    fabric_.set_down(names_.at(i), false);
  }

  // --- Durability (only meaningful when config.durability_dir is set) -------
  std::string wal_path(std::size_t i) const {
    return config_.durability_dir + "/" + names_.at(i) + ".wal";
  }
  std::string snapshot_path(std::size_t i) const {
    return config_.durability_dir + "/" + names_.at(i) + ".snapshot";
  }
  /// The domain's WAL (nullptr when durability is disabled or detached).
  bb::WriteAheadLog* wal(std::size_t i) { return wals_.at(i).get(); }
  /// Snapshot domain `i`'s broker and truncate its WAL at the snapshot
  /// boundary; returns the number of log records dropped.
  Result<std::size_t> snapshot_domain(std::size_t i) {
    if (wals_.size() <= i || wals_[i] == nullptr) {
      return make_error(ErrorCode::kInvalidArgument,
                        "durability is not enabled for this world",
                        "kit.world");
    }
    return bb::snapshot_and_truncate(*brokers_.at(i), *wals_[i],
                                     snapshot_path(i));
  }
  /// Simulate losing the process: detach and close the domain's WAL (the
  /// on-disk file keeps everything that was acked). Recovery tests then
  /// rebuild a fresh broker from snapshot + tail and compare.
  void drop_wal(std::size_t i) {
    if (wals_.size() > i) {
      brokers_.at(i)->attach_wal(nullptr);
      wals_[i].reset();
    }
  }
  /// A freshly constructed broker with the same domain, capacity, policy
  /// and upstream-SLA wiring as domain `i`'s — the blank slate crash
  /// recovery replays into. Key material is freshly generated (durability
  /// covers admission state, not private keys).
  std::unique_ptr<bb::BandwidthBroker> make_blank_broker(std::size_t i) {
    policy::PolicyServer server(
        names_.at(i), policy::Policy::compile(
                          config_.policies[i % config_.policies.size()])
                          .value());
    auto broker = std::make_unique<bb::BandwidthBroker>(
        bb::BrokerConfig{names_.at(i), config_.domain_capacity,
                         config_.key_bits},
        std::move(server), *cas_.at(i), rng_, kWorldValidity);
    if (i > 0) {
      // The same agreement the constructor installs between i-1 and i.
      sla::ServiceLevelAgreement agreement;
      agreement.from_domain = names_[i - 1];
      agreement.to_domain = names_[i];
      agreement.profile.rate_bits_per_s = config_.sla_rate;
      agreement.profile.burst_bits = 100000;
      agreement.validity = kWorldValidity;
      agreement.price_per_mbit_s = 0.01 * static_cast<double>(i);
      agreement.peer_bb_certificate = brokers_[i - 1]->certificate();
      agreement.peer_ca_certificate = cas_[i - 1]->root_certificate();
      broker->add_upstream_sla(agreement);
    }
    return broker;
  }
  /// Residual committed state across every broker — the soak invariant
  /// checks this returns to zero after each failed or released trial.
  std::size_t total_reservations() const {
    std::size_t n = 0;
    for (const auto& broker : brokers_) n += broker->reservation_count();
    return n;
  }
  /// Total bandwidth committed across every broker at time `t`.
  double total_committed_at(SimTime t) const {
    double r = 0;
    for (const auto& broker : brokers_) r += broker->committed_at(t);
    return r;
  }

  const std::vector<std::string>& names() const { return names_; }
  bb::BandwidthBroker& broker(std::size_t i) { return *brokers_.at(i); }
  crypto::CertificateAuthority& ca(std::size_t i) { return *cas_.at(i); }
  policy::CommunityAuthorizationServer& cas_esnet() { return cas_esnet_; }
  policy::GroupServer& group_server() { return group_server_; }
  sig::Fabric& fabric() { return fabric_; }
  sig::HopByHopEngine& engine() { return engine_; }
  sig::SourceDomainEngine& source_engine() { return source_engine_; }
  obs::TraceRecorder& tracer() { return tracer_; }
  obs::TraceRecorder& domain_tracer(std::size_t i) {
    return *domain_tracers_.at(i);
  }
  /// Ingest every domain's export into `collector` (the destination side
  /// of distributed tracing; call after the reservations of interest).
  void collect(obs::SpanCollector& collector) const {
    for (std::size_t i = 0; i < domain_tracers_.size(); ++i) {
      collector.ingest(names_[i], *domain_tracers_[i]);
    }
  }
  Rng& rng() { return rng_; }

 private:
  ChainWorldConfig config_;
  Rng rng_;
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<crypto::CertificateAuthority>> cas_;
  // Declared before the brokers so every WAL outlives the broker holding a
  // raw pointer to it.
  std::vector<std::unique_ptr<bb::WriteAheadLog>> wals_;
  std::vector<std::unique_ptr<bb::BandwidthBroker>> brokers_;
  policy::CommunityAuthorizationServer cas_esnet_;
  policy::GroupServer group_server_{"world-group-server"};
  // Declared before the engines so it outlives them (the engines hold a
  // raw pointer to the pool while an admission batch is in flight).
  std::unique_ptr<ThreadPool> admission_pool_;
  sig::Fabric fabric_;
  sig::HopByHopEngine engine_;
  sig::SourceDomainEngine source_engine_;
  obs::TraceRecorder tracer_;
  std::vector<std::unique_ptr<obs::TraceRecorder>> domain_tracers_;
};

}  // namespace e2e::kit
