// Binding between a bandwidth broker and the DiffServ simulator's edge
// router: "A BB provides admission control and configures the edge routers
// of a single administrative network domain" (paper §2).
//
// When the broker commits a reservation, the matching traffic flow's
// per-flow policer is installed on the configured edge link (marking
// conforming packets EF); on release it is removed. Advance reservations
// (interval starting in the future) are honoured: the policer is installed
// by a simulator event at the interval start and removed at its end, so
// premium service exists exactly during the reserved window.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "bb/bandwidth_broker.hpp"
#include "net/simulator.hpp"

namespace e2e::gara {

class EdgeBinding {
 public:
  /// Reservations committed at the attached broker configure policers on
  /// `edge_link` of `simulator`.
  EdgeBinding(net::Simulator& simulator, net::LinkId edge_link,
              sla::ExcessTreatment treatment = sla::ExcessTreatment::kDrop)
      : simulator_(&simulator), edge_link_(edge_link), treatment_(treatment) {}

  /// Associate a user's traffic flow with reservations made under that
  /// user DN (the edge classifier's per-flow rule).
  void bind_flow(const std::string& user_dn, net::FlowId flow) {
    flows_[user_dn] = flow;
  }

  /// Install this binding as the broker's edge configurator.
  void attach(bb::BandwidthBroker& broker) {
    broker.set_edge_configurator(
        [this](const bb::Reservation& resv, bool install) {
          on_reservation(resv, install);
        });
  }

  std::size_t installed_policers() const { return installed_; }

 private:
  void install_policer(net::FlowId flow, const bb::ResSpec& spec) {
    simulator_->set_flow_policer(
        edge_link_, flow,
        net::TokenBucket(spec.rate_bits_per_s,
                         spec.burst_bits > 0 ? spec.burst_bits : 30000,
                         simulator_->now()),
        treatment_);
    ++installed_;
  }

  void on_reservation(const bb::Reservation& resv, bool install) {
    const auto it = flows_.find(resv.spec.user);
    if (it == flows_.end()) return;  // no local traffic flow for this user
    const net::FlowId flow = it->second;
    // Each (re)configuration invalidates previously scheduled actions for
    // this reservation.
    const std::uint64_t generation = ++generation_[resv.id];
    if (!install) {
      simulator_->clear_flow_policer(edge_link_, flow);
      return;
    }
    const bb::ResSpec spec = resv.spec;
    const std::string id = resv.id;
    if (spec.interval.start <= simulator_->now()) {
      install_policer(flow, spec);
    } else {
      // Advance reservation: activate at the window start.
      simulator_->events().schedule_at(
          spec.interval.start, [this, id, generation, flow, spec] {
            if (generation_[id] != generation) return;  // superseded
            install_policer(flow, spec);
          });
    }
    // Deactivate when the window closes.
    if (spec.interval.end > simulator_->now()) {
      simulator_->events().schedule_at(
          spec.interval.end, [this, id, generation, flow] {
            if (generation_[id] != generation) return;
            simulator_->clear_flow_policer(edge_link_, flow);
          });
    }
  }

  net::Simulator* simulator_;
  net::LinkId edge_link_;
  sla::ExcessTreatment treatment_;
  std::map<std::string, net::FlowId> flows_;
  std::map<std::string, std::uint64_t> generation_;
  std::size_t installed_ = 0;
};

}  // namespace e2e::gara
