// GARA-style uniform reservation API.
//
// Paper §3: GARA "defines APIs that allow users and applications to
// manipulate reservations of different resources in uniform ways. ... A
// library provided by GARA implements an end-to-end network API that
// facilitates end-to-end reservation for its users."
//
// This facade exposes one handle type over three resource kinds, drives
// the hop-by-hop signalling engine for network reservations, and offers
// the Fig. 5/6 co-reservation: a CPU reservation in the destination domain
// coupled to a network reservation that references it (so the destination
// policy's HasValidCPUResv(RAR) check passes).
#pragma once

#include <map>
#include <string>

#include "gara/compute_manager.hpp"
#include "gara/storage_manager.hpp"
#include "sig/hopbyhop.hpp"

namespace e2e::gara {

enum class ResourceType { kNetwork, kCpu, kDisk };

constexpr const char* to_string(ResourceType t) {
  switch (t) {
    case ResourceType::kNetwork: return "network";
    case ResourceType::kCpu: return "cpu";
    case ResourceType::kDisk: return "disk";
  }
  return "?";
}

/// Uniform reservation handle.
struct GaraReservation {
  ResourceType type = ResourceType::kNetwork;
  /// Domain the resource lives in (destination domain for network).
  std::string domain;
  /// Resource-manager handle (CPU/disk id, or the end-to-end network reply).
  std::string handle;
  sig::RarReply network_reply;  // network reservations only
};

class Gara {
 public:
  explicit Gara(sig::HopByHopEngine& engine) : engine_(&engine) {}

  /// Attach per-domain resource managers. Attaching a compute manager also
  /// binds the domain's HasValidCPUResv predicate to it.
  void attach_compute(ComputeManager& manager) {
    compute_[manager.domain()] = &manager;
    engine_->set_cpu_reservation_checker(
        manager.domain(), [m = &manager](const std::string& id) {
          return m->exists(id);
        });
  }
  void attach_storage(StorageManager& manager) {
    storage_[manager.domain()] = &manager;
  }

  /// End-to-end network reservation via hop-by-hop signalling.
  Result<GaraReservation> reserve_network(const sig::UserCredentials& user,
                                          const bb::ResSpec& spec,
                                          SimTime at);

  Result<GaraReservation> reserve_cpu(const std::string& domain,
                                      const std::string& user, double cpus,
                                      TimeInterval interval);

  Result<GaraReservation> reserve_disk(const std::string& domain,
                                       const std::string& user, double bytes,
                                       TimeInterval interval);

  Status release(const GaraReservation& reservation);

  /// Fig. 5/6 co-reservation: reserve `cpus` CPUs in the destination
  /// domain, link the handle into the network request
  /// (CPU_Reservation_ID), and make the end-to-end network reservation.
  /// Atomic: if the network part is denied, the CPU part is released.
  struct CoReservation {
    GaraReservation cpu;
    GaraReservation network;
  };
  Result<CoReservation> co_reserve(const sig::UserCredentials& user,
                                   bb::ResSpec network_spec, double cpus,
                                   SimTime at);

  ComputeManager* compute(const std::string& domain) {
    const auto it = compute_.find(domain);
    return it == compute_.end() ? nullptr : it->second;
  }

 private:
  sig::HopByHopEngine* engine_;
  std::map<std::string, ComputeManager*> compute_;
  std::map<std::string, StorageManager*> storage_;
};

}  // namespace e2e::gara
