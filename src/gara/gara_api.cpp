#include "gara/gara_api.hpp"

namespace e2e::gara {

Result<GaraReservation> Gara::reserve_network(
    const sig::UserCredentials& user, const bb::ResSpec& spec, SimTime at) {
  auto msg = engine_->build_user_request(user, spec, at);
  if (!msg) return msg.error();
  auto outcome = engine_->reserve(*msg, at);
  if (!outcome) return outcome.error();
  if (!outcome->reply.granted) return outcome->reply.denial;
  GaraReservation r;
  r.type = ResourceType::kNetwork;
  r.domain = spec.destination_domain;
  r.handle = outcome->reply.handles.empty()
                 ? ""
                 : outcome->reply.handles.front().second;
  r.network_reply = outcome->reply;
  return r;
}

Result<GaraReservation> Gara::reserve_cpu(const std::string& domain,
                                          const std::string& user,
                                          double cpus, TimeInterval interval) {
  const auto it = compute_.find(domain);
  if (it == compute_.end()) {
    return make_error(ErrorCode::kNotFound,
                      "no compute manager in domain " + domain);
  }
  auto handle = it->second->reserve(user, cpus, interval);
  if (!handle) return handle.error();
  return GaraReservation{ResourceType::kCpu, domain, *handle, {}};
}

Result<GaraReservation> Gara::reserve_disk(const std::string& domain,
                                           const std::string& user,
                                           double bytes,
                                           TimeInterval interval) {
  const auto it = storage_.find(domain);
  if (it == storage_.end()) {
    return make_error(ErrorCode::kNotFound,
                      "no storage manager in domain " + domain);
  }
  auto handle = it->second->reserve(user, bytes, interval);
  if (!handle) return handle.error();
  return GaraReservation{ResourceType::kDisk, domain, *handle, {}};
}

Status Gara::release(const GaraReservation& reservation) {
  switch (reservation.type) {
    case ResourceType::kNetwork:
      return engine_->release_end_to_end(reservation.network_reply);
    case ResourceType::kCpu: {
      const auto it = compute_.find(reservation.domain);
      if (it == compute_.end()) {
        return make_error(ErrorCode::kNotFound, "no compute manager");
      }
      return it->second->release(reservation.handle);
    }
    case ResourceType::kDisk: {
      const auto it = storage_.find(reservation.domain);
      if (it == storage_.end()) {
        return make_error(ErrorCode::kNotFound, "no storage manager");
      }
      return it->second->release(reservation.handle);
    }
  }
  return make_error(ErrorCode::kInternal, "unknown resource type");
}

Result<Gara::CoReservation> Gara::co_reserve(const sig::UserCredentials& user,
                                             bb::ResSpec network_spec,
                                             double cpus, SimTime at) {
  auto cpu = reserve_cpu(network_spec.destination_domain, network_spec.user,
                         cpus, network_spec.interval);
  if (!cpu) return cpu.error();
  network_spec.linked_cpu_reservation = cpu->handle;
  auto network = reserve_network(user, network_spec, at);
  if (!network) {
    (void)release(*cpu);  // atomicity: no dangling CPU reservation
    return network.error();
  }
  return CoReservation{std::move(*cpu), std::move(*network)};
}

}  // namespace e2e::gara
