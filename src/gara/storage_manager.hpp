// Disk-space reservations (the third GARA resource type).
#pragma once

#include <map>
#include <string>

#include "bb/admission.hpp"
#include "common/result.hpp"

namespace e2e::gara {

struct DiskReservation {
  std::string id;
  std::string user;
  double bytes = 0;
  TimeInterval interval{0, 0};
};

class StorageManager {
 public:
  StorageManager(std::string domain, double total_bytes)
      : domain_(std::move(domain)), pool_(total_bytes) {}

  const std::string& domain() const { return domain_; }
  double total_bytes() const { return pool_.capacity(); }

  Result<std::string> reserve(const std::string& user, double bytes,
                              TimeInterval interval) {
    if (bytes <= 0) {
      return make_error(ErrorCode::kInvalidArgument,
                        "disk reservation needs bytes > 0", domain_);
    }
    const std::string id = "disk-" + domain_ + "-" + std::to_string(next_++);
    auto status = pool_.commit(id, interval, bytes);
    if (!status.ok()) return status.error();
    reservations_.emplace(id, DiskReservation{id, user, bytes, interval});
    return id;
  }

  Status release(const std::string& id) {
    if (reservations_.erase(id) == 0) {
      return make_error(ErrorCode::kNotFound, "unknown disk reservation " + id,
                        domain_);
    }
    return pool_.release(id);
  }

  bool exists(const std::string& id) const {
    return reservations_.contains(id);
  }
  const DiskReservation* find(const std::string& id) const {
    const auto it = reservations_.find(id);
    return it == reservations_.end() ? nullptr : &it->second;
  }
  std::size_t count() const { return reservations_.size(); }

 private:
  std::string domain_;
  bb::CapacityPool pool_;
  std::map<std::string, DiskReservation> reservations_;
  std::uint64_t next_ = 1;
};

}  // namespace e2e::gara
