// Slot-based CPU reservations.
//
// GARA "provides advance reservations and end-to-end management for
// quality of service on different types of resources, including networks,
// CPUs, and disks" (paper §3). This manager implements the CPU substrate:
// advance reservations of CPU slots against a fixed machine size, with the
// validity test the destination-domain policy needs for
// HasValidCPUResv(RAR) (Fig. 6: "CPU_Reservation_ID=111").
#pragma once

#include <map>
#include <string>

#include "bb/admission.hpp"
#include "common/result.hpp"

namespace e2e::gara {

struct CpuReservation {
  std::string id;
  std::string user;
  double cpus = 0;
  TimeInterval interval{0, 0};
};

class ComputeManager {
 public:
  ComputeManager(std::string domain, double total_cpus)
      : domain_(std::move(domain)), pool_(total_cpus) {}

  const std::string& domain() const { return domain_; }
  double total_cpus() const { return pool_.capacity(); }

  Result<std::string> reserve(const std::string& user, double cpus,
                              TimeInterval interval) {
    if (cpus <= 0) {
      return make_error(ErrorCode::kInvalidArgument,
                        "cpu reservation needs cpus > 0", domain_);
    }
    const std::string id = "cpu-" + domain_ + "-" + std::to_string(next_++);
    auto status = pool_.commit(id, interval, cpus);
    if (!status.ok()) return status.error();
    reservations_.emplace(id, CpuReservation{id, user, cpus, interval});
    return id;
  }

  Status release(const std::string& id) {
    if (reservations_.erase(id) == 0) {
      return make_error(ErrorCode::kNotFound, "unknown cpu reservation " + id,
                        domain_);
    }
    return pool_.release(id);
  }

  /// The HasValidCPUResv predicate: does this handle name a live
  /// reservation covering time `at`?
  bool is_valid(const std::string& id, SimTime at) const {
    const auto it = reservations_.find(id);
    return it != reservations_.end() && it->second.interval.contains(at);
  }
  /// Handle-existence variant used when the policy only checks linkage.
  bool exists(const std::string& id) const {
    return reservations_.contains(id);
  }

  const CpuReservation* find(const std::string& id) const {
    const auto it = reservations_.find(id);
    return it == reservations_.end() ? nullptr : &it->second;
  }
  std::size_t count() const { return reservations_.size(); }
  double committed_at(SimTime t) const { return pool_.committed_at(t); }

 private:
  std::string domain_;
  bb::CapacityPool pool_;
  std::map<std::string, CpuReservation> reservations_;
  std::uint64_t next_ = 1;
};

}  // namespace e2e::gara
