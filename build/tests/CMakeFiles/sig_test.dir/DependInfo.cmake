
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sig_channel_test.cpp" "tests/CMakeFiles/sig_test.dir/sig_channel_test.cpp.o" "gcc" "tests/CMakeFiles/sig_test.dir/sig_channel_test.cpp.o.d"
  "/root/repo/tests/sig_coordinator_test.cpp" "tests/CMakeFiles/sig_test.dir/sig_coordinator_test.cpp.o" "gcc" "tests/CMakeFiles/sig_test.dir/sig_coordinator_test.cpp.o.d"
  "/root/repo/tests/sig_delegation_test.cpp" "tests/CMakeFiles/sig_test.dir/sig_delegation_test.cpp.o" "gcc" "tests/CMakeFiles/sig_test.dir/sig_delegation_test.cpp.o.d"
  "/root/repo/tests/sig_extensions_test.cpp" "tests/CMakeFiles/sig_test.dir/sig_extensions_test.cpp.o" "gcc" "tests/CMakeFiles/sig_test.dir/sig_extensions_test.cpp.o.d"
  "/root/repo/tests/sig_failure_injection_test.cpp" "tests/CMakeFiles/sig_test.dir/sig_failure_injection_test.cpp.o" "gcc" "tests/CMakeFiles/sig_test.dir/sig_failure_injection_test.cpp.o.d"
  "/root/repo/tests/sig_hopbyhop_test.cpp" "tests/CMakeFiles/sig_test.dir/sig_hopbyhop_test.cpp.o" "gcc" "tests/CMakeFiles/sig_test.dir/sig_hopbyhop_test.cpp.o.d"
  "/root/repo/tests/sig_impersonation_test.cpp" "tests/CMakeFiles/sig_test.dir/sig_impersonation_test.cpp.o" "gcc" "tests/CMakeFiles/sig_test.dir/sig_impersonation_test.cpp.o.d"
  "/root/repo/tests/sig_message_test.cpp" "tests/CMakeFiles/sig_test.dir/sig_message_test.cpp.o" "gcc" "tests/CMakeFiles/sig_test.dir/sig_message_test.cpp.o.d"
  "/root/repo/tests/sig_path_sweep_test.cpp" "tests/CMakeFiles/sig_test.dir/sig_path_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/sig_test.dir/sig_path_sweep_test.cpp.o.d"
  "/root/repo/tests/sig_release_flow_test.cpp" "tests/CMakeFiles/sig_test.dir/sig_release_flow_test.cpp.o" "gcc" "tests/CMakeFiles/sig_test.dir/sig_release_flow_test.cpp.o.d"
  "/root/repo/tests/sig_reply_test.cpp" "tests/CMakeFiles/sig_test.dir/sig_reply_test.cpp.o" "gcc" "tests/CMakeFiles/sig_test.dir/sig_reply_test.cpp.o.d"
  "/root/repo/tests/sig_source_test.cpp" "tests/CMakeFiles/sig_test.dir/sig_source_test.cpp.o" "gcc" "tests/CMakeFiles/sig_test.dir/sig_source_test.cpp.o.d"
  "/root/repo/tests/sig_transport_test.cpp" "tests/CMakeFiles/sig_test.dir/sig_transport_test.cpp.o" "gcc" "tests/CMakeFiles/sig_test.dir/sig_transport_test.cpp.o.d"
  "/root/repo/tests/sig_tunnel_test.cpp" "tests/CMakeFiles/sig_test.dir/sig_tunnel_test.cpp.o" "gcc" "tests/CMakeFiles/sig_test.dir/sig_tunnel_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sig/CMakeFiles/e2e_sig.dir/DependInfo.cmake"
  "/root/repo/build/src/bb/CMakeFiles/e2e_bb.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/e2e_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/e2e_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/e2e_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
