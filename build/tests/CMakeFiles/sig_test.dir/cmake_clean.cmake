file(REMOVE_RECURSE
  "CMakeFiles/sig_test.dir/sig_channel_test.cpp.o"
  "CMakeFiles/sig_test.dir/sig_channel_test.cpp.o.d"
  "CMakeFiles/sig_test.dir/sig_coordinator_test.cpp.o"
  "CMakeFiles/sig_test.dir/sig_coordinator_test.cpp.o.d"
  "CMakeFiles/sig_test.dir/sig_delegation_test.cpp.o"
  "CMakeFiles/sig_test.dir/sig_delegation_test.cpp.o.d"
  "CMakeFiles/sig_test.dir/sig_extensions_test.cpp.o"
  "CMakeFiles/sig_test.dir/sig_extensions_test.cpp.o.d"
  "CMakeFiles/sig_test.dir/sig_failure_injection_test.cpp.o"
  "CMakeFiles/sig_test.dir/sig_failure_injection_test.cpp.o.d"
  "CMakeFiles/sig_test.dir/sig_hopbyhop_test.cpp.o"
  "CMakeFiles/sig_test.dir/sig_hopbyhop_test.cpp.o.d"
  "CMakeFiles/sig_test.dir/sig_impersonation_test.cpp.o"
  "CMakeFiles/sig_test.dir/sig_impersonation_test.cpp.o.d"
  "CMakeFiles/sig_test.dir/sig_message_test.cpp.o"
  "CMakeFiles/sig_test.dir/sig_message_test.cpp.o.d"
  "CMakeFiles/sig_test.dir/sig_path_sweep_test.cpp.o"
  "CMakeFiles/sig_test.dir/sig_path_sweep_test.cpp.o.d"
  "CMakeFiles/sig_test.dir/sig_release_flow_test.cpp.o"
  "CMakeFiles/sig_test.dir/sig_release_flow_test.cpp.o.d"
  "CMakeFiles/sig_test.dir/sig_reply_test.cpp.o"
  "CMakeFiles/sig_test.dir/sig_reply_test.cpp.o.d"
  "CMakeFiles/sig_test.dir/sig_source_test.cpp.o"
  "CMakeFiles/sig_test.dir/sig_source_test.cpp.o.d"
  "CMakeFiles/sig_test.dir/sig_transport_test.cpp.o"
  "CMakeFiles/sig_test.dir/sig_transport_test.cpp.o.d"
  "CMakeFiles/sig_test.dir/sig_tunnel_test.cpp.o"
  "CMakeFiles/sig_test.dir/sig_tunnel_test.cpp.o.d"
  "sig_test"
  "sig_test.pdb"
  "sig_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
