# Empty compiler generated dependencies file for bb_test.
# This may be replaced when dependencies are built.
