file(REMOVE_RECURSE
  "CMakeFiles/bb_test.dir/bb_admission_test.cpp.o"
  "CMakeFiles/bb_test.dir/bb_admission_test.cpp.o.d"
  "CMakeFiles/bb_test.dir/bb_broker_test.cpp.o"
  "CMakeFiles/bb_test.dir/bb_broker_test.cpp.o.d"
  "bb_test"
  "bb_test.pdb"
  "bb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
