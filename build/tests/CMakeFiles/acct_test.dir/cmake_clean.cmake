file(REMOVE_RECURSE
  "CMakeFiles/acct_test.dir/acct_billing_test.cpp.o"
  "CMakeFiles/acct_test.dir/acct_billing_test.cpp.o.d"
  "acct_test"
  "acct_test.pdb"
  "acct_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
