# Empty compiler generated dependencies file for acct_test.
# This may be replaced when dependencies are built.
