# Empty compiler generated dependencies file for housekeeping_test.
# This may be replaced when dependencies are built.
