file(REMOVE_RECURSE
  "CMakeFiles/housekeeping_test.dir/housekeeping_test.cpp.o"
  "CMakeFiles/housekeeping_test.dir/housekeeping_test.cpp.o.d"
  "housekeeping_test"
  "housekeeping_test.pdb"
  "housekeeping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/housekeeping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
