file(REMOVE_RECURSE
  "CMakeFiles/crypto_test.dir/crypto_biguint_test.cpp.o"
  "CMakeFiles/crypto_test.dir/crypto_biguint_test.cpp.o.d"
  "CMakeFiles/crypto_test.dir/crypto_certstore_test.cpp.o"
  "CMakeFiles/crypto_test.dir/crypto_certstore_test.cpp.o.d"
  "CMakeFiles/crypto_test.dir/crypto_dn_test.cpp.o"
  "CMakeFiles/crypto_test.dir/crypto_dn_test.cpp.o.d"
  "CMakeFiles/crypto_test.dir/crypto_hmac_test.cpp.o"
  "CMakeFiles/crypto_test.dir/crypto_hmac_test.cpp.o.d"
  "CMakeFiles/crypto_test.dir/crypto_properties_test.cpp.o"
  "CMakeFiles/crypto_test.dir/crypto_properties_test.cpp.o.d"
  "CMakeFiles/crypto_test.dir/crypto_rsa_test.cpp.o"
  "CMakeFiles/crypto_test.dir/crypto_rsa_test.cpp.o.d"
  "CMakeFiles/crypto_test.dir/crypto_sha256_test.cpp.o"
  "CMakeFiles/crypto_test.dir/crypto_sha256_test.cpp.o.d"
  "CMakeFiles/crypto_test.dir/crypto_x509_test.cpp.o"
  "CMakeFiles/crypto_test.dir/crypto_x509_test.cpp.o.d"
  "crypto_test"
  "crypto_test.pdb"
  "crypto_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
