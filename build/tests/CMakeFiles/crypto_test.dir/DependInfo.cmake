
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto_biguint_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto_biguint_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto_biguint_test.cpp.o.d"
  "/root/repo/tests/crypto_certstore_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto_certstore_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto_certstore_test.cpp.o.d"
  "/root/repo/tests/crypto_dn_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto_dn_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto_dn_test.cpp.o.d"
  "/root/repo/tests/crypto_hmac_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto_hmac_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto_hmac_test.cpp.o.d"
  "/root/repo/tests/crypto_properties_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto_properties_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto_properties_test.cpp.o.d"
  "/root/repo/tests/crypto_rsa_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto_rsa_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto_rsa_test.cpp.o.d"
  "/root/repo/tests/crypto_sha256_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto_sha256_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto_sha256_test.cpp.o.d"
  "/root/repo/tests/crypto_x509_test.cpp" "tests/CMakeFiles/crypto_test.dir/crypto_x509_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_test.dir/crypto_x509_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/e2e_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/e2e_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
