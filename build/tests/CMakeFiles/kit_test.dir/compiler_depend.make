# Empty compiler generated dependencies file for kit_test.
# This may be replaced when dependencies are built.
