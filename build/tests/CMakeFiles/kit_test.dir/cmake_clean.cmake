file(REMOVE_RECURSE
  "CMakeFiles/kit_test.dir/kit_world_test.cpp.o"
  "CMakeFiles/kit_test.dir/kit_world_test.cpp.o.d"
  "kit_test"
  "kit_test.pdb"
  "kit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
