# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/bb_test[1]_include.cmake")
include("/root/repo/build/tests/sig_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/kit_test[1]_include.cmake")
include("/root/repo/build/tests/housekeeping_test[1]_include.cmake")
include("/root/repo/build/tests/gara_test[1]_include.cmake")
include("/root/repo/build/tests/acct_test[1]_include.cmake")
include("/root/repo/build/tests/repo_test[1]_include.cmake")
