# Empty dependencies file for e2e_acct.
# This may be replaced when dependencies are built.
