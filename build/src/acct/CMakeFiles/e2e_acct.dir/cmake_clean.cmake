file(REMOVE_RECURSE
  "CMakeFiles/e2e_acct.dir/billing.cpp.o"
  "CMakeFiles/e2e_acct.dir/billing.cpp.o.d"
  "libe2e_acct.a"
  "libe2e_acct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2e_acct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
