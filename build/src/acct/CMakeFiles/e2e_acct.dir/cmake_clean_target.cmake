file(REMOVE_RECURSE
  "libe2e_acct.a"
)
