# Empty dependencies file for e2e_policy.
# This may be replaced when dependencies are built.
