file(REMOVE_RECURSE
  "CMakeFiles/e2e_policy.dir/evaluator.cpp.o"
  "CMakeFiles/e2e_policy.dir/evaluator.cpp.o.d"
  "CMakeFiles/e2e_policy.dir/lexer.cpp.o"
  "CMakeFiles/e2e_policy.dir/lexer.cpp.o.d"
  "CMakeFiles/e2e_policy.dir/parser.cpp.o"
  "CMakeFiles/e2e_policy.dir/parser.cpp.o.d"
  "CMakeFiles/e2e_policy.dir/policy.cpp.o"
  "CMakeFiles/e2e_policy.dir/policy.cpp.o.d"
  "CMakeFiles/e2e_policy.dir/policy_server.cpp.o"
  "CMakeFiles/e2e_policy.dir/policy_server.cpp.o.d"
  "CMakeFiles/e2e_policy.dir/value.cpp.o"
  "CMakeFiles/e2e_policy.dir/value.cpp.o.d"
  "libe2e_policy.a"
  "libe2e_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2e_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
