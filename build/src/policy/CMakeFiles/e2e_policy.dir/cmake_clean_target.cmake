file(REMOVE_RECURSE
  "libe2e_policy.a"
)
