
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/evaluator.cpp" "src/policy/CMakeFiles/e2e_policy.dir/evaluator.cpp.o" "gcc" "src/policy/CMakeFiles/e2e_policy.dir/evaluator.cpp.o.d"
  "/root/repo/src/policy/lexer.cpp" "src/policy/CMakeFiles/e2e_policy.dir/lexer.cpp.o" "gcc" "src/policy/CMakeFiles/e2e_policy.dir/lexer.cpp.o.d"
  "/root/repo/src/policy/parser.cpp" "src/policy/CMakeFiles/e2e_policy.dir/parser.cpp.o" "gcc" "src/policy/CMakeFiles/e2e_policy.dir/parser.cpp.o.d"
  "/root/repo/src/policy/policy.cpp" "src/policy/CMakeFiles/e2e_policy.dir/policy.cpp.o" "gcc" "src/policy/CMakeFiles/e2e_policy.dir/policy.cpp.o.d"
  "/root/repo/src/policy/policy_server.cpp" "src/policy/CMakeFiles/e2e_policy.dir/policy_server.cpp.o" "gcc" "src/policy/CMakeFiles/e2e_policy.dir/policy_server.cpp.o.d"
  "/root/repo/src/policy/value.cpp" "src/policy/CMakeFiles/e2e_policy.dir/value.cpp.o" "gcc" "src/policy/CMakeFiles/e2e_policy.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/e2e_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/e2e_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
