# Empty dependencies file for e2e_bb.
# This may be replaced when dependencies are built.
