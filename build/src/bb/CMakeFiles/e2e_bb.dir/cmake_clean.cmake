file(REMOVE_RECURSE
  "CMakeFiles/e2e_bb.dir/admission.cpp.o"
  "CMakeFiles/e2e_bb.dir/admission.cpp.o.d"
  "CMakeFiles/e2e_bb.dir/bandwidth_broker.cpp.o"
  "CMakeFiles/e2e_bb.dir/bandwidth_broker.cpp.o.d"
  "CMakeFiles/e2e_bb.dir/reservation.cpp.o"
  "CMakeFiles/e2e_bb.dir/reservation.cpp.o.d"
  "libe2e_bb.a"
  "libe2e_bb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2e_bb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
