file(REMOVE_RECURSE
  "libe2e_bb.a"
)
