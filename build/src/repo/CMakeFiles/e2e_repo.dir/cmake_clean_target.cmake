file(REMOVE_RECURSE
  "libe2e_repo.a"
)
