file(REMOVE_RECURSE
  "CMakeFiles/e2e_repo.dir/cert_repository.cpp.o"
  "CMakeFiles/e2e_repo.dir/cert_repository.cpp.o.d"
  "libe2e_repo.a"
  "libe2e_repo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2e_repo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
