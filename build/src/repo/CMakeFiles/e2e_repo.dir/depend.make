# Empty dependencies file for e2e_repo.
# This may be replaced when dependencies are built.
