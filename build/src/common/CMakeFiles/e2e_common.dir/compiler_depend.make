# Empty compiler generated dependencies file for e2e_common.
# This may be replaced when dependencies are built.
