file(REMOVE_RECURSE
  "CMakeFiles/e2e_common.dir/bytes.cpp.o"
  "CMakeFiles/e2e_common.dir/bytes.cpp.o.d"
  "CMakeFiles/e2e_common.dir/logging.cpp.o"
  "CMakeFiles/e2e_common.dir/logging.cpp.o.d"
  "CMakeFiles/e2e_common.dir/thread_pool.cpp.o"
  "CMakeFiles/e2e_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/e2e_common.dir/tlv.cpp.o"
  "CMakeFiles/e2e_common.dir/tlv.cpp.o.d"
  "libe2e_common.a"
  "libe2e_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2e_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
