file(REMOVE_RECURSE
  "libe2e_crypto.a"
)
