# Empty compiler generated dependencies file for e2e_crypto.
# This may be replaced when dependencies are built.
