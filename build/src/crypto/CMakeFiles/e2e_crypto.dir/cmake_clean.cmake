file(REMOVE_RECURSE
  "CMakeFiles/e2e_crypto.dir/biguint.cpp.o"
  "CMakeFiles/e2e_crypto.dir/biguint.cpp.o.d"
  "CMakeFiles/e2e_crypto.dir/ca.cpp.o"
  "CMakeFiles/e2e_crypto.dir/ca.cpp.o.d"
  "CMakeFiles/e2e_crypto.dir/certstore.cpp.o"
  "CMakeFiles/e2e_crypto.dir/certstore.cpp.o.d"
  "CMakeFiles/e2e_crypto.dir/dn.cpp.o"
  "CMakeFiles/e2e_crypto.dir/dn.cpp.o.d"
  "CMakeFiles/e2e_crypto.dir/hmac.cpp.o"
  "CMakeFiles/e2e_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/e2e_crypto.dir/rsa.cpp.o"
  "CMakeFiles/e2e_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/e2e_crypto.dir/sha256.cpp.o"
  "CMakeFiles/e2e_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/e2e_crypto.dir/x509.cpp.o"
  "CMakeFiles/e2e_crypto.dir/x509.cpp.o.d"
  "libe2e_crypto.a"
  "libe2e_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2e_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
