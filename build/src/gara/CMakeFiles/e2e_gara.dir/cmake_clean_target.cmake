file(REMOVE_RECURSE
  "libe2e_gara.a"
)
