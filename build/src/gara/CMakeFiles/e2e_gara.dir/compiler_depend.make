# Empty compiler generated dependencies file for e2e_gara.
# This may be replaced when dependencies are built.
