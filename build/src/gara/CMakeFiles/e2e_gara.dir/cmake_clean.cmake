file(REMOVE_RECURSE
  "CMakeFiles/e2e_gara.dir/gara_api.cpp.o"
  "CMakeFiles/e2e_gara.dir/gara_api.cpp.o.d"
  "libe2e_gara.a"
  "libe2e_gara.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2e_gara.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
