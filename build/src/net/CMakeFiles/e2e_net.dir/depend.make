# Empty dependencies file for e2e_net.
# This may be replaced when dependencies are built.
