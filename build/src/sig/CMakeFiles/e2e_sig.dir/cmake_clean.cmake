file(REMOVE_RECURSE
  "CMakeFiles/e2e_sig.dir/channel.cpp.o"
  "CMakeFiles/e2e_sig.dir/channel.cpp.o.d"
  "CMakeFiles/e2e_sig.dir/delegation.cpp.o"
  "CMakeFiles/e2e_sig.dir/delegation.cpp.o.d"
  "CMakeFiles/e2e_sig.dir/hopbyhop.cpp.o"
  "CMakeFiles/e2e_sig.dir/hopbyhop.cpp.o.d"
  "CMakeFiles/e2e_sig.dir/impersonation.cpp.o"
  "CMakeFiles/e2e_sig.dir/impersonation.cpp.o.d"
  "CMakeFiles/e2e_sig.dir/message.cpp.o"
  "CMakeFiles/e2e_sig.dir/message.cpp.o.d"
  "CMakeFiles/e2e_sig.dir/source_signalling.cpp.o"
  "CMakeFiles/e2e_sig.dir/source_signalling.cpp.o.d"
  "CMakeFiles/e2e_sig.dir/transport.cpp.o"
  "CMakeFiles/e2e_sig.dir/transport.cpp.o.d"
  "CMakeFiles/e2e_sig.dir/trust.cpp.o"
  "CMakeFiles/e2e_sig.dir/trust.cpp.o.d"
  "libe2e_sig.a"
  "libe2e_sig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2e_sig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
