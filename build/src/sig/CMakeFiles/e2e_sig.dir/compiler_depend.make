# Empty compiler generated dependencies file for e2e_sig.
# This may be replaced when dependencies are built.
