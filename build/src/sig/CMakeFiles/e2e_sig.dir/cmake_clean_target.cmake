file(REMOVE_RECURSE
  "libe2e_sig.a"
)
