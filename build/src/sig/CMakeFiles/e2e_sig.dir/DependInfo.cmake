
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sig/channel.cpp" "src/sig/CMakeFiles/e2e_sig.dir/channel.cpp.o" "gcc" "src/sig/CMakeFiles/e2e_sig.dir/channel.cpp.o.d"
  "/root/repo/src/sig/delegation.cpp" "src/sig/CMakeFiles/e2e_sig.dir/delegation.cpp.o" "gcc" "src/sig/CMakeFiles/e2e_sig.dir/delegation.cpp.o.d"
  "/root/repo/src/sig/hopbyhop.cpp" "src/sig/CMakeFiles/e2e_sig.dir/hopbyhop.cpp.o" "gcc" "src/sig/CMakeFiles/e2e_sig.dir/hopbyhop.cpp.o.d"
  "/root/repo/src/sig/impersonation.cpp" "src/sig/CMakeFiles/e2e_sig.dir/impersonation.cpp.o" "gcc" "src/sig/CMakeFiles/e2e_sig.dir/impersonation.cpp.o.d"
  "/root/repo/src/sig/message.cpp" "src/sig/CMakeFiles/e2e_sig.dir/message.cpp.o" "gcc" "src/sig/CMakeFiles/e2e_sig.dir/message.cpp.o.d"
  "/root/repo/src/sig/source_signalling.cpp" "src/sig/CMakeFiles/e2e_sig.dir/source_signalling.cpp.o" "gcc" "src/sig/CMakeFiles/e2e_sig.dir/source_signalling.cpp.o.d"
  "/root/repo/src/sig/transport.cpp" "src/sig/CMakeFiles/e2e_sig.dir/transport.cpp.o" "gcc" "src/sig/CMakeFiles/e2e_sig.dir/transport.cpp.o.d"
  "/root/repo/src/sig/trust.cpp" "src/sig/CMakeFiles/e2e_sig.dir/trust.cpp.o" "gcc" "src/sig/CMakeFiles/e2e_sig.dir/trust.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/e2e_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/e2e_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/e2e_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/bb/CMakeFiles/e2e_bb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
