# Empty compiler generated dependencies file for coreservation.
# This may be replaced when dependencies are built.
