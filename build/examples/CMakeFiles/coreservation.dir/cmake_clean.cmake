file(REMOVE_RECURSE
  "CMakeFiles/coreservation.dir/coreservation.cpp.o"
  "CMakeFiles/coreservation.dir/coreservation.cpp.o.d"
  "coreservation"
  "coreservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coreservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
