file(REMOVE_RECURSE
  "CMakeFiles/capability_delegation.dir/capability_delegation.cpp.o"
  "CMakeFiles/capability_delegation.dir/capability_delegation.cpp.o.d"
  "capability_delegation"
  "capability_delegation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capability_delegation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
