# Empty compiler generated dependencies file for capability_delegation.
# This may be replaced when dependencies are built.
