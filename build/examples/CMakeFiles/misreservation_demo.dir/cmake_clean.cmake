file(REMOVE_RECURSE
  "CMakeFiles/misreservation_demo.dir/misreservation_demo.cpp.o"
  "CMakeFiles/misreservation_demo.dir/misreservation_demo.cpp.o.d"
  "misreservation_demo"
  "misreservation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misreservation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
