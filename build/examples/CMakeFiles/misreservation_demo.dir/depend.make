# Empty dependencies file for misreservation_demo.
# This may be replaced when dependencies are built.
