file(REMOVE_RECURSE
  "CMakeFiles/tunnel_flows.dir/tunnel_flows.cpp.o"
  "CMakeFiles/tunnel_flows.dir/tunnel_flows.cpp.o.d"
  "tunnel_flows"
  "tunnel_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunnel_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
