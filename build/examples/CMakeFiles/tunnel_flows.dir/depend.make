# Empty dependencies file for tunnel_flows.
# This may be replaced when dependencies are built.
