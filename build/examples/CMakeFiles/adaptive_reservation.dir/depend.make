# Empty dependencies file for adaptive_reservation.
# This may be replaced when dependencies are built.
