file(REMOVE_RECURSE
  "CMakeFiles/adaptive_reservation.dir/adaptive_reservation.cpp.o"
  "CMakeFiles/adaptive_reservation.dir/adaptive_reservation.cpp.o.d"
  "adaptive_reservation"
  "adaptive_reservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_reservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
