
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/adaptive_reservation.cpp" "examples/CMakeFiles/adaptive_reservation.dir/adaptive_reservation.cpp.o" "gcc" "examples/CMakeFiles/adaptive_reservation.dir/adaptive_reservation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gara/CMakeFiles/e2e_gara.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/e2e_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sig/CMakeFiles/e2e_sig.dir/DependInfo.cmake"
  "/root/repo/build/src/bb/CMakeFiles/e2e_bb.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/e2e_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/e2e_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/e2e_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
