# Empty dependencies file for policy_check.
# This may be replaced when dependencies are built.
