file(REMOVE_RECURSE
  "CMakeFiles/policy_check.dir/policy_check.cpp.o"
  "CMakeFiles/policy_check.dir/policy_check.cpp.o.d"
  "policy_check"
  "policy_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
