# Empty compiler generated dependencies file for fig7_capability_chain.
# This may be replaced when dependencies are built.
