file(REMOVE_RECURSE
  "CMakeFiles/fig7_capability_chain.dir/fig7_capability_chain.cpp.o"
  "CMakeFiles/fig7_capability_chain.dir/fig7_capability_chain.cpp.o.d"
  "fig7_capability_chain"
  "fig7_capability_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_capability_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
