file(REMOVE_RECURSE
  "CMakeFiles/fig4_misreservation.dir/fig4_misreservation.cpp.o"
  "CMakeFiles/fig4_misreservation.dir/fig4_misreservation.cpp.o.d"
  "fig4_misreservation"
  "fig4_misreservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_misreservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
