# Empty dependencies file for fig4_misreservation.
# This may be replaced when dependencies are built.
