file(REMOVE_RECURSE
  "CMakeFiles/fig5_hopbyhop.dir/fig5_hopbyhop.cpp.o"
  "CMakeFiles/fig5_hopbyhop.dir/fig5_hopbyhop.cpp.o.d"
  "fig5_hopbyhop"
  "fig5_hopbyhop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_hopbyhop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
