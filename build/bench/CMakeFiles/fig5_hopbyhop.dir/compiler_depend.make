# Empty compiler generated dependencies file for fig5_hopbyhop.
# This may be replaced when dependencies are built.
