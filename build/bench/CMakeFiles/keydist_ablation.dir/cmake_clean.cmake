file(REMOVE_RECURSE
  "CMakeFiles/keydist_ablation.dir/keydist_ablation.cpp.o"
  "CMakeFiles/keydist_ablation.dir/keydist_ablation.cpp.o.d"
  "keydist_ablation"
  "keydist_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keydist_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
