# Empty compiler generated dependencies file for keydist_ablation.
# This may be replaced when dependencies are built.
