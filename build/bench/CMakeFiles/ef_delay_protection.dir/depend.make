# Empty dependencies file for ef_delay_protection.
# This may be replaced when dependencies are built.
