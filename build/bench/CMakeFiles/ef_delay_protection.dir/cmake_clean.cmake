file(REMOVE_RECURSE
  "CMakeFiles/ef_delay_protection.dir/ef_delay_protection.cpp.o"
  "CMakeFiles/ef_delay_protection.dir/ef_delay_protection.cpp.o.d"
  "ef_delay_protection"
  "ef_delay_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ef_delay_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
