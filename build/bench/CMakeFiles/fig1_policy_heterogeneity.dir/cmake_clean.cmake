file(REMOVE_RECURSE
  "CMakeFiles/fig1_policy_heterogeneity.dir/fig1_policy_heterogeneity.cpp.o"
  "CMakeFiles/fig1_policy_heterogeneity.dir/fig1_policy_heterogeneity.cpp.o.d"
  "fig1_policy_heterogeneity"
  "fig1_policy_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_policy_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
