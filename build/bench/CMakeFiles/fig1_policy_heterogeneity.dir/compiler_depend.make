# Empty compiler generated dependencies file for fig1_policy_heterogeneity.
# This may be replaced when dependencies are built.
