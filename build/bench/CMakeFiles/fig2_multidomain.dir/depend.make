# Empty dependencies file for fig2_multidomain.
# This may be replaced when dependencies are built.
