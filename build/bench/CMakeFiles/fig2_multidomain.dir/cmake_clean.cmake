file(REMOVE_RECURSE
  "CMakeFiles/fig2_multidomain.dir/fig2_multidomain.cpp.o"
  "CMakeFiles/fig2_multidomain.dir/fig2_multidomain.cpp.o.d"
  "fig2_multidomain"
  "fig2_multidomain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_multidomain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
