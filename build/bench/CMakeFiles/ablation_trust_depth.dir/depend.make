# Empty dependencies file for ablation_trust_depth.
# This may be replaced when dependencies are built.
