file(REMOVE_RECURSE
  "CMakeFiles/ablation_trust_depth.dir/ablation_trust_depth.cpp.o"
  "CMakeFiles/ablation_trust_depth.dir/ablation_trust_depth.cpp.o.d"
  "ablation_trust_depth"
  "ablation_trust_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trust_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
