file(REMOVE_RECURSE
  "CMakeFiles/fig3_signalling_latency.dir/fig3_signalling_latency.cpp.o"
  "CMakeFiles/fig3_signalling_latency.dir/fig3_signalling_latency.cpp.o.d"
  "fig3_signalling_latency"
  "fig3_signalling_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_signalling_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
