file(REMOVE_RECURSE
  "CMakeFiles/admission_packing.dir/admission_packing.cpp.o"
  "CMakeFiles/admission_packing.dir/admission_packing.cpp.o.d"
  "admission_packing"
  "admission_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admission_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
