# Empty compiler generated dependencies file for admission_packing.
# This may be replaced when dependencies are built.
