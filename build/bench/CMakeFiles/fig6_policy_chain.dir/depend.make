# Empty dependencies file for fig6_policy_chain.
# This may be replaced when dependencies are built.
