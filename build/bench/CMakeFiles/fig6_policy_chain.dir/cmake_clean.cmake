file(REMOVE_RECURSE
  "CMakeFiles/fig6_policy_chain.dir/fig6_policy_chain.cpp.o"
  "CMakeFiles/fig6_policy_chain.dir/fig6_policy_chain.cpp.o.d"
  "fig6_policy_chain"
  "fig6_policy_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_policy_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
