# Empty compiler generated dependencies file for tunnel_scaling.
# This may be replaced when dependencies are built.
