file(REMOVE_RECURSE
  "CMakeFiles/tunnel_scaling.dir/tunnel_scaling.cpp.o"
  "CMakeFiles/tunnel_scaling.dir/tunnel_scaling.cpp.o.d"
  "tunnel_scaling"
  "tunnel_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunnel_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
