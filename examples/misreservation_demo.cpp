// Fig. 4 demo on the DiffServ data plane: David's incomplete reservation
// (made with source-domain-based signalling, skipping domain C) degrades
// Alice's premium traffic, because domain C polices the EF *aggregate* at
// its ingress and cannot tell their packets apart. Hop-by-hop signalling
// prevents the attack by construction.
//
// This is a condensed, narrated version of bench/fig4_misreservation.
#include <cstdio>

#include "gara/edge_binding.hpp"
#include "kit/chain_world.hpp"
#include "net/simulator.hpp"

using namespace e2e;
using namespace e2e::kit;

int main() {
  // Control plane: a 3-domain chain A -> B -> C. (David shares Alice's
  // access domain here; the paper's separate domain D changes nothing
  // about the aggregate-policing argument.)
  ChainWorldConfig config;
  config.policies = {"Return GRANT", "Return GRANT",
                     "If User = Alice Return GRANT\nReturn DENY"};
  ChainWorld world(config);
  WorldUser alice = world.make_user("Alice", 0, true, true);
  WorldUser david = world.make_user("David", 0, true, true);

  // Data plane: edge-A -> core-B -> edge-C, 100 Mb/s links.
  net::Topology topo;
  const auto da = topo.add_domain("DomainA");
  const auto db = topo.add_domain("DomainB");
  const auto dc = topo.add_domain("DomainC");
  const auto edge_a = topo.add_router(da, "edge-A", true);
  const auto core_b = topo.add_router(db, "core-B", false);
  const auto edge_c = topo.add_router(dc, "edge-C", true);
  const auto link_ab = topo.add_link(edge_a, core_b, 100e6, milliseconds(5));
  const auto link_bc = topo.add_link(core_b, edge_c, 100e6, milliseconds(5));
  net::Simulator sim(std::move(topo), 7);

  auto add_flow = [&](const char* name) {
    net::FlowDescription d;
    d.name = name;
    d.source = edge_a;
    d.destination = edge_c;
    d.wants_premium = true;
    d.pattern = net::TrafficPattern::poisson(9e6);
    return sim.add_flow(d).value();
  };
  const net::FlowId alice_flow = add_flow("alice");
  const net::FlowId david_flow = add_flow("david");

  gara::EdgeBinding binding(sim, link_ab);
  binding.bind_flow(alice.dn.to_string(), alice_flow);
  binding.bind_flow(david.dn.to_string(), david_flow);
  binding.attach(world.broker(0));

  // Alice reserves properly, hop-by-hop.
  bb::ResSpec alice_spec = world.spec(alice, 10e6, {0, seconds(10)});
  alice_spec.burst_bits = 120000;
  const auto msg =
      world.engine().build_user_request(alice.credentials(), alice_spec, 0);
  const auto alice_outcome = world.engine().reserve(*msg, 0);
  std::printf("Alice end-to-end reservation: %s\n",
              alice_outcome->reply.granted ? "GRANTED" : "denied");

  // David tries hop-by-hop first: domain C's policy stops him.
  bb::ResSpec david_spec = world.spec(david, 10e6, {0, seconds(10)});
  david_spec.burst_bits = 120000;
  const auto david_msg =
      world.engine().build_user_request(david.credentials(), david_spec, 0);
  const auto david_hbh = world.engine().reserve(*david_msg, 0);
  std::printf("David hop-by-hop attempt:     %s (%s)\n",
              david_hbh->reply.granted ? "granted?!" : "DENIED",
              david_hbh->reply.denial.to_text().c_str());

  // Now David misreserves: source-based signalling, skipping DomainC.
  const auto david_src = world.source_engine().reserve_subset(
      {"DomainA", "DomainB"}, "DomainA", david_spec, david.identity_cert,
      david.identity_keys.priv, sig::SourceDomainEngine::Mode::kSequential,
      0);
  std::printf("David source-based, skips C:  %s\n",
              david_src->reply.granted ? "GRANTED (the flaw!)" : "denied");

  // Domain C polices its ingress EF aggregate to what it committed: 10M.
  sim.set_aggregate_policer(
      link_bc,
      net::TokenBucket(world.broker(2).committed_at(seconds(1)), 120000),
      sla::ExcessTreatment::kDrop);

  sim.run_until(seconds(5));
  std::printf("\nAfter 5 s of traffic (both offer 9 Mb/s premium):\n");
  std::printf("  Alice premium goodput: %5.2f Mb/s (reserved 10)\n",
              sim.stats(alice_flow).premium_goodput_bits_per_s(seconds(5)) /
                  1e6);
  std::printf("  David premium goodput: %5.2f Mb/s (no reservation in C)\n",
              sim.stats(david_flow).premium_goodput_bits_per_s(seconds(5)) /
                  1e6);
  std::printf("\nDomain C expected 10 Mb/s of reserved traffic but received\n"
              "~18 Mb/s; the aggregate policer dropped the excess blindly,\n"
              "taking roughly half of Alice's packets with it.\n");
  return 0;
}
