// Quickstart: set up three administrative domains, give Alice an identity
// and an ESnet capability, and make a 10 Mb/s end-to-end reservation from
// DomainA to DomainC with hop-by-hop inter-BB signalling.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "kit/chain_world.hpp"

using namespace e2e;
using namespace e2e::kit;

int main() {
  // A ready-made deployment: one CA + one bandwidth broker per domain,
  // SLAs between neighbours (100 Mb/s premium profile), authenticated
  // inter-BB channels, and an ESnet community authorization server.
  ChainWorld world;
  std::printf("Domains: ");
  for (const auto& name : world.names()) std::printf("%s ", name.c_str());
  std::printf("\n");

  // Alice lives in DomainA. make_user issues her identity certificate from
  // DomainA's CA, runs grid-login against the ESnet CAS (capability
  // certificate + private proxy key), and registers her with her home BB.
  WorldUser alice = world.make_user("Alice", 0);
  std::printf("User: %s\n", alice.dn.to_string().c_str());

  // The reservation specification (res_spec): 10 Mb/s, DomainA -> DomainC,
  // for the next ten minutes.
  bb::ResSpec spec = world.spec(alice, 10e6, {0, minutes(10)});
  std::printf("Request: %s\n", spec.to_text().c_str());

  // Build the signed user request (RAR_U): res_spec + the source broker's
  // DN + the CAS capability certificate + Alice's delegation of it to her
  // source broker, all signed with her identity key.
  const auto msg =
      world.engine().build_user_request(alice.credentials(), spec, 0);
  if (!msg.ok()) {
    std::printf("build_user_request failed: %s\n",
                msg.error().to_text().c_str());
    return 1;
  }
  std::printf("RAR_U wire size: %zu bytes\n", msg->wire_size());

  // Watch the request travel: each broker reports what it verified.
  world.engine().set_observer(
      [](const std::string& domain, const sig::VerifiedRar& vr) {
        std::printf("  %s verified the request: user=%s, %zu capability "
                    "cert(s), %zu upstream augmentation(s)\n",
                    domain.c_str(), vr.user_dn.common_name().c_str(),
                    vr.capability_certs.size(), vr.augmentations.size());
      });

  const auto outcome = world.engine().reserve(*msg, seconds(1));
  if (!outcome.ok()) {
    std::printf("reserve failed: %s\n", outcome.error().to_text().c_str());
    return 1;
  }
  if (!outcome->reply.granted) {
    std::printf("DENIED: %s\n", outcome->reply.denial.to_text().c_str());
    return 1;
  }

  std::printf("GRANTED. Per-domain handles:\n");
  for (const auto& [domain, handle] : outcome->reply.handles) {
    std::printf("  %-10s %s\n", domain.c_str(), handle.c_str());
  }
  std::printf("Signalling: %zu messages, %.1f ms modeled latency, final RAR "
              "%zu bytes\n",
              outcome->messages, to_milliseconds(outcome->latency),
              outcome->final_wire_bytes);

  // The trace the reservation left behind: one span per hop under the root
  // reservation span, with verify/policy/admission/sign_and_forward step
  // spans timed against the virtual clock (see docs/OBSERVABILITY.md).
  std::printf("\nTrace tree for %s:\n%s",
              outcome->trace_id.c_str(),
              world.tracer().render_tree(outcome->trace_id).c_str());

  // Release when done; every domain's capacity is restored.
  if (!world.engine().release_end_to_end(outcome->reply).ok()) return 1;
  std::printf("Released. DomainB committed now: %.0f bits/s\n",
              world.broker(1).committed_at(seconds(30)));
  return 0;
}
