// policy_check — a small CLI for the policy-file language.
//
// Usage:
//   policy_check <policy-file> [Name=value ...]
//
// Compiles the policy and evaluates it against the attributes given on the
// command line. Special attribute names:
//   BW=<number>[unit]   bandwidth (e.g. BW=10Mb/s)
//   Time=HH:MM          virtual time of day
//   Avail_BW=<number>   available bandwidth
//   Group=<name>        validated group membership (repeatable)
//   Capability=<community>  validated capability issuer (repeatable)
// Everything else becomes a string attribute (User=Alice, ...).
//
// Exit code: 0 GRANT, 1 DENY, 2 usage/compile error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "policy/lexer.hpp"
#include "policy/policy.hpp"

using namespace e2e;
using namespace e2e::policy;

namespace {

/// Reuse the policy lexer to parse a value literal (number with unit,
/// time-of-day, or bare string).
Value parse_value(const std::string& text) {
  const auto tokens = lex(text);
  if (tokens.ok() && tokens->size() == 2) {
    const Token& t = tokens->front();
    if (t.kind == TokenKind::kNumber || t.kind == TokenKind::kTimeOfDay) {
      return Value(t.number);
    }
  }
  return Value(text);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <policy-file> [Name=value ...]\n"
                 "example: %s fig6a.policy User=Alice BW=10Mb/s Time=14:00\n",
                 argv[0], argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream source;
  source << in.rdbuf();
  auto policy = Policy::compile(source.str());
  if (!policy.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 policy.error().to_text().c_str());
    return 2;
  }

  EvalContext ctx;
  for (int i = 2; i < argc; ++i) {
    const char* eq = std::strchr(argv[i], '=');
    if (eq == nullptr) {
      std::fprintf(stderr, "ignoring malformed argument '%s'\n", argv[i]);
      continue;
    }
    const std::string name(argv[i], static_cast<std::size_t>(eq - argv[i]));
    const std::string value(eq + 1);
    if (name == "Group") {
      ctx.add_group(value);
    } else if (name == "Capability") {
      ctx.add_capability({value, {"cli-supplied"}});
    } else if (name == "Time") {
      const Value v = parse_value(value);
      ctx.set_time(v.is_number() ? static_cast<SimTime>(v.as_number())
                                 : 0);
    } else if (name == "Avail_BW") {
      const Value v = parse_value(value);
      ctx.set_available_bandwidth(v.is_number() ? v.as_number() : 0);
    } else {
      ctx.set(name, parse_value(value));
    }
  }
  // Predicates default to false unless a context value overrides them; the
  // CLI registers the common ones from attributes named like the call.
  for (const char* pred : {"HasValidCPUResv", "Accredited_Physicist"}) {
    const bool value = ctx.get(pred).truthy();
    ctx.register_predicate(pred, [value](std::span<const Value>) {
      return Value(value);
    });
  }

  const auto evaluation = policy->evaluate(ctx);
  if (!evaluation.ok()) {
    std::fprintf(stderr, "evaluation error: %s\n",
                 evaluation.error().to_text().c_str());
    return 2;
  }
  if (evaluation->decision == Decision::kNoDecision) {
    std::printf("NO-DECISION (treated as DENY, closed world)\n");
    return 1;
  }
  std::printf("%s (rule at line %d)\n", to_string(evaluation->decision),
              evaluation->decided_at_line);
  return evaluation->decision == Decision::kGrant ? 0 : 1;
}
