// Co-reservation (paper Fig. 5/6): couple a CPU reservation in the
// destination domain with an end-to-end network reservation through the
// uniform GARA API. The destination domain's policy file demands both an
// ESnet capability and a valid CPU reservation for high-bandwidth requests
// — exactly Fig. 6's policy file C.
#include <cstdio>

#include "gara/gara_api.hpp"
#include "kit/chain_world.hpp"

using namespace e2e;
using namespace e2e::kit;

int main() {
  ChainWorldConfig config;
  config.policies = {
      // DomainA and DomainB accept anything in profile.
      "Return GRANT", "Return GRANT",
      // DomainC: Fig. 6 policy file C.
      "If BW >= 5Mb/s {\n"
      "  If Issued_by(Capability) = ESnet and HasValidCPUResv(RAR) {\n"
      "    Return GRANT\n"
      "  }\n"
      "  Return DENY\n"
      "}\n"
      "Return GRANT"};
  ChainWorld world(config);

  // DomainC hosts a 64-CPU cluster managed through GARA.
  gara::ComputeManager cluster("DomainC", 64);
  gara::Gara gara(world.engine());
  gara.attach_compute(cluster);

  WorldUser alice = world.make_user("Alice", 0);
  std::printf("Alice wants 10 Mb/s to DomainC plus 8 CPUs there.\n\n");

  // First try without the CPU leg: the destination policy denies.
  bb::ResSpec spec = world.spec(alice, 10e6, {0, minutes(30)});
  const auto plain = gara.reserve_network(alice.credentials(), spec, 0);
  std::printf("network-only attempt: %s\n",
              plain.ok() ? "granted (unexpected!)"
                         : plain.error().to_text().c_str());

  // The GARA co-reservation: CPU first, then the network reservation
  // carrying "CPU_Reservation_ID=<handle>" so DomainC's policy engine can
  // call HasValidCPUResv(RAR).
  const auto co = gara.co_reserve(alice.credentials(), spec, 8, 0);
  if (!co.ok()) {
    std::printf("co-reservation failed: %s\n", co.error().to_text().c_str());
    return 1;
  }
  std::printf("\nco-reservation granted:\n");
  std::printf("  CPU     @%s : %s (8 CPUs)\n", co->cpu.domain.c_str(),
              co->cpu.handle.c_str());
  for (const auto& [domain, handle] : co->network.network_reply.handles) {
    std::printf("  network @%s : %s\n", domain.c_str(), handle.c_str());
  }
  std::printf("cluster CPUs committed at t=60s: %.0f of %.0f\n",
              cluster.committed_at(seconds(60)), cluster.total_cpus());

  // Tear down both legs.
  if (!gara.release(co->network).ok() || !gara.release(co->cpu).ok()) {
    return 1;
  }
  std::printf("released; cluster CPUs committed now: %.0f\n",
              cluster.committed_at(seconds(60)));
  return 0;
}
