// Fig. 7 walkthrough: the capability certificates each bandwidth broker
// receives during end-to-end signalling, and the checklist the destination
// runs before using them for authorization (§6.5).
#include <cstdio>

#include "kit/chain_world.hpp"
#include "sig/delegation.hpp"

using namespace e2e;
using namespace e2e::kit;

int main() {
  ChainWorld world;
  WorldUser alice = world.make_user("Alice", 0);

  std::printf("Grid-login issued Alice a capability certificate:\n");
  std::printf("  Issuer : %s\n",
              alice.capability_cert->issuer().to_string().c_str());
  std::printf("  Subject: %s\n",
              alice.capability_cert->subject().to_string().c_str());
  std::printf("  Subject public key: Alice's PROXY key (she holds the "
              "private half)\n");
  for (const auto& cap : alice.capability_cert->capabilities()) {
    std::printf("  Capability: %s\n", cap.c_str());
  }

  // Observe the capability list at each broker, Fig. 7 style.
  world.engine().set_observer([&world](const std::string& domain,
                                       const sig::VerifiedRar& vr) {
    std::printf("\nCapability list received by %s:\n", domain.c_str());
    const auto chain = sig::decode_chain(vr.capability_certs);
    if (!chain.ok()) return;
    for (const auto& cert : *chain) {
      std::printf("  Issuer: %-14s Subject: %-14s",
                  cert.issuer().common_name().c_str(),
                  cert.subject().common_name().c_str());
      const auto restriction =
          cert.extension_value(crypto::kExtValidForRar);
      if (restriction.has_value()) {
        std::printf("  [%s]", restriction->c_str());
      }
      std::printf("\n");
    }
    // Each hop verifies the chain it received (the §6.5 checklist):
    // CAS signature, proxy-key cascade, no capability escalation,
    // restriction preserved, validity, and that the chain ends at THIS
    // broker's key.
    std::size_t index = 0;
    for (std::size_t i = 0; i < world.names().size(); ++i) {
      if (world.names()[i] == domain) index = i;
    }
    const auto verdict = sig::verify_capability_chain(
        *chain, world.cas_esnet().public_key(),
        world.broker(index).public_key(),
        "Valid for Reservation in " + vr.res_spec.destination_domain,
        seconds(1));
    std::printf("  §6.5 checklist at %s: %s\n", domain.c_str(),
                verdict.ok() ? "ALL CHECKS PASS"
                             : verdict.error().to_text().c_str());
  });

  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 10e6), 0);
  const auto outcome = world.engine().reserve(*msg, seconds(1));
  if (!outcome.ok() || !outcome->reply.granted) {
    std::printf("reservation failed\n");
    return 1;
  }
  std::printf("\nEnd-to-end reservation granted; the destination's policy\n"
              "engine authorized it from the validated ESnet capabilities.\n");
  return 0;
}
