// Adaptive application: combine reservation with application adaptation
// (the strategy of the authors' companion work, "A Quality of Service
// Architecture that Combines Resource Reservation and Application
// Adaptation", cited in §3).
//
// The application asks for its ideal rate and, on denial, uses the
// *reason* propagated upstream (paper §6.1) to adapt: admission denials
// halve the request; policy denials stop (no amount of bandwidth will
// help).
#include <cstdio>

#include "kit/chain_world.hpp"

using namespace e2e;
using namespace e2e::kit;

int main() {
  ChainWorldConfig config;
  config.sla_rate = 60e6;  // inter-domain premium profile: 60 Mb/s
  ChainWorld world(config);
  WorldUser alice = world.make_user("Alice", 0);

  // Another tenant already holds 30 Mb/s of the profile.
  WorldUser tenant = world.make_user("Tenant", 0);
  const auto tenant_msg = world.engine().build_user_request(
      tenant.credentials(), world.spec(tenant, 30e6), 0);
  if (!world.engine().reserve(*tenant_msg, 0)->reply.granted) return 1;
  std::printf("Pre-existing tenant holds 30 Mb/s of the 60 Mb/s profile.\n\n");

  double rate = 100e6;  // the visualization stream's ideal rate
  for (int attempt = 1; attempt <= 8; ++attempt) {
    bb::ResSpec spec = world.spec(alice, rate);
    const auto msg =
        world.engine().build_user_request(alice.credentials(), spec, 0);
    const auto outcome = world.engine().reserve(*msg, seconds(attempt));
    std::printf("attempt %d: request %.1f Mb/s -> ", attempt, rate / 1e6);
    if (outcome->reply.granted) {
      std::printf("GRANTED\n");
      std::printf("\nThe application runs at %.1f Mb/s — a degraded but "
                  "guaranteed stream,\nrather than best-effort chaos.\n",
                  rate / 1e6);
      return 0;
    }
    const Error& denial = outcome->reply.denial;
    std::printf("denied (%s)\n", denial.to_text().c_str());
    if (denial.code == ErrorCode::kAdmissionRejected) {
      rate /= 2;  // adapt: ask for less
    } else {
      std::printf("policy denial — adaptation cannot help; giving up.\n");
      return 1;
    }
  }
  std::printf("could not adapt to an admissible rate\n");
  return 1;
}
