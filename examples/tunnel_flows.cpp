// Tunnels (paper §1/§6.4): establish one aggregate end-to-end reservation,
// then admit many parallel flows by contacting only the two end domains
// over the direct signalling channel created at establishment.
#include <cstdio>

#include "kit/chain_world.hpp"

using namespace e2e;
using namespace e2e::kit;

int main() {
  ChainWorldConfig config;
  config.domains = 5;  // A..E, three intermediate domains
  ChainWorld world(config);
  WorldUser alice = world.make_user("Alice", 0);

  // One aggregate 50 Mb/s tunnel DomainA -> DomainE for the next hour.
  bb::ResSpec agg = world.spec(alice, 50e6, {0, hours(1)});
  agg.is_tunnel = true;
  const auto msg =
      world.engine().build_user_request(alice.credentials(), agg, 0);
  const auto established = world.engine().reserve(*msg, 0);
  if (!established->reply.granted) {
    std::printf("tunnel denied: %s\n",
                established->reply.denial.to_text().c_str());
    return 1;
  }
  std::printf("Tunnel %s established A->E (%zu messages through %zu "
              "domains, one-time cost).\n",
              established->reply.tunnel_id.c_str(), established->messages,
              established->domains_contacted);

  // A burst of parallel application flows (e.g. a striped GridFTP
  // transfer): each is admitted by the two end domains only.
  world.fabric().reset_counters();
  const auto before_b = world.broker(1).counters().requests;
  std::size_t admitted = 0;
  for (int i = 0; i < 40; ++i) {
    const auto flow = world.engine().reserve_in_tunnel(
        established->reply.tunnel_id, alice.dn.to_string(), 1e6,
        {0, minutes(10)}, seconds(2));
    if (flow.ok() && flow->reply.granted) ++admitted;
  }
  std::printf("Admitted %zu of 40 parallel 1 Mb/s flows.\n", admitted);
  std::printf("Intermediate broker DomainB handled %llu additional "
              "requests.\n",
              static_cast<unsigned long long>(
                  world.broker(1).counters().requests - before_b));
  std::printf("Messages on the A-B / B-C signalling links since "
              "establishment: %llu / %llu\n",
              static_cast<unsigned long long>(
                  world.fabric().between("DomainA", "DomainB").messages),
              static_cast<unsigned long long>(
                  world.fabric().between("DomainB", "DomainC").messages));

  // The aggregate is still enforced: the 11th..40th 2 Mb/s flows would
  // exceed 50 Mb/s.
  const auto info = world.engine().tunnel_info(established->reply.tunnel_id);
  std::printf("Tunnel utilization: %zu active flows inside a %.0f Mb/s "
              "aggregate.\n",
              info->active_flows, info->aggregate_rate / 1e6);

  const auto over = world.engine().reserve_in_tunnel(
      established->reply.tunnel_id, alice.dn.to_string(), 20e6,
      {0, minutes(10)}, seconds(2));
  std::printf("One more 20 Mb/s flow: %s\n",
              over->reply.granted
                  ? "granted"
                  : ("denied — " + over->reply.denial.to_text()).c_str());
  return 0;
}
