// Crash recovery walkthrough: run a durable three-domain world, make
// reservations, checkpoint one broker, crash it, and replay its on-disk
// state (snapshot + WAL tail) into a blank broker — then watch the
// recovered state line up with the pre-crash books, commitment for
// commitment.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/crash_recovery
#include <sys/stat.h>

#include <cstdio>

#include "bb/recovery.hpp"
#include "kit/chain_world.hpp"

using namespace e2e;
using namespace e2e::kit;

int main() {
  // A durable deployment: durability_dir gives every broker a write-ahead
  // log (<dir>/<domain>.wal) that is fsync'd before any grant is acked.
  ChainWorldConfig config;
  config.durability_dir = "/tmp/e2e_crash_recovery";
  ::mkdir(config.durability_dir.c_str(), 0755);
  for (std::size_t i = 0; i < config.domains; ++i) {
    const std::string base =
        config.durability_dir + "/" + ChainWorld::domain_name(i);
    std::remove((base + ".wal").c_str());
    std::remove((base + ".snapshot").c_str());
  }
  ChainWorld world(config);
  WorldUser alice = world.make_user("Alice", 0);

  // Three reservations through the signed hop-by-hop path; every broker
  // appends one hash-chained record per grant before replying.
  for (int i = 0; i < 3; ++i) {
    const auto msg = world.engine().build_user_request(
        alice.credentials(),
        world.spec(alice, (10.0 + i) * 1e6,
                   {seconds(i * 100), seconds(i * 100 + 600)}),
        0);
    if (!msg.ok()) return 1;
    const auto outcome = world.engine().reserve(*msg, seconds(i * 100));
    if (!outcome.ok() || !outcome->reply.granted) return 1;
    std::printf("reservation %d granted (%zu messages)\n", i,
                outcome->messages);
  }
  bb::BandwidthBroker& live = world.broker(1);
  std::printf("\nDomainB before the crash: %zu reservations, %.0f bits/s "
              "committed at t=150s\n",
              live.reservation_count(), live.committed_at(seconds(150)));

  // Checkpoint: snapshot DomainB's state and truncate the covered WAL
  // prefix. A snapshot is optional — recovery works from the log alone —
  // but it bounds replay time and log size.
  const auto dropped = world.snapshot_domain(1);
  if (!dropped.ok()) return 1;
  std::printf("checkpoint: snapshot written, %zu WAL records truncated\n",
              *dropped);

  // One more grant AFTER the checkpoint, so recovery has a tail to replay.
  const auto msg = world.engine().build_user_request(
      alice.credentials(), world.spec(alice, 25e6, {seconds(400), seconds(900)}),
      0);
  if (!msg.ok()) return 1;
  const auto outcome = world.engine().reserve(*msg, seconds(400));
  if (!outcome.ok() || !outcome->reply.granted) return 1;
  std::printf("post-checkpoint reservation granted\n");

  // CRASH: the process state is gone; the durability directory is all
  // that survives. (The live broker object stays around here purely as
  // the oracle to compare against.)
  world.crash_broker(1);
  world.drop_wal(1);
  std::printf("\nDomainB crashed. Recovering from %s ...\n",
              config.durability_dir.c_str());

  // Recover: replay snapshot + WAL tail into a blank broker with the same
  // domain, capacity and SLA wiring.
  auto blank = world.make_blank_broker(1);
  const auto report = bb::recover_broker(*blank, world.snapshot_path(1),
                                         world.wal_path(1));
  if (!report.ok()) {
    std::printf("recovery failed: %s\n", report.error().to_text().c_str());
    return 1;
  }
  std::printf("recovered: snapshot=%s, %zu tail records (%zu replayed, "
              "%zu skipped, %zu failed)\n",
              report->snapshot_loaded ? "yes" : "no", report->wal_records,
              report->replayed,
              report->skipped_covered + report->skipped_duplicate,
              report->failed);

  // The recovery invariant: the replayed broker carries the exact
  // pre-crash pool timeline — same reservation count, same committed
  // bandwidth at every instant, same next handle number.
  std::printf("\n%-34s %15s %15s\n", "", "live (oracle)", "recovered");
  std::printf("%-34s %15zu %15zu\n", "reservations",
              live.reservation_count(), blank->reservation_count());
  for (SimTime t : {seconds(150), seconds(450), seconds(850)}) {
    std::printf("committed_at(t=%-4llds) bits/s %15.0f %15.0f\n",
                static_cast<long long>(t / seconds(1)),
                live.committed_at(t), blank->committed_at(t));
  }
  std::printf("%-34s %15llu %15llu\n", "next reservation id",
              static_cast<unsigned long long>(live.next_id_value()),
              static_cast<unsigned long long>(blank->next_id_value()));

  const bool match =
      live.reservation_count() == blank->reservation_count() &&
      live.committed_at(seconds(450)) == blank->committed_at(seconds(450)) &&
      live.next_id_value() == blank->next_id_value();
  std::printf("\n%s\n", match ? "recovered state matches the oracle"
                              : "STATE DIVERGED");
  return match ? 0 : 1;
}
