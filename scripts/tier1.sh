#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite.
# Additionally fails on ANY compiler warning in src/obs/ — the
# observability layer is held to a warning-free standard.
#
# Usage: ./scripts/tier1.sh          (from the repo root; build dir: ./build)
#        ./scripts/tier1.sh --soak   (seeded fault-injection soak suite under
#                                     ASan/UBSan, 3 fixed seeds; build dir:
#                                     ./build-asan via the "asan" preset)
#        ./scripts/tier1.sh --bench  (crypto differential tests + a smoke run
#                                     of scripts/bench_snapshot.sh)
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--bench" ]]; then
  cmake -B build -S . >/dev/null
  cmake --build build -j --target crypto_test >/dev/null
  # The differential suites pin the Montgomery kernel and CRT signing
  # against the reference implementations before we trust any numbers.
  ./build/tests/crypto_test \
    --gtest_filter='Montgomery*:CryptoCache*:Rsa*:BigUInt*'
  SMOKE=1 ./scripts/bench_snapshot.sh
  echo "tier1 --bench: OK"
  exit 0
fi

if [[ "${1:-}" == "--soak" ]]; then
  cmake --preset asan >/dev/null
  cmake --build build-asan -j --target sig_soak_test
  # Three fixed seeds: every trial prints its mix + seed, so a failure is
  # reproducible with E2E_SOAK_SEED=<seed> ./build-asan/tests/sig_soak_test.
  for seed in 20010801 31337 987654321; do
    echo "tier1 --soak: running sig_soak_test with E2E_SOAK_SEED=$seed"
    E2E_SOAK_SEED=$seed ./build-asan/tests/sig_soak_test
  done
  echo "tier1 --soak: OK"
  exit 0
fi

cmake -B build -S . >/dev/null

# Force the obs sources to recompile so their warnings (if any) are
# visible in this build's output even on incremental runs.
find build -name '*.o' -path '*obs*' -delete 2>/dev/null || true

build_log=$(mktemp)
trap 'rm -f "$build_log"' EXIT
cmake --build build -j 2>&1 | tee "$build_log"

if grep -E 'warning:' "$build_log" | grep -q 'src/obs/\|obs/metrics\|obs/trace\|obs/instruments'; then
  echo "FAIL: compiler warnings in src/obs/:" >&2
  grep -E 'warning:' "$build_log" | grep 'obs' >&2
  exit 1
fi

ctest --test-dir build --output-on-failure -j "$(nproc)"
echo "tier1: OK"
