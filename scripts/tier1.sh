#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite.
# Additionally fails on ANY compiler warning in src/obs/ — the
# observability layer is held to a warning-free standard.
#
# Usage: ./scripts/tier1.sh          (from the repo root; build dir: ./build.
#                                     Also lints the metrics/doc contract:
#                                     every e2e_* series named in src/ must
#                                     appear in docs/OBSERVABILITY.md)
#        ./scripts/tier1.sh --soak   (seeded fault-injection soak suite under
#                                     ASan/UBSan, 3 fixed seeds; build dir:
#                                     ./build-asan via the "asan" preset)
#        ./scripts/tier1.sh --bench  (crypto differential tests + a smoke run
#                                     of scripts/bench_snapshot.sh)
#        ./scripts/tier1.sh --obs    (observability contract tests, the
#                                     trace-propagation/audit soak, a
#                                     tracedump determinism check, and the
#                                     micro_obs <5% hot-path overhead gate)
#        ./scripts/tier1.sh --load   (admission load gates: pool equivalence
#                                     suite under default + ASan, the
#                                     concurrent batch-admit suite under the
#                                     TSan preset, a load_broker smoke run
#                                     gating timeline >= 5x reference at 10k
#                                     live, and byte-identity of the fig3 /
#                                     tunnel_scaling protocol stdout)
#        ./scripts/tier1.sh --recovery (durability gates: the WAL/snapshot
#                                     differential suite and the crash/recover
#                                     soak, each in the default build and
#                                     again under the ASan/UBSan preset)
#        ./scripts/tier1.sh --daemon (socket transport gates: framing +
#                                     transport-conformance + daemon +
#                                     pipeline suites, the multi-process
#                                     soak and the admin-plane conformance
#                                     suite, default build then ASan/UBSan,
#                                     then net_stream_test again under
#                                     TSan (off-loop execution); the scrape-
#                                     conformance gate — a live bbd with
#                                     --admin scraped over /metrics, /statz
#                                     and /healthz, families checked against
#                                     the doc catalog; plus byte-identity of
#                                     fig3/tunnel_scaling run as
#                                     communicating OS processes vs the
#                                     in-memory run, grant bytes included)
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--bench" ]]; then
  cmake -B build -S . >/dev/null
  cmake --build build -j --target crypto_test >/dev/null
  # The differential suites pin the Montgomery kernel and CRT signing
  # against the reference implementations before we trust any numbers.
  ./build/tests/crypto_test \
    --gtest_filter='Montgomery*:CryptoCache*:Rsa*:BigUInt*'
  SMOKE=1 ./scripts/bench_snapshot.sh
  echo "tier1 --bench: OK"
  exit 0
fi

if [[ "${1:-}" == "--load" ]]; then
  cmake -B build -S . >/dev/null
  cmake --build build -j --target bb_pool_equivalence_test \
    bb_batch_admission_test bb_shard_engine_test load_broker \
    fig3_signalling_latency tunnel_scaling >/dev/null
  workdir=$(mktemp -d)
  trap 'rm -rf "$workdir"' EXIT

  # Decision-for-decision equivalence of the timeline pool vs the original
  # scan (the reference oracle) — default build, then ASan/UBSan.
  ./build/tests/bb_pool_equivalence_test
  cmake --preset asan >/dev/null
  cmake --build build-asan -j --target bb_pool_equivalence_test >/dev/null
  ./build-asan/tests/bb_pool_equivalence_test
  echo "tier1 --load: pool equivalence OK (default + asan)"

  # Concurrent batch-admit + sharded broker state + thread-per-shard
  # engine (owner routing, WAL apply/finish split) under ThreadSanitizer.
  cmake --preset tsan >/dev/null
  cmake --build build-tsan -j --target bb_batch_admission_test \
    bb_shard_engine_test >/dev/null
  ./build-tsan/tests/bb_batch_admission_test
  ./build-tsan/tests/bb_shard_engine_test
  echo "tier1 --load: batch/concurrent admission OK under TSan"

  # Throughput gate: timeline pool >= 5x the reference scan at 10k live
  # reservations (small --smoke iteration counts; the bench prints
  # "RESULT pool_speedup_10k=<x>" and exits nonzero on its own checks).
  (cd "$workdir" && "$OLDPWD/build/bench/load_broker" --smoke \
    > load_broker.stdout.txt) || {
      cat "$workdir/load_broker.stdout.txt"; exit 1; }
  python3 - "$workdir/load_broker.stdout.txt" <<'EOF'
import re, sys
text = open(sys.argv[1]).read()
m = re.search(r"RESULT pool_speedup_10k=([0-9.]+)", text)
if not m:
    sys.exit("FAIL: load_broker did not report pool_speedup_10k")
speedup = float(m.group(1))
print(f"tier1 --load: timeline pool speedup at 10k live = {speedup:.1f}x")
if speedup < 5.0:
    sys.exit(f"FAIL: pool speedup {speedup:.2f}x below the 5x gate")
# Thread-per-shard scaling gate (ISSUE 8): 4 engine workers must beat the
# locked serial path by >= 2.5x — but only where 4 cores exist to scale
# onto. On smaller hosts the engine pays cross-thread handoffs with no
# parallelism to buy back, so the ratio is recorded, not gated.
m = re.search(r"RESULT tunnel_scaling_4t=([0-9.]+) cores=([0-9]+)", text)
if not m:
    sys.exit("FAIL: load_broker did not report tunnel_scaling_4t")
scaling, cores = float(m.group(1)), int(m.group(2))
print(f"tier1 --load: tunnel scaling at 4 threads = {scaling:.2f}x "
      f"({cores} cores)")
if cores >= 4 and scaling < 2.5:
    sys.exit(f"FAIL: 4-thread scaling {scaling:.2f}x below the 2.5x gate")
EOF

  # Protocol byte-identity: the fig3 stdout must match the committed
  # BENCH_fig3.json snapshot exactly (grants, latencies, counters — the
  # new wall-clock e2e_bb_admission_us series lives only in the metrics
  # snapshot, never in stdout), and tunnel_scaling must be run-to-run
  # deterministic.
  (cd "$workdir" && "$OLDPWD/build/bench/fig3_signalling_latency" \
    > fig3.stdout.txt)
  python3 - "$workdir/fig3.stdout.txt" BENCH_fig3.json <<'EOF'
import json, sys
fresh = open(sys.argv[1]).read()
committed = json.load(open(sys.argv[2]))["stdout"]
if fresh != committed:
    sys.exit("FAIL: fig3 stdout diverged from the committed BENCH_fig3.json")
print("tier1 --load: fig3 stdout byte-identical to committed snapshot")
EOF
  (cd "$workdir" && "$OLDPWD/build/bench/tunnel_scaling" > tunnel.a.txt \
    && "$OLDPWD/build/bench/tunnel_scaling" > tunnel.b.txt)
  cmp "$workdir/tunnel.a.txt" "$workdir/tunnel.b.txt"
  echo "tier1 --load: tunnel_scaling stdout run-to-run identical"
  echo "tier1 --load: OK"
  exit 0
fi

if [[ "${1:-}" == "--recovery" ]]; then
  cmake -B build -S . >/dev/null
  cmake --build build -j --target bb_wal_recovery_test \
    bb_recovery_soak_test >/dev/null

  # Differential replay: snapshot + WAL tail into a blank broker must
  # reproduce the exact pre-crash pool timeline (torn tails dropped,
  # tampered logs refused) — default build first.
  ./build/tests/bb_wal_recovery_test
  # Crash/recover soak: brokers killed mid-traffic via the fault fabric,
  # recovered from disk and compared against the live oracle; reproducible
  # with E2E_SOAK_SEED=<seed>.
  ./build/tests/bb_recovery_soak_test
  echo "tier1 --recovery: differential + soak OK (default build)"

  # Same suites again under ASan/UBSan — replay touches freshly rebuilt
  # broker state, so lifetime bugs would hide in the default build.
  cmake --preset asan >/dev/null
  cmake --build build-asan -j --target bb_wal_recovery_test \
    bb_recovery_soak_test >/dev/null
  ./build-asan/tests/bb_wal_recovery_test
  ./build-asan/tests/bb_recovery_soak_test
  echo "tier1 --recovery: differential + soak OK (asan)"
  echo "tier1 --recovery: OK"
  exit 0
fi

if [[ "${1:-}" == "--daemon" ]]; then
  cmake -B build -S . >/dev/null
  cmake --build build -j --target net_stream_test daemon_soak_test \
    daemon_admin_test bbd fig3_signalling_latency tunnel_scaling >/dev/null
  workdir=$(mktemp -d)
  trap 'rm -rf "$workdir"' EXIT

  # Framing robustness, transport conformance (Fabric AND sockets), and
  # the in-process daemon integration suite — default build first.
  ./build/tests/net_stream_test
  # Multi-process soak: the real bbd binary + N client processes mixing
  # reserve/release/abrupt-exit, then SIGKILL + restart with --recover.
  ./build/tests/daemon_soak_test
  # Multi-process admin conformance: scrape a live loaded bbd, check
  # /metrics families against the catalog, /statz sums against the shard
  # series, round-trip /tracez through tracedump, verify the drain
  # snapshot.
  ./build/tests/daemon_admin_test
  echo "tier1 --daemon: stream/conformance/soak/admin suites OK (default build)"

  # The same suites under ASan/UBSan — the socket paths shuffle raw byte
  # buffers across threads and processes, so lifetime bugs would hide in
  # the default build.
  cmake --preset asan >/dev/null
  cmake --build build-asan -j --target net_stream_test daemon_soak_test \
    daemon_admin_test >/dev/null
  ./build-asan/tests/net_stream_test
  ./build-asan/tests/daemon_soak_test
  ./build-asan/tests/daemon_admin_test
  echo "tier1 --daemon: stream/conformance/soak/admin suites OK (asan)"

  # And under ThreadSanitizer (ISSUE 10): the pipeline suite drives
  # cross-thread StreamServer::post(), the RPC worker pool and the
  # pipelined client, so data races in the off-loop execution path are
  # caught here, not in production.
  cmake --preset tsan >/dev/null
  cmake --build build-tsan -j --target net_stream_test >/dev/null
  ./build-tsan/tests/net_stream_test
  echo "tier1 --daemon: stream/conformance suites OK under TSan"

  # Scrape conformance: a live bbd with --admin must serve /healthz,
  # /statz (valid JSON, one shard per domain) and a parseable /metrics
  # whose every family appears backticked in docs/OBSERVABILITY.md
  # (histogram series fold their _bucket/_sum/_count suffixes first).
  ./build/tools/bbd --listen "unix:$workdir/bbd.sock" \
    --admin "unix:$workdir/admin.sock" --domains 3 --admission-threads 2 \
    --metrics-out "" > "$workdir/bbd.stdout.txt" &
  bbd_pid=$!
  trap 'kill "$bbd_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT
  python3 - "$workdir/admin.sock" docs/OBSERVABILITY.md <<'EOF'
import json, re, socket, sys, time

def get(path, patience=30.0):
    deadline = time.monotonic() + patience
    while True:
        try:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(sys.argv[1])
            break
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)
    sock.sendall(f"GET {path} HTTP/1.0\r\n\r\n".encode())
    data = b""
    while chunk := sock.recv(65536):
        data += chunk
    sock.close()
    head, _, body = data.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    return status, body.decode()

status, body = get("/healthz")
assert status == 200 and body == "ok\n", (status, body)

status, body = get("/statz")
assert status == 200, status
statz = json.loads(body)
assert len(statz["shards"]) == 3, statz["shards"]

status, body = get("/metrics")
assert status == 200, status
doc = open(sys.argv[2]).read()
families = set()
for line in body.splitlines():
    if not line or line.startswith("#"):
        continue
    name = re.split(r"[{ ]", line, 1)[0]
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and f"`{name[:-len(suffix)]}`" in doc:
            name = name[:-len(suffix)]
            break
    families.add(name)
assert families, "empty /metrics scrape"
undocumented = sorted(f for f in families if f"`{f}`" not in doc)
if undocumented:
    sys.exit("FAIL: live /metrics families missing from "
             "docs/OBSERVABILITY.md:\n  " + "\n  ".join(undocumented))
print(f"tier1 --daemon: scrape conformance OK "
      f"({len(families)} families, all documented)")
EOF
  kill -TERM "$bbd_pid"
  wait "$bbd_pid"
  trap 'rm -rf "$workdir"' EXIT

  # Byte-identity: fig3 and tunnel_scaling rerun as communicating OS
  # processes (--daemon forks a broker daemon on a UNIX socket) must print
  # byte-identical protocol output — tables, PASS lines and the
  # E2E_GRANT_DUMP grant bytes. Only the "metrics snapshot:" line is
  # filtered (the in-memory run drops a snapshot file; the daemon's
  # registry lives in the daemon process and is queried over the wire).
  for bench in fig3_signalling_latency tunnel_scaling; do
    (cd "$workdir" && E2E_GRANT_DUMP=1 "$OLDPWD/build/bench/$bench" \
      | sed '/^  metrics snapshot: /d' > "$bench.local.txt")
    (cd "$workdir" && E2E_GRANT_DUMP=1 "$OLDPWD/build/bench/$bench" --daemon \
      | sed '/^  metrics snapshot: /d' > "$bench.daemon.txt")
    cmp "$workdir/$bench.local.txt" "$workdir/$bench.daemon.txt"
    echo "tier1 --daemon: $bench in-memory vs daemon byte-identical" \
      "(grant bytes included)"
  done
  echo "tier1 --daemon: OK"
  exit 0
fi

if [[ "${1:-}" == "--soak" ]]; then
  cmake --preset asan >/dev/null
  cmake --build build-asan -j --target sig_soak_test
  # Three fixed seeds: every trial prints its mix + seed, so a failure is
  # reproducible with E2E_SOAK_SEED=<seed> ./build-asan/tests/sig_soak_test.
  for seed in 20010801 31337 987654321; do
    echo "tier1 --soak: running sig_soak_test with E2E_SOAK_SEED=$seed"
    E2E_SOAK_SEED=$seed ./build-asan/tests/sig_soak_test
  done
  echo "tier1 --soak: OK"
  exit 0
fi

if [[ "${1:-}" == "--obs" ]]; then
  cmake -B build -S . >/dev/null
  cmake --build build -j --target obs_test obs_propagation_soak_test \
    micro_obs tracedump >/dev/null
  workdir=$(mktemp -d)
  trap 'rm -rf "$workdir"' EXIT

  # Both directions of the documented telemetry contract: metrics, span
  # schema, audit schema, TraceContext wire tags.
  ./build/tests/obs_test --gtest_filter='TelemetryContract.*'

  # Seeded propagation soak: collector tree == source-side reference tree
  # under faults/retries, audit chain integrity + tamper detection.
  ./build/tests/obs_propagation_soak_test

  # The operator CLI must be bit-for-bit deterministic, faults included.
  ./build/tools/tracedump --faults > "$workdir/dump.a"
  ./build/tools/tracedump --faults > "$workdir/dump.b"
  cmp "$workdir/dump.a" "$workdir/dump.b"
  echo "tier1 --obs: tracedump --faults deterministic"

  # Overhead gate: the fully instrumented fig3 hot path (arg 1) must stay
  # within 5% of the recorder-detached baseline (arg 0), by median of 7.
  ./build/bench/micro_obs --benchmark_filter='BM_Fig3HotPath' \
    --benchmark_repetitions=7 --benchmark_report_aggregates_only=true \
    --benchmark_out="$workdir/micro_obs.json" \
    --benchmark_out_format=json >/dev/null
  python3 - "$workdir/micro_obs.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
med = {b["run_name"]: b["real_time"] for b in doc["benchmarks"]
       if b.get("aggregate_name") == "median"}
base, traced = med["BM_Fig3HotPath/0"], med["BM_Fig3HotPath/1"]
overhead = (traced - base) / base * 100.0
print(f"tier1 --obs: fig3 hot path baseline={base:.1f}us "
      f"traced={traced:.1f}us overhead={overhead:+.2f}%")
if overhead > 5.0:
    sys.exit("FAIL: observability overhead exceeds the 5% budget")
EOF
  echo "tier1 --obs: OK"
  exit 0
fi

cmake -B build -S . >/dev/null

# Force the obs sources to recompile so their warnings (if any) are
# visible in this build's output even on incremental runs.
find build -name '*.o' -path '*obs*' -delete 2>/dev/null || true

build_log=$(mktemp)
trap 'rm -f "$build_log"' EXIT
cmake --build build -j 2>&1 | tee "$build_log"

if grep -E 'warning:' "$build_log" | grep -q 'src/obs/\|obs/metrics\|obs/trace\|obs/instruments'; then
  echo "FAIL: compiler warnings in src/obs/:" >&2
  grep -E 'warning:' "$build_log" | grep 'obs' >&2
  exit 1
fi

# Metrics/doc contract, code -> doc direction: every e2e_* series name
# that appears as a string literal in src/ must be documented (in
# backticks) in docs/OBSERVABILITY.md. The doc -> code direction (every
# documented name really emitted) is tests/obs_contract_test.cpp.
python3 - <<'EOF'
import pathlib, re, sys
root = pathlib.Path(".")
names = set()
for path in root.glob("src/**/*"):
    if path.suffix not in (".hpp", ".cpp"):
        continue
    names.update(re.findall(r'"(e2e_[a-z0-9_]+)"', path.read_text()))
doc = (root / "docs" / "OBSERVABILITY.md").read_text()
missing = sorted(n for n in names if f"`{n}`" not in doc)
if missing:
    sys.exit("FAIL: metric series named in src/ but missing from "
             "docs/OBSERVABILITY.md:\n  " + "\n  ".join(missing))
print(f"tier1: docs lint OK ({len(names)} e2e_* series all documented)")
EOF

ctest --test-dir build --output-on-failure -j "$(nproc)"
echo "tier1: OK"
