#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite.
# Additionally fails on ANY compiler warning in src/obs/ — the
# observability layer is held to a warning-free standard.
#
# Usage: ./scripts/tier1.sh          (from the repo root; build dir: ./build)
#        ./scripts/tier1.sh --soak   (seeded fault-injection soak suite under
#                                     ASan/UBSan, 3 fixed seeds; build dir:
#                                     ./build-asan via the "asan" preset)
#        ./scripts/tier1.sh --bench  (crypto differential tests + a smoke run
#                                     of scripts/bench_snapshot.sh)
#        ./scripts/tier1.sh --obs    (observability contract tests, the
#                                     trace-propagation/audit soak, a
#                                     tracedump determinism check, and the
#                                     micro_obs <5% hot-path overhead gate)
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--bench" ]]; then
  cmake -B build -S . >/dev/null
  cmake --build build -j --target crypto_test >/dev/null
  # The differential suites pin the Montgomery kernel and CRT signing
  # against the reference implementations before we trust any numbers.
  ./build/tests/crypto_test \
    --gtest_filter='Montgomery*:CryptoCache*:Rsa*:BigUInt*'
  SMOKE=1 ./scripts/bench_snapshot.sh
  echo "tier1 --bench: OK"
  exit 0
fi

if [[ "${1:-}" == "--soak" ]]; then
  cmake --preset asan >/dev/null
  cmake --build build-asan -j --target sig_soak_test
  # Three fixed seeds: every trial prints its mix + seed, so a failure is
  # reproducible with E2E_SOAK_SEED=<seed> ./build-asan/tests/sig_soak_test.
  for seed in 20010801 31337 987654321; do
    echo "tier1 --soak: running sig_soak_test with E2E_SOAK_SEED=$seed"
    E2E_SOAK_SEED=$seed ./build-asan/tests/sig_soak_test
  done
  echo "tier1 --soak: OK"
  exit 0
fi

if [[ "${1:-}" == "--obs" ]]; then
  cmake -B build -S . >/dev/null
  cmake --build build -j --target obs_test obs_propagation_soak_test \
    micro_obs tracedump >/dev/null
  workdir=$(mktemp -d)
  trap 'rm -rf "$workdir"' EXIT

  # Both directions of the documented telemetry contract: metrics, span
  # schema, audit schema, TraceContext wire tags.
  ./build/tests/obs_test --gtest_filter='TelemetryContract.*'

  # Seeded propagation soak: collector tree == source-side reference tree
  # under faults/retries, audit chain integrity + tamper detection.
  ./build/tests/obs_propagation_soak_test

  # The operator CLI must be bit-for-bit deterministic, faults included.
  ./build/tools/tracedump --faults > "$workdir/dump.a"
  ./build/tools/tracedump --faults > "$workdir/dump.b"
  cmp "$workdir/dump.a" "$workdir/dump.b"
  echo "tier1 --obs: tracedump --faults deterministic"

  # Overhead gate: the fully instrumented fig3 hot path (arg 1) must stay
  # within 5% of the recorder-detached baseline (arg 0), by median of 7.
  ./build/bench/micro_obs --benchmark_filter='BM_Fig3HotPath' \
    --benchmark_repetitions=7 --benchmark_report_aggregates_only=true \
    --benchmark_out="$workdir/micro_obs.json" \
    --benchmark_out_format=json >/dev/null
  python3 - "$workdir/micro_obs.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
med = {b["run_name"]: b["real_time"] for b in doc["benchmarks"]
       if b.get("aggregate_name") == "median"}
base, traced = med["BM_Fig3HotPath/0"], med["BM_Fig3HotPath/1"]
overhead = (traced - base) / base * 100.0
print(f"tier1 --obs: fig3 hot path baseline={base:.1f}us "
      f"traced={traced:.1f}us overhead={overhead:+.2f}%")
if overhead > 5.0:
    sys.exit("FAIL: observability overhead exceeds the 5% budget")
EOF
  echo "tier1 --obs: OK"
  exit 0
fi

cmake -B build -S . >/dev/null

# Force the obs sources to recompile so their warnings (if any) are
# visible in this build's output even on incremental runs.
find build -name '*.o' -path '*obs*' -delete 2>/dev/null || true

build_log=$(mktemp)
trap 'rm -f "$build_log"' EXIT
cmake --build build -j 2>&1 | tee "$build_log"

if grep -E 'warning:' "$build_log" | grep -q 'src/obs/\|obs/metrics\|obs/trace\|obs/instruments'; then
  echo "FAIL: compiler warnings in src/obs/:" >&2
  grep -E 'warning:' "$build_log" | grep 'obs' >&2
  exit 1
fi

ctest --test-dir build --output-on-failure -j "$(nproc)"
echo "tier1: OK"
