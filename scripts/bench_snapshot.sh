#!/usr/bin/env bash
# Perf-trajectory snapshot: run the crypto micro benches and the fig3
# signalling-latency bench and write their results to the repo root as
#   BENCH_crypto.json  (google-benchmark JSON for bench/micro_crypto)
#   BENCH_fig3.json    (fig3 stdout table + metrics snapshot, wrapped)
#   BENCH_obs.json     (google-benchmark JSON for bench/micro_obs: hot-path
#                       overhead traced vs detached + primitive costs — plus
#                       a "scrape_overhead" key folded in from
#                       bench/daemon_latency: daemon RPC p50/p99 with and
#                       without a concurrent admin-plane scraper)
#   BENCH_admission.json (bench/load_broker: RARs/sec + p50/p99 for the
#                       timeline pool vs the reference scan, the sharded
#                       broker, parallel tunnels, batch admission, and the
#                       WAL overhead sweep (off/nosync/fsync/fsync+batch);
#                       format documented in docs/PERFORMANCE.md)
#   BENCH_daemon.json  (bench/daemon_latency: wall-clock p50/p99 of a full
#                       RAR setup through the in-memory world vs the same
#                       ops over the UNIX-socket daemon — the transport
#                       overhead of the bbd stack, docs/DAEMON.md — plus a
#                       "load" key folded in from bench/load_daemon: fleet
#                       RARs/s serial vs pipelined, with a core-aware
#                       pipeline-speedup gate)
# so successive PRs can diff the numbers.
#
# Usage: ./scripts/bench_snapshot.sh           (full run)
#        SMOKE=1 ./scripts/bench_snapshot.sh   (fast smoke: fewer repetitions,
#                                               used by tier1.sh --bench)
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j --target micro_crypto micro_obs \
  fig3_signalling_latency load_broker daemon_latency load_daemon >/dev/null

min_time=""
if [[ "${SMOKE:-0}" == "1" ]]; then
  min_time="--benchmark_min_time=0.05"
fi

./build/bench/micro_crypto \
  --benchmark_out=BENCH_crypto.json --benchmark_out_format=json \
  ${min_time:+"$min_time"} >/dev/null

./build/bench/micro_obs \
  --benchmark_out=BENCH_obs.json --benchmark_out_format=json \
  ${min_time:+"$min_time"} >/dev/null

# fig3 prints a human table and drops a metrics snapshot in the cwd; fold
# both into one JSON document.
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
(cd "$workdir" && "$OLDPWD/build/bench/fig3_signalling_latency" > stdout.txt)
python3 - "$workdir" > BENCH_fig3.json <<'EOF'
import json, sys, pathlib
workdir = pathlib.Path(sys.argv[1])
doc = {
    "bench": "fig3_signalling_latency",
    "stdout": (workdir / "stdout.txt").read_text(),
    "metrics": json.loads(
        (workdir / "fig3_signalling_latency.metrics.json").read_text()),
}
json.dump(doc, sys.stdout, indent=1)
sys.stdout.write("\n")
EOF

# load_broker writes its own JSON summary; run it from the workdir so the
# per-run metrics snapshot doesn't land in the repo root.
load_flags=""
if [[ "${SMOKE:-0}" == "1" ]]; then
  load_flags="--smoke"
fi
(cd "$workdir" &&
  "$OLDPWD/build/bench/load_broker" ${load_flags:+"$load_flags"} \
    --json-out "$OLDPWD/BENCH_admission.json" > load_broker.stdout.txt)

# daemon_latency forks its own broker daemon on a UNIX socket and writes
# the p50/p99 transport-overhead summary itself. The full (non-smoke) run
# gates the scrape-under-load p99 within 5% of unscraped on multi-core
# hosts (bench/daemon_latency.cpp).
(cd "$workdir" &&
  "$OLDPWD/build/bench/daemon_latency" ${load_flags:+"$load_flags"} \
    --json-out "$OLDPWD/BENCH_daemon.json" > daemon_latency.stdout.txt)

# load_daemon drives a forked bbd with a client fleet, serial vs pipelined
# (ISSUE 10). The bench itself enforces the core-aware gate — depth-8
# pipeline >= 3x serial RARs/s on >= 4 cores, > 1x sanity on 2-3 cores,
# recorded-only on one core — so a regression fails this script here. Its
# summary is folded into BENCH_daemon.json under "load", preserving the
# daemon_latency keys.
(cd "$workdir" &&
  "$OLDPWD/build/bench/load_daemon" ${load_flags:+"$load_flags"} \
    --json-out "$OLDPWD/build/load_daemon.json" > load_daemon.stdout.txt) || {
      cat "$workdir/load_daemon.stdout.txt"; exit 1; }
python3 - <<'PY'
import json
daemon = json.load(open("BENCH_daemon.json"))
load = json.load(open("build/load_daemon.json"))
daemon["load"] = {k: v for k, v in load.items() if k != "bench"}
daemon["load"]["source"] = "bench/load_daemon"
with open("BENCH_daemon.json", "w") as out:
    json.dump(daemon, out, indent=1)
    out.write("\n")
PY
rm -f build/load_daemon.json

# Fold the admin-plane scrape-overhead series into BENCH_obs.json so the
# observability snapshot carries both costs of the telemetry layer: the
# in-process hot path (micro_obs) and the live daemon plane under scrape.
python3 - <<'EOF'
import json
obs = json.load(open("BENCH_obs.json"))
daemon = json.load(open("BENCH_daemon.json"))
obs["scrape_overhead"] = {
    "source": "bench/daemon_latency",
    "iterations": daemon["iterations"],
    "daemon_unix": daemon["daemon_unix"],
    "daemon_unix_scraped": daemon["daemon_unix_scraped"],
    **daemon["scrape_overhead"],
}
with open("BENCH_obs.json", "w") as out:
    json.dump(obs, out, indent=1)
    out.write("\n")
EOF

echo "bench_snapshot: wrote BENCH_crypto.json, BENCH_fig3.json, BENCH_obs.json, BENCH_admission.json and BENCH_daemon.json"
